//! Ontology-mediated query answering with DL-Lite_R-style axioms (§1.3:
//! DL-Lite_R — the logic behind OWL 2 QL — embeds into simple-linear TGDs).
//!
//! A small university ontology is expressed as linear TGDs:
//! - concept inclusions        `Professor ⊑ Faculty`      → `prof(X) -> faculty(X).`
//! - role domain/range         `∃teaches ⊑ Faculty`       → `teaches(X,Y) -> faculty(X).`
//! - inverse-role range        `∃teaches⁻ ⊑ Course`       → `teaches(X,Y) -> course(Y).`
//! - existential inclusions    `Faculty ⊑ ∃worksFor`      → `faculty(X) -> worksFor(X,Y).`
//! - role inclusions           `headOf ⊑ worksFor`        → `headOf(X,Y) -> worksFor(X,Y).`
//!
//! The checker certifies termination, the semi-oblivious chase materialises
//! the saturated ABox, and conjunctive queries are answered over it.
//!
//! ```sh
//! cargo run --example ontology_reasoning
//! ```

use soct::model::{homomorphism, Substitution, VarId};
use soct::prelude::*;

fn main() {
    let program = Program::parse(
        "% TBox\n\
         prof(X) -> faculty(X).\n\
         lecturer(X) -> faculty(X).\n\
         faculty(X) -> person(X).\n\
         student(X) -> person(X).\n\
         teaches(X, Y) -> faculty(X).\n\
         teaches(X, Y) -> course(Y).\n\
         headOf(X, Y) -> worksFor(X, Y).\n\
         worksFor(X, Y) -> dept(Y).\n\
         faculty(X) -> worksFor(X, Y).\n\
         course(X) -> taughtBy(X, Y).\n\
         taughtBy(X, Y) -> faculty(Y).\n\
         % ABox\n\
         prof(turing).\n\
         lecturer(hopper).\n\
         teaches(turing, computability).\n\
         headOf(turing, cs).\n\
         student(alan).",
    )
    .expect("ontology parses");

    // Every axiom above is a simple-linear TGD.
    assert_eq!(
        soct::model::tgd::classify(&program.tgds),
        TgdClass::SimpleLinear
    );

    // Is the saturation finite? (`course ⊑ ∃taughtBy`, `∃taughtBy⁻ ⊑
    // faculty`, `faculty ⊑ ∃worksFor` — invented faculty do not create new
    // courses, so yes.)
    let verdict = check_termination(
        &program.schema,
        &program.tgds,
        &program.database,
        FindShapesMode::InMemory,
    );
    println!("ontology termination verdict: {:?}", verdict.verdict);
    assert_eq!(verdict.verdict, Verdict::Finite);

    let chase = run_chase(
        &program.database,
        &program.tgds,
        &ChaseConfig::unbounded(ChaseVariant::SemiOblivious),
    );
    assert_eq!(chase.outcome, ChaseOutcome::Terminated);
    println!(
        "saturated ABox: {} atoms ({} from the ontology)",
        chase.instance.len(),
        chase.instance.len() - program.database.len()
    );

    // Q1(x) ← faculty(x): who is (entailed to be) faculty?
    let faculty = program.schema.pred_by_name("faculty").unwrap();
    let x = VarId(0);
    let q1 = [Atom::new_unchecked(faculty, vec![Term::Var(x)])];
    let mut faculty_names = certain_constants(&q1, x, &chase.instance, &program);
    faculty_names.sort();
    println!("faculty: {faculty_names:?}");
    assert_eq!(faculty_names, vec!["hopper", "turing"]);

    // Q2(x) ← worksFor(x, y), dept(y): who works for some department?
    // turing works for cs (asserted via headOf); hopper works for an
    // *invented* department — both are certain answers.
    let works_for = program.schema.pred_by_name("worksFor").unwrap();
    let dept = program.schema.pred_by_name("dept").unwrap();
    let y = VarId(1);
    let q2 = [
        Atom::new_unchecked(works_for, vec![Term::Var(x), Term::Var(y)]),
        Atom::new_unchecked(dept, vec![Term::Var(y)]),
    ];
    let mut workers = certain_constants(&q2, x, &chase.instance, &program);
    workers.sort();
    println!("works for a department: {workers:?}");
    assert_eq!(workers, vec!["hopper", "turing"]);

    // Q3(x) ← teaches(x, y): only turing *teaches* something asserted;
    // hopper's invented obligations are worksFor, not teaches.
    let teaches = program.schema.pred_by_name("teaches").unwrap();
    let q3 = [Atom::new_unchecked(
        teaches,
        vec![Term::Var(x), Term::Var(y)],
    )];
    let teachers = certain_constants(&q3, x, &chase.instance, &program);
    println!("teachers: {teachers:?}");
    assert_eq!(teachers, vec!["turing"]);
}

/// Evaluates a CQ over the (universal-model) instance and keeps the
/// constant bindings of `var` — the certain answers.
fn certain_constants(
    query: &[Atom],
    var: VarId,
    instance: &Instance,
    program: &Program,
) -> Vec<String> {
    let mut out: Vec<String> =
        homomorphism::all_homomorphisms(query, instance, &Substitution::new())
            .into_iter()
            .filter_map(|h| match h.get(var) {
                Some(Term::Const(c)) => Some(program.consts.resolve(c.symbol()).to_string()),
                _ => None,
            })
            .collect();
    out.sort();
    out.dedup();
    out
}
