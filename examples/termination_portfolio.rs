//! A miniature version of the paper's experimental loop: generate random
//! rule sets and databases with the §6 generators, run both termination
//! checkers and the materialization-based oracle, and tabulate verdicts,
//! timings, and FindShapes behaviour.
//!
//! ```sh
//! cargo run --release --example termination_portfolio
//! ```

use soct::core::ms;
use soct::gen::{DataGenConfig, TgdGenConfig};
use soct::prelude::*;

fn main() {
    println!("seed | class | rules | verdict  | oracle    | t-check(ms) | agree");
    println!("-----+-------+-------+----------+-----------+-------------+------");
    let mut agreements = 0usize;
    let mut decisive = 0usize;
    for seed in 0..12u64 {
        let tclass = if seed % 2 == 0 {
            TgdClass::SimpleLinear
        } else {
            TgdClass::Linear
        };
        // Small instances so the materialization oracle stands a chance.
        let mut schema = Schema::new();
        let (preds, db) = soct::gen::generate_instance(
            &DataGenConfig {
                preds: 4,
                min_arity: 1,
                max_arity: 3,
                dsize: 5,
                rsize: 4,
                seed,
            },
            &mut schema,
        );
        let tgds = soct::gen::generate_tgds(
            &TgdGenConfig {
                ssize: 3,
                min_arity: 1,
                max_arity: 3,
                tsize: 5,
                tclass,
                existential_prob: 0.25,
                seed: seed * 31 + 7,
            },
            &schema,
            &preds,
        );

        let t0 = std::time::Instant::now();
        let fast = check_termination(&schema, &tgds, &db, FindShapesMode::InMemory);
        let t_check = t0.elapsed();
        let oracle = materialization_check(&schema, &tgds, &db, Some(20_000));

        let agree = match (fast.verdict, oracle.verdict) {
            (Verdict::Finite, MaterializationVerdict::Finite) => "yes",
            (Verdict::Infinite, MaterializationVerdict::Infinite) => "yes",
            // An infinite chase with a saturated bound shows up as budget
            // exhaustion on the oracle side — consistent, not decisive.
            (Verdict::Infinite, MaterializationVerdict::BudgetExhausted) => "yes*",
            (_, MaterializationVerdict::BudgetExhausted) => "n/a",
            _ => "NO",
        };
        if agree == "yes" || agree == "yes*" {
            agreements += 1;
        }
        if oracle.verdict != MaterializationVerdict::BudgetExhausted || agree == "yes*" {
            decisive += 1;
        }
        println!(
            "{seed:4} | {:5} | {:5} | {:8} | {:9} | {:11.3} | {agree}",
            tclass.to_string(),
            tgds.len(),
            format!("{:?}", fast.verdict),
            format!("{:?}", oracle.verdict),
            ms(t_check),
        );
        assert_ne!(agree, "NO", "checker and oracle disagreed on seed {seed}");
    }
    println!("\nagreement on decisive cases: {agreements}/{decisive}");

    // Bonus: FindShapes in-memory vs in-database on a larger generated DB.
    let mut schema = Schema::new();
    let data = soct::gen::generate_database(
        &DataGenConfig {
            preds: 50,
            min_arity: 1,
            max_arity: 5,
            dsize: 2_000,
            rsize: 5_000,
            seed: 99,
        },
        &mut schema,
    );
    let t0 = std::time::Instant::now();
    let mem = find_shapes(&data.engine, FindShapesMode::InMemory);
    let t_mem = t0.elapsed();
    let t1 = std::time::Instant::now();
    let db = find_shapes(&data.engine, FindShapesMode::InDatabase);
    let t_db = t1.elapsed();
    assert_eq!(mem.shapes, db.shapes);
    println!(
        "\nFindShapes on {} tuples: {} shapes | in-memory {:.1} ms ({} tuples scanned) \
         | in-database {:.1} ms ({} exact + {} relaxed queries)",
        data.engine.total_rows(),
        mem.shapes.len(),
        ms(t_mem),
        mem.tuples_scanned,
        ms(t_db),
        db.stats.exact_queries,
        db.stats.relaxed_queries,
    );
}
