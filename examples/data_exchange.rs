//! Data exchange (§1's first motivation; Fagin et al. 2005): materialise a
//! *universal solution* for a source-to-target mapping by chasing the
//! source database with the mapping's TGDs — but check termination first,
//! which is exactly the workflow `IsChaseFinite[SL]` enables.
//!
//! The mapping moves a `emp(id, name, dept)` source into a normalised
//! target with invented department entities, then answers a query over the
//! materialised target.
//!
//! ```sh
//! cargo run --example data_exchange
//! ```

use soct::model::{homomorphism, Substitution};
use soct::prelude::*;

fn main() {
    let program = Program::parse(
        "% source-to-target dependencies\n\
         emp(I, N, D) -> works_in(I, D2), dept(D2, D).\n\
         dept(D2, D) -> manager(D2, M).\n\
         works_in(I, D2) -> member(D2, I).\n\
         % source instance\n\
         emp(e1, ada, eng).\n\
         emp(e2, grace, eng).\n\
         emp(e3, edsger, math).",
    )
    .expect("mapping parses");

    // 1. Decide termination (the whole mapping is simple-linear).
    assert_eq!(
        soct::model::tgd::classify(&program.tgds),
        TgdClass::SimpleLinear
    );
    let report = check_termination(
        &program.schema,
        &program.tgds,
        &program.database,
        FindShapesMode::InMemory,
    );
    println!("mapping class: {}", report.class);
    println!("termination verdict: {:?}", report.verdict);
    assert_eq!(report.verdict, Verdict::Finite);

    // 2. Materialise the universal solution with the semi-oblivious chase,
    //    and compare against the restricted chase (smaller, per §1.2).
    let so = run_chase(
        &program.database,
        &program.tgds,
        &ChaseConfig::unbounded(ChaseVariant::SemiOblivious),
    );
    let restricted = run_chase(
        &program.database,
        &program.tgds,
        &ChaseConfig::unbounded(ChaseVariant::Restricted),
    );
    println!(
        "semi-oblivious solution: {} atoms | restricted solution: {} atoms",
        so.instance.len(),
        restricted.instance.len()
    );
    assert!(restricted.instance.len() <= so.instance.len());
    assert!(soct::model::satisfies_all(&so.instance, &program.tgds));

    // 3. Certain-answer flavoured query over the materialised target:
    //    "which employees are members of some department entity?"
    //    member(D2, I) — answers are the I bindings that are constants.
    let member = program
        .schema
        .pred_by_name("member")
        .expect("member exists");
    let i = soct::model::VarId(0);
    let d = soct::model::VarId(1);
    let query = Atom::new_unchecked(member, vec![Term::Var(d), Term::Var(i)]);
    let mut answers: Vec<String> = Vec::new();
    for hom in homomorphism::all_homomorphisms(
        std::slice::from_ref(&query),
        &so.instance,
        &Substitution::new(),
    ) {
        if let Some(Term::Const(c)) = hom.get(i) {
            // Only constant bindings are certain answers.
            answers.push(program.consts.resolve(c.symbol()).to_string());
        }
    }
    answers.sort();
    answers.dedup();
    println!("members of invented departments: {answers:?}");
    assert_eq!(answers, vec!["e1", "e2", "e3"]);

    // 4. The invented department entity is *shared* per department name
    //    under the semi-oblivious chase? No — per employee tuple (the
    //    frontier is (I, N, D)), so eng gets two entities; the restricted
    //    chase is free to reuse. That size gap is the §1.2 trade-off:
    let so_depts = so
        .instance
        .atoms_of(program.schema.pred_by_name("dept").unwrap())
        .len();
    let r_depts = restricted
        .instance
        .atoms_of(program.schema.pred_by_name("dept").unwrap())
        .len();
    println!("dept entities: semi-oblivious {so_depts} vs restricted {r_depts}");
}
