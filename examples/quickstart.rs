//! Quickstart: parse a program, decide chase termination, materialise the
//! chase when it is finite.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use soct::prelude::*;

// `pub` so tests/workspace_smoke.rs can include this file as a module and
// run it under `cargo test`.
pub fn main() {
    // A tiny referential-integrity style schema. `advisor` invents a person
    // (the ∃Y), and persons keep acquiring advisors — the semi-oblivious
    // chase diverges. Dropping the second rule makes it finite.
    let diverging = Program::parse(
        "% every person has an advisor, advisors are persons\n\
         person(X) -> advisor(X, Y).\n\
         advisor(X, Y) -> person(Y).\n\
         person(alice).\n\
         person(bob).",
    )
    .expect("program parses");

    let verdict = check_termination(
        &diverging.schema,
        &diverging.tgds,
        &diverging.database,
        FindShapesMode::InMemory,
    );
    println!("rules: {} (class {})", diverging.tgds.len(), verdict.class);
    println!("diverging program verdict: {:?}", verdict.verdict);
    assert_eq!(verdict.verdict, Verdict::Infinite);

    // A terminating variant: advisors are *recorded*, not invented anew.
    let terminating = Program::parse(
        "person(X) -> advisor(X, Y).\n\
         advisor(X, Y) -> knows(Y, X).\n\
         person(alice).\n\
         person(bob).",
    )
    .expect("program parses");
    let verdict2 = check_termination(
        &terminating.schema,
        &terminating.tgds,
        &terminating.database,
        FindShapesMode::InMemory,
    );
    println!("terminating program verdict: {:?}", verdict2.verdict);
    assert_eq!(verdict2.verdict, Verdict::Finite);

    // Safe to materialise now: the checker said finite.
    let result = run_chase(
        &terminating.database,
        &terminating.tgds,
        &ChaseConfig::unbounded(ChaseVariant::SemiOblivious),
    );
    assert_eq!(result.outcome, ChaseOutcome::Terminated);
    println!(
        "chase({} facts, {} rules) = {} atoms in {} rounds ({} nulls)",
        terminating.database.len(),
        terminating.tgds.len(),
        result.instance.len(),
        result.rounds,
        result.nulls_created,
    );
    for atom in result.instance.atoms() {
        println!("  {}", atom.display(&terminating.schema));
    }

    // The result is a model of the rules — the whole point of the chase.
    assert!(soct::model::satisfies_all(
        &result.instance,
        &terminating.tgds
    ));
    println!("result satisfies every rule ✓");
}
