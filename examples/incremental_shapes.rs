//! The paper's §10 future-work direction, implemented: *materialise and
//! incrementally keep updated the shapes in the database*, turning the
//! db-dependent component of `IsChaseFinite[L]` — the dominant cost in
//! Table 2 — into a constant-time catalog read.
//!
//! This example loads a LUBM-like database, compares the three `FindShapes`
//! strategies, and shows the catalog staying correct under further inserts
//! (e.g. a materialisation pipeline appending chase results).
//!
//! ```sh
//! cargo run --release --example incremental_shapes
//! ```

use soct::core::{find_shapes_materialized, ms};
use soct::prelude::*;
use std::time::Instant;

fn main() {
    // A LUBM-like scenario: many tuples, few shapes — the regime where the
    // db-dependent component dominates (Table 2).
    let mut scenario = soct::gen::lubm_like(10, 0.05, 42);
    println!(
        "{}: {} atoms, {} shapes, {} rules",
        scenario.name, scenario.stats.n_atoms, scenario.stats.n_shapes, scenario.stats.n_rules
    );

    // Online strategies (the paper's two).
    let t0 = Instant::now();
    let mem = find_shapes(&scenario.engine, FindShapesMode::InMemory);
    let t_mem = t0.elapsed();
    let t1 = Instant::now();
    let db = find_shapes(&scenario.engine, FindShapesMode::InDatabase);
    let t_db = t1.elapsed();
    assert_eq!(mem.shapes, db.shapes);

    // §10 extension: enable the incrementally-maintained catalog (one
    // offline scan), then FindShapes is a read.
    let t2 = Instant::now();
    scenario.engine.enable_shape_tracking();
    let t_build = t2.elapsed();
    let t3 = Instant::now();
    let mat = find_shapes_materialized(&scenario.engine).expect("tracking enabled");
    let t_mat = t3.elapsed();
    assert_eq!(mat.shapes, mem.shapes);

    println!(
        "FindShapes strategies over {} tuples:",
        scenario.engine.total_rows()
    );
    println!(
        "  in-memory     : {:>10.3} ms  (scans every tuple)",
        ms(t_mem)
    );
    println!(
        "  in-database   : {:>10.3} ms  (Apriori EXISTS queries)",
        ms(t_db)
    );
    println!(
        "  materialized  : {:>10.3} ms  (catalog read; one-off build {:.3} ms)",
        ms(t_mat),
        ms(t_build)
    );

    // The catalog stays current as the database grows — say, appending the
    // chase result of a data-integration batch.
    let prop0 = scenario
        .engine
        .non_empty_predicates()
        .into_iter()
        .find(|&p| scenario.engine.arity_of(p) == 2)
        .expect("a binary relation is populated");
    let before = scenario.engine.shape_catalog().unwrap().num_shapes();
    // Insert reflexive pairs — shape (1,1) — which may or may not be new.
    for i in 0..100u32 {
        scenario.engine.insert(
            prop0,
            &[
                Term::Const(soct::model::ConstId(900_000 + i)),
                Term::Const(soct::model::ConstId(900_000 + i)),
            ],
        );
    }
    let after_catalog = find_shapes_materialized(&scenario.engine).unwrap();
    let after_scan = find_shapes(&scenario.engine, FindShapesMode::InMemory);
    assert_eq!(after_catalog.shapes, after_scan.shapes);
    println!(
        "after 100 inserts: catalog tracked {} -> {} shapes without a rescan ✓",
        before,
        scenario.engine.shape_catalog().unwrap().num_shapes()
    );

    // End-to-end: the termination check with a materialised db-dependent
    // component.
    let t4 = Instant::now();
    let rep =
        soct::core::check_l_with_shapes(&scenario.schema, &scenario.tgds, &after_catalog.shapes);
    let t_check = t4.elapsed();
    println!(
        "IsChaseFinite[L] with materialised shapes: finite = {} in {:.3} ms \
         (db-dependent cost eliminated)",
        rep.finite,
        ms(t_check)
    );
}
