//! # soct — Semi-Oblivious Chase Termination for Linear Existential Rules
//!
//! A Rust implementation of the algorithms, infrastructure, and experiments
//! of *“Semi-Oblivious Chase Termination for Linear Existential Rules: An
//! Experimental Study”* (Calautti, Milani, Pieris; VLDB 2023).
//!
//! This facade crate re-exports the workspace:
//!
//! - [`model`] — terms, atoms, schemas, TGDs, instances, homomorphisms,
//!   shapes, simplification;
//! - [`parser`] — the rule/fact text format;
//! - [`storage`] — the embedded relational engine (catalog, shape queries,
//!   views, persistence);
//! - [`graph`] — dependency graphs, special SCCs, supportedness;
//! - [`chase`] — oblivious / semi-oblivious / restricted chase engines
//!   over the packed columnar [`chase::ChaseStore`] layer (in-memory and
//!   storage-backed), size bounds, the materialization-based checker;
//! - [`core`] — `IsChaseFinite[SL]`, `IsChaseFinite[L]`, `FindShapes`,
//!   `DynSimplification`;
//! - [`gen`] — data/TGD generators, experiment profiles, scenarios;
//! - [`serve`] — the checkers as a long-running HTTP service with a
//!   fingerprint-keyed verdict cache, plus the matching client.
//!
//! ## Quickstart
//!
//! ```
//! use soct::prelude::*;
//!
//! let program = Program::parse(
//!     "person(X) -> hasAdvisor(X, Y).\n\
//!      hasAdvisor(X, Y) -> person(Y).\n\
//!      person(alice).",
//! )
//! .unwrap();
//! let report = check_termination(
//!     &program.schema,
//!     &program.tgds,
//!     &program.database,
//!     FindShapesMode::InMemory,
//! );
//! assert_eq!(report.verdict, Verdict::Infinite); // advisors all the way up
//! ```

pub use soct_chase as chase;
pub use soct_core as core;
pub use soct_gen as gen;
pub use soct_graph as graph;
pub use soct_model as model;
pub use soct_obs as obs;
pub use soct_parser as parser;
pub use soct_serve as serve;
pub use soct_storage as storage;

/// The most common imports in one place.
pub mod prelude {
    pub use soct_chase::{
        resolve_threads, run_chase, run_chase_columnar, run_chase_on_engine, ChaseConfig,
        ChaseOutcome, ChaseResult, ChaseStore, ChaseVariant, ColumnarStore, MaterializationVerdict,
    };
    pub use soct_core::{
        cache_key, cache_key_live, check_termination, check_termination_cached,
        check_termination_engine, check_termination_live, check_termination_threads, find_shapes,
        find_shapes_parallel, is_chase_finite_l, is_chase_finite_l_parallel, is_chase_finite_sl,
        materialization_check, FindShapesMode, Verdict, VerdictCache,
    };
    pub use soct_graph::{find_special_sccs, DependencyGraph};
    pub use soct_model::{
        fingerprint_instance_shapes, fingerprint_predicates, fingerprint_ruleset,
        fingerprint_shapes, Atom, ConstId, Database, Fingerprint, Instance, Interner, NullId, Rgs,
        Schema, SetFingerprint, Shape, Term, Tgd, TgdClass, VarId,
    };
    pub use soct_parser::{parse_facts, parse_tgds, write_program, Program};
    pub use soct_storage::{InstanceSource, LimitView, StorageEngine, TupleSource};
}
