//! Triggers and trigger application (Definition 3.1).
//!
//! A trigger for Σ on I is a pair `(σ, h)` with `h : body(σ) → I` a
//! homomorphism. Its result `result(σ, h)` instantiates `head(σ)` by `h` on
//! the frontier and by canonical nulls on the existential variables.

use crate::null_gen::NullFactory;
use soct_model::fxhash::{FxHashMap, FxHasher};
use soct_model::{Atom, PredId, Substitution, Term, Tgd, VarId};
use std::hash::Hasher;

/// How trigger application names its nulls — the knob that separates the
/// three chase variants (§1.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NullPolicy {
    /// `⊥^x_{σ, h|fr(σ)}`: semi-oblivious naming (Definition 3.1).
    ByFrontier,
    /// `⊥^x_{σ, h}`: oblivious naming (one null set per full body match).
    ByFullBody,
    /// Fresh nulls per application: restricted chase.
    Fresh,
}

/// The witness tuple a trigger is deduplicated (and its nulls named) by:
/// frontier projection for the semi-oblivious chase, full body-variable
/// projection for the oblivious chase.
pub fn witness(tgd: &Tgd, sub: &Substitution, policy: NullPolicy) -> Vec<Term> {
    match policy {
        NullPolicy::ByFrontier => sub.project(tgd.frontier()),
        NullPolicy::ByFullBody | NullPolicy::Fresh => {
            let mut vars = tgd.body_variables();
            vars.sort_unstable();
            sub.project(&vars)
        }
    }
}

/// `result(σ, h)`: the head atoms produced by a trigger, with nulls named
/// according to `policy`. `tgd_idx` identifies σ within its set (part of the
/// null name).
pub fn result_atoms(
    tgd: &Tgd,
    tgd_idx: u32,
    sub: &Substitution,
    wit: &[Term],
    nulls: &mut NullFactory,
    policy: NullPolicy,
) -> Vec<Atom> {
    // Bind existential variables.
    let mut full = sub.clone();
    match policy {
        NullPolicy::Fresh => {
            for &z in tgd.existential() {
                full.bind(z, Term::Null(nulls.fresh()));
            }
        }
        NullPolicy::ByFrontier | NullPolicy::ByFullBody => {
            for &z in tgd.existential() {
                full.bind(z, Term::Null(nulls.canonical(tgd_idx, wit, z)));
            }
        }
    }
    tgd.head().iter().map(|a| full.apply_atom(a)).collect()
}

// ── Packed trigger machinery (the `ChaseStore` hot path) ────────────────
//
// The engine no longer matches boxed `Atom`s: each TGD is compiled once
// into dense *slot* form (variables renamed to 0..n in `VarId` order, one
// slot per distinct variable), after which a substitution is a plain
// `[u64]` binding array and a witness is a `&[u64]` projection of it —
// no `Substitution` maps, no `Box<[Term]>` keys, no per-match allocation.

/// An atom compiled against a TGD's slot numbering: the i-th argument is
/// the variable in slot `slots[i]`.
#[derive(Clone, Debug)]
pub(crate) struct CompiledAtom {
    pub pred: PredId,
    pub slots: Box<[u16]>,
}

/// A TGD compiled for the packed engine.
#[derive(Clone, Debug)]
pub(crate) struct CompiledTgd {
    pub body: Vec<CompiledAtom>,
    pub head: Vec<CompiledAtom>,
    /// Number of distinct variables (slots) in the TGD.
    pub n_slots: usize,
    /// Frontier slots, `VarId`-ascending (= slot-ascending).
    pub frontier: Box<[u16]>,
    /// All body-variable slots, `VarId`-ascending — the full-body witness.
    pub witness_full: Box<[u16]>,
    /// Position of each frontier slot within `witness_full`.
    frontier_in_full: Box<[u16]>,
    /// `0..frontier.len()` — frontier positions within the frontier witness.
    frontier_identity: Box<[u16]>,
    /// Existential slots, `VarId`-ascending.
    pub existential: Box<[u16]>,
}

impl CompiledTgd {
    /// Compiles `tgd`, assigning slots to its variables in `VarId` order so
    /// slot-order projections coincide with the sorted-variable witness
    /// tuples of [`witness`].
    pub fn compile(tgd: &Tgd) -> Self {
        let mut vars: Vec<VarId> = Vec::new();
        for a in tgd.body().iter().chain(tgd.head()) {
            for t in a.terms.iter() {
                if let Term::Var(v) = *t {
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
            }
        }
        vars.sort_unstable();
        let slot_of = |v: VarId| vars.binary_search(&v).expect("var collected") as u16;
        let compile_atom = |a: &Atom| CompiledAtom {
            pred: a.pred,
            slots: a
                .terms
                .iter()
                .map(|t| slot_of(t.as_var().expect("TGDs are variable-only")))
                .collect(),
        };
        let mut body_vars = tgd.body_variables();
        body_vars.sort_unstable();
        let witness_full: Box<[u16]> = body_vars.iter().map(|&v| slot_of(v)).collect();
        let frontier: Box<[u16]> = tgd.frontier().iter().map(|&v| slot_of(v)).collect();
        let frontier_in_full: Box<[u16]> = tgd
            .frontier()
            .iter()
            .map(|v| body_vars.binary_search(v).expect("frontier ⊆ body vars") as u16)
            .collect();
        CompiledTgd {
            body: tgd.body().iter().map(compile_atom).collect(),
            head: tgd.head().iter().map(compile_atom).collect(),
            n_slots: vars.len(),
            frontier_identity: (0..frontier.len() as u16).collect(),
            frontier,
            witness_full,
            frontier_in_full,
            existential: tgd.existential().iter().map(|&v| slot_of(v)).collect(),
        }
    }

    /// The slots a trigger's witness tuple projects, per policy — the
    /// packed counterpart of [`witness`].
    pub fn witness_slots(&self, policy: NullPolicy) -> &[u16] {
        match policy {
            NullPolicy::ByFrontier => &self.frontier,
            NullPolicy::ByFullBody | NullPolicy::Fresh => &self.witness_full,
        }
    }

    /// For each frontier slot (in order), its position within the witness
    /// tuple of `policy` — how head instantiation recovers frontier values.
    pub fn frontier_positions(&self, policy: NullPolicy) -> &[u16] {
        match policy {
            NullPolicy::ByFrontier => &self.frontier_identity,
            NullPolicy::ByFullBody | NullPolicy::Fresh => &self.frontier_in_full,
        }
    }
}

/// Interns `(TGD, packed witness tuple)` pairs, assigning dense ids.
///
/// This is simultaneously the engine's applied-trigger dedup set and the
/// key space for canonical null naming: tuples live in one append-only
/// arena, the map buckets by hash, and collisions compare arena contents —
/// interning allocates nothing per probe.
#[derive(Default, Debug)]
pub(crate) struct WitnessTable {
    /// Concatenated witness tuples.
    data: Vec<u64>,
    /// Per witness id: owning TGD and tuple range in `data`.
    entries: Vec<(u32, u32, u32)>,
    /// Per witness id: its `hash(tgd, tuple)` — kept so parallel rounds
    /// can merge worker-local tables into the global one without
    /// re-hashing every tuple.
    hashes: Vec<u64>,
    /// `hash(tgd, tuple) → witness ids` (collision chains).
    map: FxHashMap<u64, Vec<u32>>,
}

impl WitnessTable {
    /// The dedup hash of a `(TGD, witness tuple)` pair.
    pub fn hash(tgd: u32, tuple: &[u64]) -> u64 {
        let mut h = FxHasher::default();
        h.write_u32(tgd);
        for &v in tuple {
            h.write_u64(v);
        }
        h.finish()
    }

    /// Returns the id of `(tgd, tuple)`, interning it if new; the flag is
    /// `true` exactly when this call interned it.
    pub fn intern(&mut self, tgd: u32, tuple: &[u64]) -> (u32, bool) {
        self.intern_prehashed(tgd, tuple, Self::hash(tgd, tuple))
    }

    /// [`WitnessTable::intern`] with the tuple's hash already known (the
    /// parallel merge path: workers hashed while deduplicating locally).
    pub fn intern_prehashed(&mut self, tgd: u32, tuple: &[u64], hash: u64) -> (u32, bool) {
        debug_assert_eq!(hash, Self::hash(tgd, tuple));
        if let Some(ids) = self.map.get(&hash) {
            for &id in ids {
                let (t, start, end) = self.entries[id as usize];
                if t == tgd && &self.data[start as usize..end as usize] == tuple {
                    return (id, false);
                }
            }
        }
        let id = self.entries.len() as u32;
        let start = self.data.len() as u32;
        self.data.extend_from_slice(tuple);
        self.entries.push((tgd, start, self.data.len() as u32));
        self.hashes.push(hash);
        self.map.entry(hash).or_default().push(id);
        (id, true)
    }

    /// The stored hash of witness `id`.
    pub fn entry_hash(&self, id: u32) -> u64 {
        self.hashes[id as usize]
    }

    /// True when `(tgd, tuple)` is already interned. A non-mutating probe:
    /// parallel workers use it to drop candidates that were interned in
    /// earlier rounds before they ever reach the merge phase.
    pub fn contains_prehashed(&self, tgd: u32, tuple: &[u64], hash: u64) -> bool {
        debug_assert_eq!(hash, Self::hash(tgd, tuple));
        if let Some(ids) = self.map.get(&hash) {
            for &id in ids {
                let (t, start, end) = self.entries[id as usize];
                if t == tgd && &self.data[start as usize..end as usize] == tuple {
                    return true;
                }
            }
        }
        false
    }

    /// The witness tuple of `id`.
    pub fn tuple(&self, id: u32) -> &[u64] {
        let (_, start, end) = self.entries[id as usize];
        &self.data[start as usize..end as usize]
    }

    /// Number of interned witnesses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been interned yet.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::{ConstId, Schema, VarId};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn setup() -> (Schema, Tgd) {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        // r(x, y) → ∃z p(x, z)
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        (s, tgd)
    }

    #[test]
    fn frontier_witness_ignores_non_frontier_vars() {
        let (_s, tgd) = setup();
        let mut sub1 = Substitution::new();
        sub1.bind(VarId(0), c(1));
        sub1.bind(VarId(1), c(2));
        let mut sub2 = Substitution::new();
        sub2.bind(VarId(0), c(1));
        sub2.bind(VarId(1), c(9)); // different y
        assert_eq!(
            witness(&tgd, &sub1, NullPolicy::ByFrontier),
            witness(&tgd, &sub2, NullPolicy::ByFrontier)
        );
        assert_ne!(
            witness(&tgd, &sub1, NullPolicy::ByFullBody),
            witness(&tgd, &sub2, NullPolicy::ByFullBody)
        );
    }

    #[test]
    fn semi_oblivious_reuses_nulls_across_same_frontier() {
        let (_s, tgd) = setup();
        let mut nulls = NullFactory::new();
        let mut sub1 = Substitution::new();
        sub1.bind(VarId(0), c(1));
        sub1.bind(VarId(1), c(2));
        let w1 = witness(&tgd, &sub1, NullPolicy::ByFrontier);
        let r1 = result_atoms(&tgd, 0, &sub1, &w1, &mut nulls, NullPolicy::ByFrontier);

        let mut sub2 = Substitution::new();
        sub2.bind(VarId(0), c(1));
        sub2.bind(VarId(1), c(9));
        let w2 = witness(&tgd, &sub2, NullPolicy::ByFrontier);
        let r2 = result_atoms(&tgd, 0, &sub2, &w2, &mut nulls, NullPolicy::ByFrontier);
        assert_eq!(r1, r2, "same frontier ⇒ identical result atoms");

        let w3 = witness(&tgd, &sub1, NullPolicy::ByFullBody);
        let r3 = result_atoms(&tgd, 0, &sub2, &w3, &mut nulls, NullPolicy::ByFullBody);
        assert_ne!(r1, r3, "full-body naming separates the nulls");
    }

    #[test]
    fn fresh_policy_always_invents() {
        let (_s, tgd) = setup();
        let mut nulls = NullFactory::new();
        let mut sub = Substitution::new();
        sub.bind(VarId(0), c(1));
        sub.bind(VarId(1), c(2));
        let w = witness(&tgd, &sub, NullPolicy::Fresh);
        let r1 = result_atoms(&tgd, 0, &sub, &w, &mut nulls, NullPolicy::Fresh);
        let r2 = result_atoms(&tgd, 0, &sub, &w, &mut nulls, NullPolicy::Fresh);
        assert_ne!(r1, r2);
    }

    #[test]
    fn compiled_slots_follow_var_order() {
        // r(y, x) → ∃z p(x, z) with VarId(5)=y, VarId(2)=x, VarId(9)=z:
        // slots sort as x=0, y=1, z=2.
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(5), v(2)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(2), v(9)]).unwrap()],
        )
        .unwrap();
        let ct = CompiledTgd::compile(&tgd);
        assert_eq!(ct.n_slots, 3);
        assert_eq!(&*ct.body[0].slots, &[1, 0]);
        assert_eq!(&*ct.head[0].slots, &[0, 2]);
        assert_eq!(&*ct.frontier, &[0]);
        assert_eq!(&*ct.witness_full, &[0, 1]);
        assert_eq!(&*ct.existential, &[2]);
        assert_eq!(ct.witness_slots(NullPolicy::ByFrontier), &[0]);
        assert_eq!(ct.witness_slots(NullPolicy::Fresh), &[0, 1]);
        assert_eq!(ct.frontier_positions(NullPolicy::ByFrontier), &[0]);
        assert_eq!(ct.frontier_positions(NullPolicy::ByFullBody), &[0]);
    }

    #[test]
    fn packed_witness_projection_matches_term_witness() {
        let (_s, tgd) = setup();
        let ct = CompiledTgd::compile(&tgd);
        let mut sub = Substitution::new();
        sub.bind(VarId(0), c(3));
        sub.bind(VarId(1), c(8));
        // Slot binding array in slot order (x=slot0, y=slot1).
        let binding = [c(3).pack(), c(8).pack()];
        for policy in [NullPolicy::ByFrontier, NullPolicy::ByFullBody] {
            let term_wit: Vec<u64> = witness(&tgd, &sub, policy)
                .iter()
                .map(|t| t.pack())
                .collect();
            let packed_wit: Vec<u64> = ct
                .witness_slots(policy)
                .iter()
                .map(|&s| binding[s as usize])
                .collect();
            assert_eq!(term_wit, packed_wit, "{policy:?}");
        }
    }

    #[test]
    fn witness_table_interns_by_tgd_and_tuple() {
        let mut wt = WitnessTable::default();
        let (a, new_a) = wt.intern(0, &[1, 2]);
        assert!(new_a);
        assert_eq!(wt.intern(0, &[1, 2]), (a, false));
        let (b, new_b) = wt.intern(1, &[1, 2]); // same tuple, other TGD
        assert!(new_b && b != a);
        let (c_, new_c) = wt.intern(0, &[]); // empty frontier witness
        assert!(new_c);
        assert_eq!(wt.tuple(a), &[1, 2]);
        assert_eq!(wt.tuple(c_), &[] as &[u64]);
        assert_eq!(wt.len(), 3);
    }

    #[test]
    fn result_preserves_frontier_bindings() {
        let (_s, tgd) = setup();
        let mut nulls = NullFactory::new();
        let mut sub = Substitution::new();
        sub.bind(VarId(0), c(4));
        sub.bind(VarId(1), c(5));
        let w = witness(&tgd, &sub, NullPolicy::ByFrontier);
        let out = result_atoms(&tgd, 0, &sub, &w, &mut nulls, NullPolicy::ByFrontier);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].terms[0], c(4));
        assert!(out[0].terms[1].is_null());
    }
}
