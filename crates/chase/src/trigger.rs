//! Triggers and trigger application (Definition 3.1).
//!
//! A trigger for Σ on I is a pair `(σ, h)` with `h : body(σ) → I` a
//! homomorphism. Its result `result(σ, h)` instantiates `head(σ)` by `h` on
//! the frontier and by canonical nulls on the existential variables.

use crate::null_gen::NullFactory;
use soct_model::{Atom, Substitution, Term, Tgd};

/// How trigger application names its nulls — the knob that separates the
/// three chase variants (§1.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NullPolicy {
    /// `⊥^x_{σ, h|fr(σ)}`: semi-oblivious naming (Definition 3.1).
    ByFrontier,
    /// `⊥^x_{σ, h}`: oblivious naming (one null set per full body match).
    ByFullBody,
    /// Fresh nulls per application: restricted chase.
    Fresh,
}

/// The witness tuple a trigger is deduplicated (and its nulls named) by:
/// frontier projection for the semi-oblivious chase, full body-variable
/// projection for the oblivious chase.
pub fn witness(tgd: &Tgd, sub: &Substitution, policy: NullPolicy) -> Vec<Term> {
    match policy {
        NullPolicy::ByFrontier => sub.project(tgd.frontier()),
        NullPolicy::ByFullBody | NullPolicy::Fresh => {
            let mut vars = tgd.body_variables();
            vars.sort_unstable();
            sub.project(&vars)
        }
    }
}

/// `result(σ, h)`: the head atoms produced by a trigger, with nulls named
/// according to `policy`. `tgd_idx` identifies σ within its set (part of the
/// null name).
pub fn result_atoms(
    tgd: &Tgd,
    tgd_idx: u32,
    sub: &Substitution,
    wit: &[Term],
    nulls: &mut NullFactory,
    policy: NullPolicy,
) -> Vec<Atom> {
    // Bind existential variables.
    let mut full = sub.clone();
    match policy {
        NullPolicy::Fresh => {
            for &z in tgd.existential() {
                full.bind(z, Term::Null(nulls.fresh()));
            }
        }
        NullPolicy::ByFrontier | NullPolicy::ByFullBody => {
            for &z in tgd.existential() {
                full.bind(z, Term::Null(nulls.canonical(tgd_idx, wit, z)));
            }
        }
    }
    tgd.head().iter().map(|a| full.apply_atom(a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::{ConstId, Schema, VarId};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn setup() -> (Schema, Tgd) {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        // r(x, y) → ∃z p(x, z)
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        (s, tgd)
    }

    #[test]
    fn frontier_witness_ignores_non_frontier_vars() {
        let (_s, tgd) = setup();
        let mut sub1 = Substitution::new();
        sub1.bind(VarId(0), c(1));
        sub1.bind(VarId(1), c(2));
        let mut sub2 = Substitution::new();
        sub2.bind(VarId(0), c(1));
        sub2.bind(VarId(1), c(9)); // different y
        assert_eq!(
            witness(&tgd, &sub1, NullPolicy::ByFrontier),
            witness(&tgd, &sub2, NullPolicy::ByFrontier)
        );
        assert_ne!(
            witness(&tgd, &sub1, NullPolicy::ByFullBody),
            witness(&tgd, &sub2, NullPolicy::ByFullBody)
        );
    }

    #[test]
    fn semi_oblivious_reuses_nulls_across_same_frontier() {
        let (_s, tgd) = setup();
        let mut nulls = NullFactory::new();
        let mut sub1 = Substitution::new();
        sub1.bind(VarId(0), c(1));
        sub1.bind(VarId(1), c(2));
        let w1 = witness(&tgd, &sub1, NullPolicy::ByFrontier);
        let r1 = result_atoms(&tgd, 0, &sub1, &w1, &mut nulls, NullPolicy::ByFrontier);

        let mut sub2 = Substitution::new();
        sub2.bind(VarId(0), c(1));
        sub2.bind(VarId(1), c(9));
        let w2 = witness(&tgd, &sub2, NullPolicy::ByFrontier);
        let r2 = result_atoms(&tgd, 0, &sub2, &w2, &mut nulls, NullPolicy::ByFrontier);
        assert_eq!(r1, r2, "same frontier ⇒ identical result atoms");

        let w3 = witness(&tgd, &sub1, NullPolicy::ByFullBody);
        let r3 = result_atoms(&tgd, 0, &sub2, &w3, &mut nulls, NullPolicy::ByFullBody);
        assert_ne!(r1, r3, "full-body naming separates the nulls");
    }

    #[test]
    fn fresh_policy_always_invents() {
        let (_s, tgd) = setup();
        let mut nulls = NullFactory::new();
        let mut sub = Substitution::new();
        sub.bind(VarId(0), c(1));
        sub.bind(VarId(1), c(2));
        let w = witness(&tgd, &sub, NullPolicy::Fresh);
        let r1 = result_atoms(&tgd, 0, &sub, &w, &mut nulls, NullPolicy::Fresh);
        let r2 = result_atoms(&tgd, 0, &sub, &w, &mut nulls, NullPolicy::Fresh);
        assert_ne!(r1, r2);
    }

    #[test]
    fn result_preserves_frontier_bindings() {
        let (_s, tgd) = setup();
        let mut nulls = NullFactory::new();
        let mut sub = Substitution::new();
        sub.bind(VarId(0), c(4));
        sub.bind(VarId(1), c(5));
        let w = witness(&tgd, &sub, NullPolicy::ByFrontier);
        let out = result_atoms(&tgd, 0, &sub, &w, &mut nulls, NullPolicy::ByFrontier);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].terms[0], c(4));
        assert!(out[0].terms[1].is_null());
    }
}
