//! # soct-chase
//!
//! The chase procedures of §1.1/§3 — oblivious, semi-oblivious, and
//! restricted — with canonical null naming (Definition 3.1), semi-naive
//! trigger enumeration, atom/round budgets, worst-case chase-size bounds,
//! and the materialization-based termination checker the paper's
//! exploratory analysis dismissed as impractical (§1.4). General (multi-atom
//! body/head) TGDs are supported throughout; the linear classes are simply
//! the fast path.
//!
//! ## The `ChaseStore` layer
//!
//! Since the paper runs every experiment against a database-resident
//! instance, the engines here run on a packed columnar tuple store
//! ([`store::ChaseStore`]) rather than on boxed atoms, with one backend
//! per deployment mode:
//!
//! - [`ColumnarStore`] — the **in-memory** mode (§5.3): per-predicate
//!   packed-`u64` row arenas with an incremental position index.
//! - [`store::EngineBackedStore`] — the **in-database** mode (§5.4): the
//!   instance lives in a `soct_storage::StorageEngine` (our PostgreSQL
//!   stand-in); [`run_chase_on_engine`] chases it directly and writes every
//!   derived tuple back through to the engine's tables.
//!
//! [`run_chase`] remains the boxed-[`soct_model::Instance`] compatibility
//! wrapper; [`run_chase_columnar`] returns the packed result, which
//! implements `soct_storage::TupleSource` and therefore feeds `FindShapes`
//! and the termination checkers without a copy-out conversion.
//!
//! ## Parallel rounds
//!
//! Trigger enumeration is sharded across scoped worker threads whenever
//! [`ChaseConfig::threads`] resolves to more than one ([`resolve_threads`])
//! and the round is large enough to amortise the fan-out. Results are
//! **bit-identical** to the sequential engine — same atoms, null names,
//! rounds, and trigger counts — because application stays a deterministic
//! single-writer merge phase (see the [`parallel`] module and
//! `docs/ARCHITECTURE.md`).
//!
//! ```
//! use soct_chase::{run_chase, ChaseConfig, ChaseOutcome, ChaseVariant};
//! use soct_model::{Atom, ConstId, Instance, Schema, Term, Tgd, VarId};
//!
//! // e(x,y), e(y,z) → e(x,z) over a 64-edge path, on four worker threads.
//! let mut schema = Schema::new();
//! let e = schema.add_predicate("e", 2).unwrap();
//! let v = |i| Term::Var(VarId(i));
//! let tgd = Tgd::new(
//!     vec![
//!         Atom::new(&schema, e, vec![v(0), v(1)]).unwrap(),
//!         Atom::new(&schema, e, vec![v(1), v(2)]).unwrap(),
//!     ],
//!     vec![Atom::new(&schema, e, vec![v(0), v(2)]).unwrap()],
//! )
//! .unwrap();
//! let mut db = Instance::new();
//! for i in 0..64 {
//!     let c = |i| Term::Const(ConstId(i));
//!     db.insert(Atom::new(&schema, e, vec![c(i), c(i + 1)]).unwrap());
//! }
//! let cfg = ChaseConfig::unbounded(ChaseVariant::SemiOblivious).with_threads(4);
//! let par = run_chase(&db, std::slice::from_ref(&tgd), &cfg);
//! assert_eq!(par.outcome, ChaseOutcome::Terminated);
//! assert_eq!(par.instance.len(), 64 * 65 / 2); // the transitive closure
//!
//! // Bit-identical to the sequential engine.
//! let seq = run_chase(&db, &[tgd], &cfg.with_threads(1));
//! assert_eq!(par.instance.atoms(), seq.instance.atoms());
//! ```

#![warn(missing_docs)]

pub mod bounds;
pub mod engine;
pub mod materialization;
pub mod null_gen;
pub mod parallel;
pub mod store;
pub mod trigger;

pub use bounds::{chase_size_bound, position_ranks};
pub use engine::{
    run_chase, run_chase_columnar, run_chase_on_engine, run_chase_on_store, ChaseConfig,
    ChaseOutcome, ChaseResult, ChaseStats, ChaseVariant, StoreChaseResult,
};
pub use materialization::{
    is_chase_finite_materialization, MaterializationReport, MaterializationVerdict,
};
pub use null_gen::NullFactory;
pub use parallel::resolve_threads;
pub use store::{ChaseStore, ColumnarStore, EngineBackedStore, RowId};
pub use trigger::{result_atoms, witness, NullPolicy};
