//! # soct-chase
//!
//! The chase procedures of §1.1/§3 — oblivious, semi-oblivious, and
//! restricted — with canonical null naming (Definition 3.1), semi-naive
//! trigger enumeration, atom/round budgets, worst-case chase-size bounds,
//! and the materialization-based termination checker the paper's
//! exploratory analysis dismissed as impractical (§1.4). General (multi-atom
//! body/head) TGDs are supported throughout; the linear classes are simply
//! the fast path.
//!
//! ## The `ChaseStore` layer
//!
//! Since the paper runs every experiment against a database-resident
//! instance, the engines here run on a packed columnar tuple store
//! ([`store::ChaseStore`]) rather than on boxed atoms, with one backend
//! per deployment mode:
//!
//! - [`ColumnarStore`] — the **in-memory** mode (§5.3): per-predicate
//!   packed-`u64` row arenas with an incremental position index.
//! - [`store::EngineBackedStore`] — the **in-database** mode (§5.4): the
//!   instance lives in a `soct_storage::StorageEngine` (our PostgreSQL
//!   stand-in); [`run_chase_on_engine`] chases it directly and writes every
//!   derived tuple back through to the engine's tables.
//!
//! [`run_chase`] remains the boxed-[`soct_model::Instance`] compatibility
//! wrapper; [`run_chase_columnar`] returns the packed result, which
//! implements `soct_storage::TupleSource` and therefore feeds `FindShapes`
//! and the termination checkers without a copy-out conversion.

pub mod bounds;
pub mod engine;
pub mod materialization;
pub mod null_gen;
pub mod store;
pub mod trigger;

pub use bounds::{chase_size_bound, position_ranks};
pub use engine::{
    run_chase, run_chase_columnar, run_chase_on_engine, run_chase_on_store, ChaseConfig,
    ChaseOutcome, ChaseResult, ChaseStats, ChaseVariant, StoreChaseResult,
};
pub use materialization::{
    is_chase_finite_materialization, MaterializationReport, MaterializationVerdict,
};
pub use null_gen::NullFactory;
pub use store::{ChaseStore, ColumnarStore, EngineBackedStore, RowId};
pub use trigger::{result_atoms, witness, NullPolicy};
