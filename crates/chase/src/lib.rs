//! # soct-chase
//!
//! The chase procedures of §1.1/§3 — oblivious, semi-oblivious, and
//! restricted — with canonical null naming (Definition 3.1), semi-naive
//! trigger enumeration, atom/round budgets, worst-case chase-size bounds,
//! and the materialization-based termination checker the paper's
//! exploratory analysis dismissed as impractical (§1.4). General (multi-atom
//! body/head) TGDs are supported throughout; the linear classes are simply
//! the fast path.

pub mod bounds;
pub mod engine;
pub mod materialization;
pub mod null_gen;
pub mod trigger;

pub use bounds::{chase_size_bound, position_ranks};
pub use engine::{run_chase, ChaseConfig, ChaseOutcome, ChaseResult, ChaseVariant};
pub use materialization::{
    is_chase_finite_materialization, MaterializationReport, MaterializationVerdict,
};
pub use null_gen::NullFactory;
pub use trigger::{result_atoms, witness, NullPolicy};
