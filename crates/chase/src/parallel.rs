//! The round-snapshot parallel execution layer of the chase engine.
//!
//! Trigger enumeration dominates chase runtime and is embarrassingly
//! parallel within a round: phase 1 of every round only *reads* the store,
//! so the round's frontier can be sharded across worker threads running
//! against an immutable snapshot — the store exactly as phase 2 of the
//! previous round left it. Application stays a deterministic single-writer
//! merge phase, which is what keeps parallel runs bit-identical to
//! sequential ones (null names, insertion order, rounds, and trigger
//! counts included). See `docs/ARCHITECTURE.md` for the full argument.
//!
//! ## Sharding
//!
//! The unit of work is an `EnumTask`: one `(TGD, delta position)` pair of
//! the semi-naive decomposition, optionally split further by row-range of
//! the body's first atom. Splitting on the *first* body atom is what makes
//! the merge deterministic: the backtracking matcher enumerates depth-0
//! candidates in ascending row order, so concatenating chunk results in
//! chunk order reproduces the sequential enumeration order exactly.
//!
//! ## Merge
//!
//! Workers never *mutate* the shared witness table, but they do read it:
//! the global table is frozen during phase 1, so workers drop candidates
//! that were interned in earlier rounds with one non-mutating probe
//! (`WitnessTable::contains_prehashed`) — in re-discovery-heavy
//! workloads (transitive closure re-derives most witness pairs every
//! round) this eliminates almost the entire merge. Surviving candidates
//! are interned into a task-local `WitnessTable` (deduplicating within
//! the task, recording each tuple's hash, preserving first-occurrence
//! order), and the engine then folds the task outputs into the global
//! table *in task order* without re-hashing. Because global interning
//! deduplicates across tasks and rounds, the resulting new-trigger
//! sequence — and therefore witness ids, null names, and insertion order —
//! is identical to the sequential engine's.
//!
//! ## The worker pool
//!
//! Workers are spawned once per chase run (lazily, at the first round
//! worth sharding) on a [`std::thread::scope`] and then parked on a
//! channel between rounds; the store lives behind an `RwLock` that hands
//! workers the read-only round snapshot and the single-writer merge phase
//! its exclusive access. Rounds with little work run inline on the
//! engine thread: waking the pool costs more than enumerating a few
//! hundred candidate rows, and one-trigger-per-round chases (the divergent
//! linear family) would otherwise pay that wake-up every round.

use crate::engine::match_ranged;
use crate::store::{ChaseStore, RowId, UNBOUND};
use crate::trigger::{CompiledTgd, NullPolicy, WitnessTable};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, RwLock};
use std::thread::Scope;

/// Rounds whose estimated frontier (total depth-0 candidate rows across
/// all tasks) is below this run inline — waking the worker pool would
/// exceed the enumeration work.
pub(crate) const PAR_MIN_ROUND_WORK: usize = 512;

/// Target depth-0 candidate rows per task chunk when splitting a hot
/// `(TGD, delta position)` pair.
const CHUNK_TARGET_ROWS: usize = 256;

/// Upper bound on the thread count `resolve_threads` infers automatically;
/// explicit requests (flag, env) may exceed it up to [`MAX_THREADS`].
const AUTO_THREAD_CAP: usize = 8;

/// Hard ceiling on any worker-pool size. An absurd `--threads`/
/// `SOCT_THREADS` value would otherwise ask the scope for that many OS
/// threads and abort the process on resource exhaustion.
const MAX_THREADS: usize = 256;

/// Resolves a requested worker-thread count.
///
/// - `requested > 0` is honoured, clamped to a hard ceiling of 256;
/// - `requested == 0` means *auto*: the `SOCT_THREADS` environment
///   variable if it parses to a positive integer (same ceiling),
///   otherwise [`std::thread::available_parallelism`] capped at 8.
///
/// ```
/// assert_eq!(soct_chase::resolve_threads(3), 3);
/// assert_eq!(soct_chase::resolve_threads(1_000_000), 256);
/// assert!(soct_chase::resolve_threads(0) >= 1);
/// ```
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested.min(MAX_THREADS);
    }
    if let Ok(v) = std::env::var("SOCT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n.min(MAX_THREADS);
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get().min(AUTO_THREAD_CAP))
}

/// One shard of a round's trigger frontier: the matches of TGD `tgd` whose
/// `delta_pos`-th body atom lies in the round delta and whose *first* body
/// atom matches a row with id in `[lo0, hi0)`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EnumTask {
    pub tgd: u32,
    pub delta_pos: usize,
    pub lo0: RowId,
    pub hi0: RowId,
}

/// The deduplicated matches of one task, in first-occurrence order. The
/// task-local witness table doubles as the ordered output buffer (tuples
/// *and* their hashes, so the merge never re-hashes).
pub(crate) struct TaskCandidates {
    pub tgd: u32,
    pub table: WitnessTable,
}

/// The state a parallel round shares between the engine thread and the
/// pool: the store (the round snapshot / single-writer target) and the
/// global witness table (read-only for workers during phase 1, the merge
/// target afterwards). Lives behind the engine's `RwLock`.
pub(crate) struct SharedState<'a, S: ChaseStore + ?Sized> {
    pub store: &'a mut S,
    pub witnesses: WitnessTable,
}

/// One round's worth of work, shared with the pool: the task list plus the
/// claim cursor workers pop tasks from.
pub(crate) struct RoundCtl {
    tasks: Vec<EnumTask>,
    delta_start: RowId,
    delta_end: RowId,
    cursor: AtomicUsize,
}

/// Builds the round's task list and returns it with the total estimated
/// work (depth-0 candidate rows across tasks). Hot `(TGD, delta position)`
/// pairs are split into row-range chunks of roughly [`CHUNK_TARGET_ROWS`]
/// candidates — capped at one chunk per worker, since finer splits only
/// multiply the cross-chunk duplicates the merge has to re-deduplicate.
pub(crate) fn build_tasks<S: ChaseStore + ?Sized>(
    compiled: &[CompiledTgd],
    store: &S,
    delta_start: RowId,
    delta_end: RowId,
    threads: usize,
) -> (Vec<EnumTask>, usize) {
    let mut tasks = Vec::new();
    let mut est_work = 0usize;
    for (ti, ctgd) in compiled.iter().enumerate() {
        let body_len = ctgd.body.len();
        for j in 0..body_len {
            // Range of body atom 0 under the semi-naive split for delta
            // position j (see the sequential engine's phase 1).
            let (lo0, hi0) = if j == 0 {
                (delta_start, delta_end)
            } else {
                (0, delta_start)
            };
            if lo0 >= hi0 {
                continue;
            }
            // No match can exist unless the delta position's predicate has
            // rows inside the delta itself.
            if j > 0 {
                let drows = store.rows_of(ctgd.body[j].pred);
                let ds = drows.partition_point(|&r| r < delta_start);
                let de = drows.partition_point(|&r| r < delta_end);
                if ds == de {
                    continue;
                }
            }
            // Depth-0 candidates are the rows of atom 0's predicate within
            // [lo0, hi0); posting lists are ascending, so binary search.
            let rows = store.rows_of(ctgd.body[0].pred);
            let s = rows.partition_point(|&r| r < lo0);
            let e = rows.partition_point(|&r| r < hi0);
            let count = e - s;
            if count == 0 {
                continue;
            }
            est_work += count;
            let chunks = (count / CHUNK_TARGET_ROWS).clamp(1, threads.max(1));
            let per = count.div_ceil(chunks);
            let mut c = s;
            while c < e {
                let chunk_end = (c + per).min(e);
                tasks.push(EnumTask {
                    tgd: ti as u32,
                    delta_pos: j,
                    // Tight row-id bounds of this candidate sub-slice.
                    lo0: rows[c],
                    hi0: rows[chunk_end - 1] + 1,
                });
                c = chunk_end;
            }
        }
    }
    (tasks, est_work)
}

/// Runs one task against the round snapshot, returning its locally
/// deduplicated witness candidates in enumeration order.
fn run_task<S: ChaseStore + ?Sized>(
    task: &EnumTask,
    compiled: &[CompiledTgd],
    policy: NullPolicy,
    store: &S,
    global: &WitnessTable,
    delta_start: RowId,
    delta_end: RowId,
) -> TaskCandidates {
    let ctgd = &compiled[task.tgd as usize];
    let body_len = ctgd.body.len();
    let j = task.delta_pos;
    let mut lo = vec![0 as RowId; body_len];
    let mut hi = vec![delta_end; body_len];
    lo[j] = delta_start;
    for h in hi.iter_mut().take(j) {
        *h = delta_start;
    }
    // Narrow atom 0 to this task's chunk (a sub-range of whatever the
    // semi-naive split already allowed, so correctness is unaffected).
    lo[0] = lo[0].max(task.lo0);
    hi[0] = hi[0].min(task.hi0);
    let mut binding = vec![UNBOUND; ctgd.n_slots];
    let wit_slots = ctgd.witness_slots(policy);
    let mut wit_scratch: Vec<u64> = Vec::with_capacity(wit_slots.len());
    let mut table = WitnessTable::default();
    match_ranged(&ctgd.body, store, &lo, &hi, &mut binding, &mut |b| {
        wit_scratch.clear();
        wit_scratch.extend(wit_slots.iter().map(|&s| b[s as usize]));
        let hash = WitnessTable::hash(task.tgd, &wit_scratch);
        // Witnesses interned in earlier rounds can never be new again:
        // drop them here (the global table is frozen during phase 1), so
        // the sequential merge only sees this round's candidates.
        if !global.contains_prehashed(task.tgd, &wit_scratch, hash) {
            table.intern_prehashed(task.tgd, &wit_scratch, hash);
        }
        true
    });
    TaskCandidates {
        tgd: task.tgd,
        table,
    }
}

/// The engine's persistent worker pool: spawned once per chase run on the
/// engine's thread scope, parked on a channel between rounds, torn down
/// when dropped (closing the channels joins the workers via the scope).
pub(crate) struct WorkerPool {
    txs: Vec<mpsc::Sender<Arc<RoundCtl>>>,
    /// One result channel per worker (not a shared one): if a worker
    /// panics mid-round, its sender drops and the engine's `recv` fails
    /// loudly instead of waiting forever for a message that never comes.
    done_rxs: Vec<mpsc::Receiver<Vec<(usize, TaskCandidates)>>>,
}

impl WorkerPool {
    /// Spawns `workers` threads on `scope`. Each worker waits for a round
    /// signal, takes a read lock on the store (the round snapshot), claims
    /// tasks off the shared cursor until the round is drained, and ships
    /// its `(task index, candidates)` pairs back.
    pub fn spawn<'scope, S>(
        scope: &'scope Scope<'scope, '_>,
        shared: &'scope RwLock<SharedState<'_, S>>,
        compiled: &'scope [CompiledTgd],
        policy: NullPolicy,
        workers: usize,
    ) -> Self
    where
        S: ChaseStore + Send + ?Sized,
    {
        let mut txs = Vec::with_capacity(workers);
        let mut done_rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<Arc<RoundCtl>>();
            txs.push(tx);
            let (done_tx, done_rx) = mpsc::channel();
            done_rxs.push(done_rx);
            scope.spawn(move || {
                while let Ok(ctl) = rx.recv() {
                    let guard = shared.read().expect("no worker panicked holding the store");
                    let snapshot: &S = &*guard.store;
                    let global = &guard.witnesses;
                    let mut outs: Vec<(usize, TaskCandidates)> = Vec::new();
                    loop {
                        let i = ctl.cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = ctl.tasks.get(i) else { break };
                        outs.push((
                            i,
                            run_task(
                                task,
                                compiled,
                                policy,
                                snapshot,
                                global,
                                ctl.delta_start,
                                ctl.delta_end,
                            ),
                        ));
                    }
                    drop(guard);
                    if done_tx.send(outs).is_err() {
                        break; // engine gone — shut down
                    }
                }
            });
        }
        WorkerPool { txs, done_rxs }
    }

    /// Fans one round's tasks out and blocks until every worker has
    /// drained the cursor. The result is **indexed by task** — callers
    /// merge in task order to reproduce the sequential enumeration order.
    ///
    /// The caller must not hold the store lock: workers take read locks.
    pub fn run_round(
        &self,
        tasks: Vec<EnumTask>,
        delta_start: RowId,
        delta_end: RowId,
    ) -> Vec<TaskCandidates> {
        let n = tasks.len();
        let ctl = Arc::new(RoundCtl {
            tasks,
            delta_start,
            delta_end,
            cursor: AtomicUsize::new(0),
        });
        for tx in &self.txs {
            tx.send(ctl.clone()).expect("workers outlive the round");
        }
        let mut slots: Vec<Option<TaskCandidates>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for rx in &self.done_rxs {
            let outs = rx.recv().expect("a chase worker panicked mid-round");
            for (i, out) in outs {
                slots[i] = Some(out);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every task was claimed by some worker"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ColumnarStore;
    use soct_model::{Atom, ConstId, Schema, Term, Tgd, VarId};

    fn c(i: u32) -> u64 {
        Term::Const(ConstId(i)).pack()
    }

    fn tc_setup() -> (Vec<CompiledTgd>, ColumnarStore) {
        let mut s = Schema::new();
        let e = s.add_predicate("e", 2).unwrap();
        let v = |i: u32| Term::Var(VarId(i));
        let tgd = Tgd::new(
            vec![
                Atom::new(&s, e, vec![v(0), v(1)]).unwrap(),
                Atom::new(&s, e, vec![v(1), v(2)]).unwrap(),
            ],
            vec![Atom::new(&s, e, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        let mut store = ColumnarStore::new();
        for i in 0..40u32 {
            store.insert(soct_model::PredId(0), &[c(i), c(i + 1)]);
        }
        (vec![CompiledTgd::compile(&tgd)], store)
    }

    #[test]
    fn explicit_thread_requests_win() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn tasks_cover_the_delta_exactly_once() {
        let (compiled, store) = tc_setup();
        let n = store.len() as RowId;
        // Whole store is the delta (round 1): j=0 scans every row, j=1's
        // "strictly older" range is empty; chunk bounds tile the candidate
        // rows without overlap.
        let (tasks, est) = build_tasks(&compiled, &store, 0, n, 4);
        assert_eq!(est, store.len(), "delta position 0 scans all rows");
        for pair in tasks.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if a.tgd == b.tgd && a.delta_pos == b.delta_pos {
                assert!(a.hi0 <= b.lo0, "chunks are disjoint and ordered");
            }
        }
        // A mid-run delta activates both positions.
        let mid = n / 2;
        let (_, est_mid) = build_tasks(&compiled, &store, mid, n, 4);
        assert_eq!(est_mid, store.len(), "delta + older ranges tile the store");
        // An empty delta yields no tasks at all.
        let (empty, est0) = build_tasks(&compiled, &store, n, n, 4);
        assert!(empty.is_empty());
        assert_eq!(est0, 0);
    }

    #[test]
    fn pool_rounds_match_sequential_interning() {
        let (compiled, mut store) = tc_setup();
        let n = store.len() as RowId;
        let policy = NullPolicy::ByFrontier;
        // Sequential reference: one global table, task-major order.
        let (tasks, _) = build_tasks(&compiled, &store, 0, n, 4);
        let empty = WitnessTable::default();
        let mut reference = WitnessTable::default();
        for t in &tasks {
            let out = run_task(t, &compiled, policy, &store, &empty, 0, n);
            for k in 0..out.table.len() as u32 {
                reference.intern_prehashed(out.tgd, out.table.tuple(k), out.table.entry_hash(k));
            }
        }
        // The pool: same tasks fanned out over 4 workers, merged in task
        // order — twice over, to exercise the park/wake cycle AND the
        // global pre-filter (round 2 sees round 1's table and must
        // produce nothing new).
        let lock = RwLock::new(SharedState {
            store: &mut store,
            witnesses: WitnessTable::default(),
        });
        std::thread::scope(|scope| {
            let pool = WorkerPool::spawn(scope, &lock, &compiled, policy, 4);
            for round in 0..2 {
                let (tasks, _) = {
                    let guard = lock.read().unwrap();
                    build_tasks(&compiled, &*guard.store, 0, n, 4)
                };
                let outs = pool.run_round(tasks, 0, n);
                let mut guard = lock.write().unwrap();
                let mut fresh = 0;
                for out in &outs {
                    for k in 0..out.table.len() as u32 {
                        let (_, is_new) = guard.witnesses.intern_prehashed(
                            out.tgd,
                            out.table.tuple(k),
                            out.table.entry_hash(k),
                        );
                        fresh += usize::from(is_new);
                    }
                }
                if round == 0 {
                    assert_eq!(fresh, reference.len(), "round 1 finds everything");
                } else {
                    assert_eq!(fresh, 0, "round 2 is pre-filtered to nothing");
                }
            }
        });
        let guard = lock.read().unwrap();
        assert_eq!(guard.witnesses.len(), reference.len());
        for id in 0..reference.len() as u32 {
            assert_eq!(guard.witnesses.tuple(id), reference.tuple(id));
        }
    }
}
