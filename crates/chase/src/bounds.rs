//! Worst-case bounds on the size of a *finite* semi-oblivious chase
//! (§1.4's materialization-based algorithm needs an integer `k_{D,Σ}` such
//! that the chase terminates iff it never exceeds `k_{D,Σ}` atoms).
//!
//! # The bound
//!
//! We use the classic rank-stratification argument behind weak acyclicity
//! (Fagin et al., *Data exchange: semantics and query answering*, TCS 2005;
//! sharpened for linear TGDs in \[9\] = Calautti–Gottlob–Pieris, PODS 2022):
//!
//! - The *rank* of a position π is the supremum of the number of special
//!   edges over paths of `dg(Σ)` ending in π, **restricted to the
//!   database-supported part of the graph**. If the chase of D with Σ is
//!   finite there is no D-supported special cycle, so every supported
//!   position has finite rank `r ≤ s` (s = number of special edges).
//! - Every null in the chase is created by some `(σ, x, frontier-witness)`
//!   and first lands at positions of rank ≥ 1; a value occurring at a
//!   position of rank i was built from values of rank < i. Writing `E` for
//!   the number of `(σ, existential variable)` pairs and `a` for the maximum
//!   frontier size, the number of distinct values of rank ≤ i obeys
//!   `T₀ = |dom(D)|`, `T_{i+1} = T_i + E · T_iᵃ`.
//! - Hence, when the chase is finite, it holds that
//!   `|chase(D,Σ)| ≤ |D| + Σ_R T_rᵃʳ⁽ᴿ⁾ ≤ |D| + |sch| · T_r^{max-arity}`.
//!
//! If the supported subgraph *does* contain a special cycle the chase is
//! infinite and any bound works; we return `u128::MAX` (saturated), which is
//! also what the astronomically-large honest bounds quickly saturate to —
//! precisely the phenomenon that makes the materialization-based algorithm
//! impractical (§1.4).
//!
//! For non-simple linear TGDs this bound must be computed on the
//! *simplified* system (Theorem 3.6): `chase(D,Σ)` and
//! `chase(simple(D), simple(Σ))` are finite together, and simplification
//! maps chase atoms 1:1, so a bound for the simplified system bounds the
//! original. `soct-core` wires that up; this module is agnostic about where
//! its `(schema, tgds, db)` triple came from.

use soct_graph::{find_special_sccs, DependencyGraph};
use soct_model::{Instance, PredId, Schema, Tgd};

/// Per-position ranks. `None` = unbounded (the position lies on or behind a
/// supported special cycle).
pub fn position_ranks(
    g: &DependencyGraph,
    schema: &Schema,
    is_db_pred: impl Fn(PredId) -> bool,
) -> Vec<Option<u32>> {
    let n = g.num_nodes();
    // Supported nodes: forward-reachable from a position of a database
    // predicate (including those positions themselves).
    let mut supported = vec![false; n];
    let mut queue: Vec<u32> = Vec::new();
    for v in 0..n as u32 {
        if is_db_pred(schema.position_at(v as usize).pred) {
            supported[v as usize] = true;
            queue.push(v);
        }
    }
    let mut qi = 0;
    while qi < queue.len() {
        let v = queue[qi];
        qi += 1;
        for (w, _) in g.successors(v) {
            if !supported[w as usize] {
                supported[w as usize] = true;
                queue.push(w);
            }
        }
    }

    // SCCs restricted to the supported subgraph: a supported special SCC
    // makes every node it reaches unbounded.
    let scc = find_special_sccs(g);
    let mut unbounded = vec![false; n];
    for e in g.edges() {
        if e.special
            && supported[e.from as usize]
            && supported[e.to as usize]
            && scc.scc_of[e.from as usize] == scc.scc_of[e.to as usize]
        {
            unbounded[e.from as usize] = true;
        }
    }
    // Propagate unboundedness forward.
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| unbounded[v as usize]).collect();
    let mut qi = 0;
    while qi < queue.len() {
        let v = queue[qi];
        qi += 1;
        for (w, _) in g.successors(v) {
            if !unbounded[w as usize] {
                unbounded[w as usize] = true;
                queue.push(w);
            }
        }
    }

    // Ranks on the remaining DAG-of-SCCs, processed in topological order
    // (Tarjan numbers components in reverse topological order, so descending
    // component id = sources first).
    let mut comp_rank = vec![0u32; scc.num_sccs];
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| scc.scc_of[b].cmp(&scc.scc_of[a]));
    // Process edges source-component-first: iterate components descending.
    let mut nodes_by_comp: Vec<Vec<u32>> = vec![Vec::new(); scc.num_sccs];
    for v in 0..n {
        nodes_by_comp[scc.scc_of[v] as usize].push(v as u32);
    }
    for c in (0..scc.num_sccs).rev() {
        let rank_c = comp_rank[c];
        for &v in &nodes_by_comp[c] {
            if !supported[v as usize] || unbounded[v as usize] {
                continue;
            }
            for (w, special) in g.successors(v) {
                let cw = scc.scc_of[w as usize] as usize;
                if cw == c {
                    continue; // intra-component edges are normal here
                }
                let candidate = rank_c.saturating_add(special as u32);
                if candidate > comp_rank[cw] {
                    comp_rank[cw] = candidate;
                }
            }
        }
    }

    (0..n)
        .map(|v| {
            if unbounded[v] {
                None
            } else if supported[v] {
                Some(comp_rank[scc.scc_of[v] as usize])
            } else {
                Some(0) // unsupported positions never hold derived values
            }
        })
        .collect()
}

/// The worst-case bound `k_{D,Σ}`: an upper bound on `|chase(D,Σ)|`
/// whenever the semi-oblivious chase is finite. Saturates at `u128::MAX`
/// (which is returned directly when a supported special cycle already
/// proves divergence).
pub fn chase_size_bound(schema: &Schema, tgds: &[Tgd], db: &Instance) -> u128 {
    let g = DependencyGraph::build(schema, tgds);
    let db_preds = db.non_empty_predicates();
    let is_db = |p: PredId| db_preds.binary_search(&p).is_ok();
    let ranks = position_ranks(&g, schema, is_db);
    if ranks.iter().any(|r| r.is_none()) {
        return u128::MAX;
    }
    let max_rank = ranks.iter().map(|r| r.unwrap()).max().unwrap_or(0);

    // E = number of (σ, existential variable) pairs; a = max frontier size
    // (≥ 1 to keep the recurrence monotone).
    let e: u128 = tgds.iter().map(|t| t.existential().len() as u128).sum();
    let a = tgds
        .iter()
        .map(|t| t.frontier().len())
        .max()
        .unwrap_or(1)
        .max(1);

    let n0 = db.active_domain().len().max(1) as u128;
    let mut t = n0;
    for _ in 0..max_rank {
        let powed = sat_pow(t, a as u32);
        t = t.saturating_add(e.saturating_mul(powed));
        if t == u128::MAX {
            return u128::MAX;
        }
    }

    // Atoms: |D| + Σ_R T^ar(R).
    let mut total = db.len() as u128;
    for p in schema.predicates() {
        total = total.saturating_add(sat_pow(t, schema.arity(p) as u32));
        if total == u128::MAX {
            return u128::MAX;
        }
    }
    total
}

/// Saturating integer power.
fn sat_pow(base: u128, exp: u32) -> u128 {
    let mut acc: u128 = 1;
    for _ in 0..exp {
        acc = acc.saturating_mul(base);
        if acc == u128::MAX {
            return u128::MAX;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::{Atom, ConstId, Term, VarId};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    #[test]
    fn acyclic_chain_gets_finite_bound() {
        // r(x,y) → ∃z p(x,z): one special stratum.
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&s, r, vec![c(0), c(1)]).unwrap());
        let bound = chase_size_bound(&s, std::slice::from_ref(&tgd), &db);
        assert!(bound < u128::MAX);
        // The bound must dominate the actual chase size.
        let res = crate::engine::run_chase(
            &db,
            &[tgd],
            &crate::engine::ChaseConfig::unbounded(crate::engine::ChaseVariant::SemiOblivious),
        );
        assert!(res.instance.len() as u128 <= bound);
    }

    #[test]
    fn supported_special_cycle_saturates() {
        let mut s = Schema::new();
        let r = s.add_predicate("R", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&s, r, vec![c(0), c(1)]).unwrap());
        assert_eq!(chase_size_bound(&s, &[tgd], &db), u128::MAX);
    }

    #[test]
    fn unsupported_special_cycle_keeps_finite_bound() {
        // The cycle lives in predicate q, but D only mentions r which does
        // not feed q: ranks stay finite on the supported part.
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        let q = s.add_predicate("q", 2).unwrap();
        let safe = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        let cyc = Tgd::new(
            vec![Atom::new(&s, q, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, q, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&s, r, vec![c(0), c(1)]).unwrap());
        let bound = chase_size_bound(&s, &[safe, cyc], &db);
        assert!(bound < u128::MAX);
    }

    #[test]
    fn ranks_grow_along_special_chains() {
        // r(x) → ∃z p(x,z); p(x,y) → ∃z q(y,z): rank((q,2)) = 2.
        let mut s = Schema::new();
        let r = s.add_predicate("r", 1).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        let q = s.add_predicate("q", 2).unwrap();
        let t1 = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(0), v(1)]).unwrap()],
        )
        .unwrap();
        let t2 = Tgd::new(
            vec![Atom::new(&s, p, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, q, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let g = DependencyGraph::build(&s, &[t1, t2]);
        let ranks = position_ranks(&g, &s, |pr| pr == r);
        let pos = |pred: PredId, i: usize| s.position_index(soct_model::Position::new(pred, i));
        assert_eq!(ranks[pos(r, 0)], Some(0));
        assert_eq!(ranks[pos(p, 1)], Some(1));
        assert_eq!(ranks[pos(q, 1)], Some(2));
    }

    #[test]
    fn bound_is_monotone_in_database_size() {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        let mut small = Instance::new();
        small.insert(Atom::new(&s, r, vec![c(0), c(1)]).unwrap());
        let mut big = Instance::new();
        for i in 0..10 {
            big.insert(Atom::new(&s, r, vec![c(i), c(i + 1)]).unwrap());
        }
        let bs = chase_size_bound(&s, std::slice::from_ref(&tgd), &small);
        let bb = chase_size_bound(&s, std::slice::from_ref(&tgd), &big);
        assert!(bs <= bb);
    }
}
