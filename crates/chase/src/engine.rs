//! The chase engines: oblivious, semi-oblivious, and restricted (§1.1, §3).
//!
//! All three run round-based, mirroring the `chase_i` fixpoint of §3:
//! round i enumerates the triggers on `chase_{i-1}` and applies the new
//! ones. Trigger enumeration is *semi-naive*: a homomorphism is considered
//! in the first round where it can use an atom produced in the previous
//! round, so every trigger is enumerated exactly once over the whole run.
//!
//! Variant differences (Definition 3.1 and §1.1):
//! - **Oblivious**: apply once per `(σ, h)` (full body witness); nulls named
//!   by the full witness.
//! - **Semi-oblivious**: apply once per `(σ, h|fr(σ))`; nulls named by the
//!   frontier witness (`⊥^x_{σ, h|fr(σ)}`), which makes results
//!   set-deterministic.
//! - **Restricted**: apply only if the head is not already satisfiable via
//!   an extension of `h|fr(σ)`; fresh nulls. Triggers are applied in a
//!   deterministic order within a round (the classic sequential policy);
//!   satisfaction is monotone, so each trigger needs checking only once.

use crate::null_gen::NullFactory;
use crate::trigger::{result_atoms, witness, NullPolicy};
use soct_model::fxhash::FxHashSet;
use soct_model::homomorphism::{exists_homomorphism, match_atom};
use soct_model::{Atom, Instance, Substitution, Term, Tgd};

/// Which chase to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseVariant {
    Oblivious,
    SemiOblivious,
    Restricted,
}

impl ChaseVariant {
    fn null_policy(self) -> NullPolicy {
        match self {
            ChaseVariant::Oblivious => NullPolicy::ByFullBody,
            ChaseVariant::SemiOblivious => NullPolicy::ByFrontier,
            ChaseVariant::Restricted => NullPolicy::Fresh,
        }
    }
}

/// Budgets for a chase run. The chase may be infinite; budgets make every
/// run terminate with an honest outcome.
#[derive(Clone, Copy, Debug)]
pub struct ChaseConfig {
    pub variant: ChaseVariant,
    /// Stop once the instance holds this many atoms.
    pub max_atoms: usize,
    /// Stop after this many rounds (`chase_i` levels).
    pub max_rounds: usize,
}

impl ChaseConfig {
    /// A configuration with effectively unlimited budgets — use only when
    /// termination is already known.
    pub fn unbounded(variant: ChaseVariant) -> Self {
        ChaseConfig {
            variant,
            max_atoms: usize::MAX,
            max_rounds: usize::MAX,
        }
    }

    /// A configuration with an atom budget.
    pub fn with_max_atoms(variant: ChaseVariant, max_atoms: usize) -> Self {
        ChaseConfig {
            variant,
            max_atoms,
            max_rounds: usize::MAX,
        }
    }
}

/// How a chase run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseOutcome {
    /// Fixpoint reached: the returned instance is `chase(D, Σ)`.
    Terminated,
    /// The atom budget was hit; the instance is a prefix of the chase.
    AtomBudgetExceeded,
    /// The round budget was hit.
    RoundBudgetExceeded,
}

/// The output of a chase run.
#[derive(Debug)]
pub struct ChaseResult {
    pub instance: Instance,
    pub outcome: ChaseOutcome,
    /// Number of completed rounds (`i` such that the result is `chase_i`).
    pub rounds: usize,
    /// Triggers applied (atoms may be fewer: set semantics).
    pub triggers_applied: usize,
    /// Nulls minted.
    pub nulls_created: usize,
}

impl ChaseResult {
    /// Atoms beyond the input database.
    pub fn derived_atoms(&self, db_len: usize) -> usize {
        self.instance.len().saturating_sub(db_len)
    }
}

/// Runs the chase of `db` with `tgds` under `config`.
pub fn run_chase(db: &Instance, tgds: &[Tgd], config: &ChaseConfig) -> ChaseResult {
    let mut inst = Instance::with_index();
    for a in db.atoms() {
        inst.insert(a.clone());
    }
    let policy = config.variant.null_policy();
    let mut nulls = NullFactory::new();
    // Dedup key: (TGD index, witness tuple). For the restricted chase the
    // key is the full body witness: each homomorphism is *checked* once
    // (satisfaction is monotone, so a skipped trigger stays inapplicable).
    let mut applied: FxHashSet<(u32, Box<[Term]>)> = FxHashSet::default();
    let mut triggers_applied = 0usize;
    let mut rounds = 0usize;
    let mut delta_start = 0u32;
    let mut outcome = ChaseOutcome::Terminated;

    'rounds: loop {
        let delta_end = inst.len() as u32;
        if delta_start == delta_end {
            break; // fixpoint
        }
        if rounds >= config.max_rounds {
            outcome = ChaseOutcome::RoundBudgetExceeded;
            break;
        }
        rounds += 1;
        // Phase 1: enumerate the round's new triggers. The matcher borrows
        // the instance immutably, so application is deferred to phase 2.
        let mut new_triggers: Vec<(u32, Substitution, Vec<Term>)> = Vec::new();
        for (ti, tgd) in tgds.iter().enumerate() {
            let body_len = tgd.body().len();
            for j in 0..body_len {
                // Semi-naive ranges: body[j] in the delta, body[<j] strictly
                // older, body[>j] anywhere up to delta_end.
                let mut lo = vec![0u32; body_len];
                let mut hi = vec![delta_end; body_len];
                lo[j] = delta_start;
                for h in hi.iter_mut().take(j) {
                    *h = delta_start;
                }
                for_each_match_ranged(
                    tgd.body(),
                    &inst,
                    &lo,
                    &hi,
                    &Substitution::new(),
                    &mut |sub| {
                        let wit = witness(tgd, sub, policy);
                        if applied.insert((ti as u32, wit.clone().into_boxed_slice())) {
                            new_triggers.push((ti as u32, sub.clone(), wit));
                        }
                        true
                    },
                );
            }
        }
        // Phase 2: apply. The (semi-)oblivious variants realise the
        // parallel `chase_i` semantics (results are key-determined, so
        // application order is irrelevant); the restricted variant applies
        // sequentially, re-checking head satisfaction against the live
        // instance. Atoms inserted here sit beyond `delta_end` and feed the
        // next round's delta.
        for (ti, sub, wit) in new_triggers {
            let tgd = &tgds[ti as usize];
            if config.variant == ChaseVariant::Restricted {
                // Applicable iff no extension of h|fr maps the head into
                // the current instance.
                let mut fr_sub = Substitution::new();
                for &v in tgd.frontier() {
                    fr_sub.bind(v, sub.get(v).expect("frontier is bound"));
                }
                if exists_homomorphism(tgd.head(), &inst, &fr_sub) {
                    continue;
                }
            }
            triggers_applied += 1;
            for a in result_atoms(tgd, ti, &sub, &wit, &mut nulls, policy) {
                inst.insert(a);
            }
            if inst.len() > config.max_atoms {
                outcome = ChaseOutcome::AtomBudgetExceeded;
                break 'rounds;
            }
        }
        delta_start = delta_end;
    }

    ChaseResult {
        instance: inst,
        outcome,
        rounds,
        triggers_applied,
        nulls_created: nulls.count(),
    }
}

/// Backtracking matcher over atom-index ranges: body atom `i` may only match
/// instance atoms with index in `[lo[i], hi[i])`. The ranges implement the
/// semi-naive split; candidate lists come from the instance's position index
/// whenever some argument is already ground.
fn for_each_match_ranged<F>(
    body: &[Atom],
    inst: &Instance,
    lo: &[u32],
    hi: &[u32],
    sub: &Substitution,
    visit: &mut F,
) -> bool
where
    F: FnMut(&Substitution) -> bool,
{
    fn recurse<F>(
        body: &[Atom],
        depth: usize,
        inst: &Instance,
        lo: &[u32],
        hi: &[u32],
        sub: &Substitution,
        visit: &mut F,
    ) -> bool
    where
        F: FnMut(&Substitution) -> bool,
    {
        if depth == body.len() {
            return visit(sub);
        }
        if lo[depth] >= hi[depth] {
            return true; // empty range: no matches at this decomposition
        }
        let pattern = &body[depth];
        let mut bound_pos: Option<(usize, Term)> = None;
        for (i, t) in pattern.terms.iter().enumerate() {
            let img = sub.apply_term(*t);
            if img.is_ground() {
                bound_pos = Some((i, img));
                break;
            }
        }
        let candidates: Vec<u32> = match bound_pos {
            Some((i, t)) => inst.atoms_with(pattern.pred, i, t),
            None => inst.atoms_of(pattern.pred).to_vec(),
        };
        for idx in candidates {
            if idx < lo[depth] || idx >= hi[depth] {
                continue;
            }
            if let Some(ext) = match_atom(pattern, inst.atom(idx), sub) {
                if !recurse(body, depth + 1, inst, lo, hi, &ext, visit) {
                    return false;
                }
            }
        }
        true
    }
    recurse(body, 0, inst, lo, hi, sub, visit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::{satisfies_all, Atom, ConstId, Schema, VarId};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// Example 1.1: D = {R(a,a)}, σ: R(x,y) → ∃z R(z,x).
    fn example_1_1() -> (Schema, Instance, Vec<Tgd>) {
        let mut s = Schema::new();
        let r = s.add_predicate("R", 2).unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&s, r, vec![c(0), c(0)]).unwrap());
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, r, vec![v(2), v(0)]).unwrap()],
        )
        .unwrap();
        (s, db, vec![tgd])
    }

    #[test]
    fn example_1_1_restricted_terminates_immediately() {
        let (_s, db, tgds) = example_1_1();
        let res = run_chase(
            &db,
            &tgds,
            &ChaseConfig::unbounded(ChaseVariant::Restricted),
        );
        assert_eq!(res.outcome, ChaseOutcome::Terminated);
        assert_eq!(res.instance.len(), 1, "D already satisfies σ");
        assert_eq!(res.triggers_applied, 0);
    }

    #[test]
    fn example_1_1_semi_oblivious_diverges() {
        let (_s, db, tgds) = example_1_1();
        let res = run_chase(
            &db,
            &tgds,
            &ChaseConfig::with_max_atoms(ChaseVariant::SemiOblivious, 50),
        );
        assert_eq!(res.outcome, ChaseOutcome::AtomBudgetExceeded);
        assert!(res.instance.len() >= 50);
    }

    #[test]
    fn running_example_of_section_3_diverges() {
        // D = {R(a,b)}, σ: R(x,y) → ∃z R(y,z): infinite for every variant
        // except restricted... in fact restricted also diverges here.
        let mut s = Schema::new();
        let r = s.add_predicate("R", 2).unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&s, r, vec![c(0), c(1)]).unwrap());
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        for variant in [
            ChaseVariant::Oblivious,
            ChaseVariant::SemiOblivious,
            ChaseVariant::Restricted,
        ] {
            let res = run_chase(&db, &[tgd.clone()], &ChaseConfig::with_max_atoms(variant, 40));
            assert_eq!(res.outcome, ChaseOutcome::AtomBudgetExceeded, "{variant:?}");
        }
    }

    #[test]
    fn terminating_chase_satisfies_the_tgds() {
        // r(x,y) → ∃z p(x,z); p(x,y) → q(y).
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        let q = s.add_predicate("q", 1).unwrap();
        let tgds = vec![
            Tgd::new(
                vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&s, p, vec![v(0), v(2)]).unwrap()],
            )
            .unwrap(),
            Tgd::new(
                vec![Atom::new(&s, p, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&s, q, vec![v(1)]).unwrap()],
            )
            .unwrap(),
        ];
        let mut db = Instance::new();
        db.insert(Atom::new(&s, r, vec![c(0), c(1)]).unwrap());
        db.insert(Atom::new(&s, r, vec![c(1), c(1)]).unwrap());
        for variant in [
            ChaseVariant::Oblivious,
            ChaseVariant::SemiOblivious,
            ChaseVariant::Restricted,
        ] {
            let res = run_chase(&db, &tgds, &ChaseConfig::unbounded(variant));
            assert_eq!(res.outcome, ChaseOutcome::Terminated, "{variant:?}");
            assert!(satisfies_all(&res.instance, &tgds), "{variant:?}");
        }
    }

    #[test]
    fn semi_oblivious_merges_triggers_with_equal_frontier() {
        // r(x,y) → ∃z p(x,z) on D = {r(a,b), r(a,c)}:
        // oblivious fires twice (two homomorphisms), semi-oblivious once
        // (same frontier witness x=a).
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&s, r, vec![c(0), c(1)]).unwrap());
        db.insert(Atom::new(&s, r, vec![c(0), c(2)]).unwrap());
        let so = run_chase(
            &db,
            std::slice::from_ref(&tgd),
            &ChaseConfig::unbounded(ChaseVariant::SemiOblivious),
        );
        let ob = run_chase(
            &db,
            std::slice::from_ref(&tgd),
            &ChaseConfig::unbounded(ChaseVariant::Oblivious),
        );
        assert_eq!(so.instance.len(), 3); // one p-atom
        assert_eq!(ob.instance.len(), 4); // two p-atoms
        assert!(so.instance.len() <= ob.instance.len());
    }

    #[test]
    fn restricted_is_never_larger_than_semi_oblivious() {
        let (_s, db, tgds) = example_1_1();
        let restricted = run_chase(
            &db,
            &tgds,
            &ChaseConfig::unbounded(ChaseVariant::Restricted),
        );
        let so = run_chase(
            &db,
            &tgds,
            &ChaseConfig::with_max_atoms(ChaseVariant::SemiOblivious, 30),
        );
        assert!(restricted.instance.len() <= so.instance.len());
    }

    #[test]
    fn multi_atom_bodies_join_correctly() {
        // e(x,y), e(y,z) → e(x,z): transitive closure (no existentials).
        let mut s = Schema::new();
        let e = s.add_predicate("e", 2).unwrap();
        let tgd = Tgd::new(
            vec![
                Atom::new(&s, e, vec![v(0), v(1)]).unwrap(),
                Atom::new(&s, e, vec![v(1), v(2)]).unwrap(),
            ],
            vec![Atom::new(&s, e, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        for i in 0..4 {
            db.insert(Atom::new(&s, e, vec![c(i), c(i + 1)]).unwrap());
        }
        let res = run_chase(
            &db,
            &[tgd],
            &ChaseConfig::unbounded(ChaseVariant::SemiOblivious),
        );
        assert_eq!(res.outcome, ChaseOutcome::Terminated);
        // Closure of the path 0→1→2→3→4: 4+3+2+1 = 10 edges.
        assert_eq!(res.instance.len(), 10);
    }

    #[test]
    fn empty_frontier_tgd_fires_exactly_once_semi_obliviously() {
        // r(x) → ∃z p(z): fr = ∅, so one application total.
        let mut s = Schema::new();
        let r = s.add_predicate("r", 1).unwrap();
        let p = s.add_predicate("p", 1).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(1)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&s, r, vec![c(0)]).unwrap());
        db.insert(Atom::new(&s, r, vec![c(1)]).unwrap());
        db.insert(Atom::new(&s, r, vec![c(2)]).unwrap());
        let so = run_chase(
            &db,
            std::slice::from_ref(&tgd),
            &ChaseConfig::unbounded(ChaseVariant::SemiOblivious),
        );
        assert_eq!(so.outcome, ChaseOutcome::Terminated);
        assert_eq!(so.instance.len(), 4, "single p-atom despite 3 triggers");
        assert_eq!(so.triggers_applied, 1);
        // The oblivious chase fires once per r-atom.
        let ob = run_chase(
            &db,
            std::slice::from_ref(&tgd),
            &ChaseConfig::unbounded(ChaseVariant::Oblivious),
        );
        assert_eq!(ob.instance.len(), 6);
    }

    #[test]
    fn round_budget_is_respected() {
        let (_s, db, _) = example_1_1();
        let mut s = Schema::new();
        let r = s.add_predicate("R", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let res = run_chase(
            &db,
            &[tgd],
            &ChaseConfig {
                variant: ChaseVariant::SemiOblivious,
                max_atoms: usize::MAX,
                max_rounds: 3,
            },
        );
        assert_eq!(res.outcome, ChaseOutcome::RoundBudgetExceeded);
        assert_eq!(res.rounds, 3);
        assert_eq!(res.instance.len(), 4, "one new atom per round");
    }
}
