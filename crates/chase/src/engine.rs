//! The chase engines: oblivious, semi-oblivious, and restricted (§1.1, §3).
//!
//! All three run round-based, mirroring the `chase_i` fixpoint of §3:
//! round i enumerates the triggers on `chase_{i-1}` and applies the new
//! ones. Trigger enumeration is *semi-naive*: a homomorphism is considered
//! in the first round where it can use an atom produced in the previous
//! round, so every trigger is enumerated exactly once over the whole run.
//!
//! Variant differences (Definition 3.1 and §1.1):
//! - **Oblivious**: apply once per `(σ, h)` (full body witness); nulls named
//!   by the full witness.
//! - **Semi-oblivious**: apply once per `(σ, h|fr(σ))`; nulls named by the
//!   frontier witness (`⊥^x_{σ, h|fr(σ)}`), which makes results
//!   set-deterministic.
//! - **Restricted**: apply only if the head is not already satisfiable via
//!   an extension of `h|fr(σ)`; fresh nulls. Triggers are applied in a
//!   deterministic order within a round (the classic sequential policy);
//!   satisfaction is monotone, so each trigger needs checking only once.
//!
//! The engine runs on a [`ChaseStore`] of packed-`u64` tuples: TGDs are
//! compiled to slot form once, substitutions are flat binding arrays,
//! trigger dedup and null naming go through an interned witness arena —
//! the hot enumeration path allocates no `Atom`, no `Box<[Term]>`, and
//! clones no index posting list. [`run_chase`] is a thin compatibility
//! wrapper over the in-memory backend; [`run_chase_on_engine`] chases a
//! database resident in the storage layer directly, mirroring the paper's
//! PostgreSQL setup (§5.3/§5.4).

use crate::null_gen::PackedNullFactory;
use crate::parallel::{build_tasks, resolve_threads, SharedState, WorkerPool, PAR_MIN_ROUND_WORK};
use crate::store::{ChaseStore, ColumnarStore, EngineBackedStore, RowId, UNBOUND};
use crate::trigger::{CompiledAtom, CompiledTgd, NullPolicy, WitnessTable};
use soct_model::{Instance, Schema, Term, Tgd, MAX_ARITY};
use soct_storage::StorageEngine;
use std::sync::RwLock;

/// Which chase to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseVariant {
    /// Apply once per full body homomorphism (§1.1).
    Oblivious,
    /// Apply once per frontier restriction — the paper's main object.
    SemiOblivious,
    /// Apply only when the head is not already satisfied (fresh nulls).
    Restricted,
}

impl std::str::FromStr for ChaseVariant {
    type Err = String;

    /// Parses the CLI/wire spellings — `so`/`semi-oblivious`,
    /// `oblivious`, `restricted`/`standard` — the one alias table shared
    /// by `soct chase`, `soct client chase`, and `POST /chase`.
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "so" | "semi-oblivious" => Ok(ChaseVariant::SemiOblivious),
            "oblivious" => Ok(ChaseVariant::Oblivious),
            "restricted" | "standard" => Ok(ChaseVariant::Restricted),
            other => Err(format!(
                "variant must be so|oblivious|restricted, got `{other}`"
            )),
        }
    }
}

impl ChaseVariant {
    fn null_policy(self) -> NullPolicy {
        match self {
            ChaseVariant::Oblivious => NullPolicy::ByFullBody,
            ChaseVariant::SemiOblivious => NullPolicy::ByFrontier,
            ChaseVariant::Restricted => NullPolicy::Fresh,
        }
    }
}

/// Budgets for a chase run. The chase may be infinite; budgets make every
/// run terminate with an honest outcome.
#[derive(Clone, Copy, Debug)]
pub struct ChaseConfig {
    /// Which chase variant to run.
    pub variant: ChaseVariant,
    /// Stop once the instance holds this many atoms.
    pub max_atoms: usize,
    /// Stop after this many rounds (`chase_i` levels).
    pub max_rounds: usize,
    /// Worker threads for trigger enumeration. `0` means *auto* (the
    /// `SOCT_THREADS` environment variable, else the machine's available
    /// parallelism — see [`crate::resolve_threads`]); `1` forces the
    /// sequential engine. Any setting yields bit-identical results: rounds
    /// are sharded against a read-only snapshot and merged by a
    /// deterministic single writer (see `crate::parallel`).
    pub threads: usize,
}

impl ChaseConfig {
    /// A configuration with effectively unlimited budgets — use only when
    /// termination is already known.
    pub fn unbounded(variant: ChaseVariant) -> Self {
        ChaseConfig {
            variant,
            max_atoms: usize::MAX,
            max_rounds: usize::MAX,
            threads: 0,
        }
    }

    /// A configuration with an atom budget.
    pub fn with_max_atoms(variant: ChaseVariant, max_atoms: usize) -> Self {
        ChaseConfig {
            variant,
            max_atoms,
            max_rounds: usize::MAX,
            threads: 0,
        }
    }

    /// Sets the worker-thread count (builder style).
    ///
    /// ```
    /// use soct_chase::{ChaseConfig, ChaseVariant};
    /// let cfg = ChaseConfig::unbounded(ChaseVariant::SemiOblivious).with_threads(4);
    /// assert_eq!(cfg.threads, 4);
    /// ```
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// How a chase run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseOutcome {
    /// Fixpoint reached: the returned instance is `chase(D, Σ)`.
    Terminated,
    /// The atom budget was hit; the instance is a prefix of the chase.
    AtomBudgetExceeded,
    /// The round budget was hit.
    RoundBudgetExceeded,
}

/// Counters of a chase run, independent of where the tuples live.
#[derive(Clone, Copy, Debug)]
pub struct ChaseStats {
    /// How the run ended.
    pub outcome: ChaseOutcome,
    /// Number of completed rounds (`i` such that the result is `chase_i`).
    pub rounds: usize,
    /// Triggers applied (atoms may be fewer: set semantics).
    pub triggers_applied: usize,
    /// Nulls minted.
    pub nulls_created: usize,
    /// Rounds whose trigger enumeration ran on the parallel worker pool
    /// (small rounds run inline regardless of the thread setting).
    pub parallel_rounds: usize,
}

/// The output of a chase run over the packed columnar backend: the chased
/// instance stays in packed form ([`ColumnarStore`] implements
/// `soct_storage::TupleSource`, so the result feeds `FindShapes` and the
/// checkers without a copy-out conversion).
#[derive(Debug)]
pub struct StoreChaseResult {
    /// The chased instance, still packed.
    pub store: ColumnarStore,
    /// How the run ended.
    pub outcome: ChaseOutcome,
    /// Number of completed rounds.
    pub rounds: usize,
    /// Triggers applied (atoms may be fewer: set semantics).
    pub triggers_applied: usize,
    /// Nulls minted.
    pub nulls_created: usize,
    /// Rounds enumerated on the parallel worker pool.
    pub parallel_rounds: usize,
}

impl StoreChaseResult {
    fn new(store: ColumnarStore, stats: ChaseStats) -> Self {
        StoreChaseResult {
            store,
            outcome: stats.outcome,
            rounds: stats.rounds,
            triggers_applied: stats.triggers_applied,
            nulls_created: stats.nulls_created,
            parallel_rounds: stats.parallel_rounds,
        }
    }

    /// Atoms beyond the input database.
    pub fn derived_atoms(&self, db_len: usize) -> usize {
        self.store.len().saturating_sub(db_len)
    }
}

/// The output of a chase run, decoded to a boxed-atom [`Instance`]
/// (compatibility shape; see [`StoreChaseResult`] for the packed one).
#[derive(Debug)]
pub struct ChaseResult {
    /// The chased instance, decoded to boxed atoms.
    pub instance: Instance,
    /// How the run ended.
    pub outcome: ChaseOutcome,
    /// Number of completed rounds (`i` such that the result is `chase_i`).
    pub rounds: usize,
    /// Triggers applied (atoms may be fewer: set semantics).
    pub triggers_applied: usize,
    /// Nulls minted.
    pub nulls_created: usize,
    /// Rounds enumerated on the parallel worker pool.
    pub parallel_rounds: usize,
}

impl ChaseResult {
    /// Atoms beyond the input database.
    pub fn derived_atoms(&self, db_len: usize) -> usize {
        self.instance.len().saturating_sub(db_len)
    }
}

/// Runs the chase of `db` with `tgds` under `config`.
///
/// Compatibility wrapper: chases over the in-memory columnar backend, then
/// decodes the result into an [`Instance`]. Callers that can consume
/// packed tuples should use [`run_chase_columnar`] and skip the decode.
pub fn run_chase(db: &Instance, tgds: &[Tgd], config: &ChaseConfig) -> ChaseResult {
    let res = run_chase_columnar(db, tgds, config);
    ChaseResult {
        instance: res.store.to_instance(),
        outcome: res.outcome,
        rounds: res.rounds,
        triggers_applied: res.triggers_applied,
        nulls_created: res.nulls_created,
        parallel_rounds: res.parallel_rounds,
    }
}

/// Runs the chase of `db` over the in-memory columnar backend, returning
/// the result in packed form.
pub fn run_chase_columnar(db: &Instance, tgds: &[Tgd], config: &ChaseConfig) -> StoreChaseResult {
    let mut store = ColumnarStore::from_instance(db);
    let stats = run_chase_on_store(&mut store, tgds, config);
    StoreChaseResult::new(store, stats)
}

/// Chases the database resident in `engine` — the paper's in-database mode.
///
/// The engine's tables are scanned once to open the store, every derived
/// tuple is written back through to the engine (tables for freshly
/// materialised predicates are created on the fly, named after `schema`),
/// and the packed working set is returned alongside the run counters. After
/// the call, `engine` holds the chased instance.
pub fn run_chase_on_engine(
    schema: &Schema,
    engine: &mut StorageEngine,
    tgds: &[Tgd],
    config: &ChaseConfig,
) -> StoreChaseResult {
    let mut store = EngineBackedStore::open(schema, engine);
    let stats = run_chase_on_store(&mut store, tgds, config);
    StoreChaseResult::new(store.into_store(), stats)
}

/// Runs the chase in place on any [`ChaseStore`] already holding the
/// database. The generic core of every entry point above.
pub fn run_chase_on_store<S: ChaseStore>(
    store: &mut S,
    tgds: &[Tgd],
    config: &ChaseConfig,
) -> ChaseStats {
    let policy = config.variant.null_policy();
    let threads = resolve_threads(config.threads);
    let compiled: Vec<CompiledTgd> = tgds.iter().map(CompiledTgd::compile).collect();
    let max_slots = compiled.iter().map(|c| c.n_slots).max().unwrap_or(0);
    let max_body = compiled
        .iter()
        .map(|c| c.body.len().max(c.head.len()))
        .max()
        .unwrap_or(0);
    // Reusable scratch: one binding array, range vectors, witness and row
    // buffers. Nothing below allocates per enumerated match.
    let mut binding = vec![UNBOUND; max_slots];
    let mut lo: Vec<RowId> = Vec::with_capacity(max_body);
    let mut hi: Vec<RowId> = Vec::with_capacity(max_body);
    let mut wit_scratch: Vec<u64> = Vec::with_capacity(max_slots);
    let mut row_scratch = [0u64; MAX_ARITY];
    let mut nulls = PackedNullFactory::default();
    let mut new_triggers: Vec<(u32, u32)> = Vec::new();
    let mut triggers_applied = 0usize;
    let mut rounds = 0usize;
    let mut parallel_rounds = 0usize;
    let mut delta_start: RowId = 0;
    let mut outcome = ChaseOutcome::Terminated;
    // Run-level observability tallies, folded into the process-global
    // counters once at the end: the hot loop pays plain integer adds, not
    // atomics.
    let run_span = soct_obs::span("chase");
    let mut obs_enumerated = 0u64;
    let mut obs_new = 0u64;
    let mut obs_tuples = 0u64;
    let mut obs_tasks = 0u64;

    // The store and the global witness table sit behind one RwLock so the
    // worker pool can read the round snapshot (and pre-filter against the
    // frozen witness table) while the engine thread keeps exclusive access
    // for the merge/apply phase. Witness interning doubles as the
    // applied-trigger dedup set; for the restricted chase the key is the
    // full body witness — each homomorphism is *checked* once
    // (satisfaction is monotone, so a skipped trigger stays inapplicable).
    // Every lock below is uncontended by construction (workers only hold
    // read locks while a round signal is in flight), so the sequential
    // path pays only an atomic per round.
    let shared = RwLock::new(SharedState {
        store,
        witnesses: WitnessTable::default(),
    });
    std::thread::scope(|scope| {
        // Spawned lazily at the first round worth sharding, then parked on
        // its channel between rounds; dropping it at the end of the scope
        // closure closes the channels and lets the scope join the workers.
        let mut pool: Option<WorkerPool> = None;
        'rounds: loop {
            let mut guard = shared.write().unwrap();
            let delta_end = guard.store.len() as RowId;
            if delta_start == delta_end {
                break; // fixpoint
            }
            if rounds >= config.max_rounds {
                outcome = ChaseOutcome::RoundBudgetExceeded;
                break;
            }
            rounds += 1;
            let _round_span = soct_obs::span("chase_round");
            // Phase 1: enumerate the round's new triggers. The matcher
            // borrows the store immutably, so application is deferred to
            // phase 2 — which is also what makes the round shardable:
            // workers enumerate against the same read-only snapshot, and
            // the merge below interns their candidates in task order,
            // reproducing the sequential new-trigger sequence exactly (see
            // `crate::parallel`).
            new_triggers.clear();
            let mut fanned = None;
            if threads > 1 {
                let (tasks, est_work) =
                    build_tasks(&compiled, &*guard.store, delta_start, delta_end, threads);
                if est_work >= PAR_MIN_ROUND_WORK && tasks.len() > 1 {
                    obs_tasks += tasks.len() as u64;
                    drop(guard); // workers take read locks for the round
                    let pool = pool.get_or_insert_with(|| {
                        WorkerPool::spawn(scope, &shared, &compiled, policy, threads)
                    });
                    fanned = Some(pool.run_round(tasks, delta_start, delta_end));
                    guard = shared.write().unwrap();
                }
            }
            let SharedState { store, witnesses } = &mut *guard;
            let live: &mut S = store;
            match fanned {
                Some(outs) => {
                    // Merge phase: fold the per-task candidate lists into
                    // the global witness table in task order. Workers
                    // already dropped earlier rounds' witnesses and hashed
                    // the survivors, so this loop touches each genuinely
                    // new candidate once.
                    parallel_rounds += 1;
                    for out in &outs {
                        obs_enumerated += out.table.len() as u64;
                        for k in 0..out.table.len() as u32 {
                            let (wit, is_new) = witnesses.intern_prehashed(
                                out.tgd,
                                out.table.tuple(k),
                                out.table.entry_hash(k),
                            );
                            if is_new {
                                new_triggers.push((out.tgd, wit));
                            }
                        }
                    }
                }
                None => {
                    for (ti, ctgd) in compiled.iter().enumerate() {
                        let body_len = ctgd.body.len();
                        let wit_slots = ctgd.witness_slots(policy);
                        for j in 0..body_len {
                            // Semi-naive ranges: body[j] in the delta,
                            // body[<j] strictly older, body[>j] anywhere up
                            // to delta_end.
                            lo.clear();
                            lo.resize(body_len, 0);
                            hi.clear();
                            hi.resize(body_len, delta_end);
                            lo[j] = delta_start;
                            for h in hi.iter_mut().take(j) {
                                *h = delta_start;
                            }
                            for s in binding.iter_mut().take(ctgd.n_slots) {
                                *s = UNBOUND;
                            }
                            match_ranged(&ctgd.body, &*live, &lo, &hi, &mut binding, &mut |b| {
                                obs_enumerated += 1;
                                wit_scratch.clear();
                                wit_scratch.extend(wit_slots.iter().map(|&s| b[s as usize]));
                                let (wit, is_new) = witnesses.intern(ti as u32, &wit_scratch);
                                if is_new {
                                    new_triggers.push((ti as u32, wit));
                                }
                                true
                            });
                        }
                    }
                }
            }
            obs_new += new_triggers.len() as u64;
            // Phase 2: apply. The (semi-)oblivious variants realise the
            // parallel `chase_i` semantics (results are key-determined, so
            // application order is irrelevant); the restricted variant
            // applies sequentially, re-checking head satisfaction against
            // the live store. Rows inserted here sit beyond `delta_end`
            // and feed the next round's delta. The engine thread still
            // holds the write lock; the pool is parked.
            for &(ti, wit) in &new_triggers {
                let ctgd = &compiled[ti as usize];
                for s in binding.iter_mut().take(ctgd.n_slots) {
                    *s = UNBOUND;
                }
                {
                    let wtuple = witnesses.tuple(wit);
                    let fpos = ctgd.frontier_positions(policy);
                    for (fi, &s) in ctgd.frontier.iter().enumerate() {
                        binding[s as usize] = wtuple[fpos[fi] as usize];
                    }
                }
                if config.variant == ChaseVariant::Restricted {
                    // Applicable iff no extension of h|fr maps the head
                    // into the current store.
                    let head_len = ctgd.head.len();
                    lo.clear();
                    lo.resize(head_len, 0);
                    hi.clear();
                    hi.resize(head_len, live.len() as RowId);
                    let satisfied =
                        !match_ranged(&ctgd.head, &*live, &lo, &hi, &mut binding, &mut |_| false);
                    if satisfied {
                        continue;
                    }
                }
                triggers_applied += 1;
                for &es in ctgd.existential.iter() {
                    let null = match policy {
                        NullPolicy::Fresh => nulls.fresh(),
                        NullPolicy::ByFrontier | NullPolicy::ByFullBody => nulls.canonical(wit, es),
                    };
                    binding[es as usize] = Term::Null(null).pack();
                }
                for ha in &ctgd.head {
                    for (i, &s) in ha.slots.iter().enumerate() {
                        debug_assert_ne!(binding[s as usize], UNBOUND, "head var outside fr ∪ ∃");
                        row_scratch[i] = binding[s as usize];
                    }
                    live.insert(ha.pred, &row_scratch[..ha.slots.len()]);
                    obs_tuples += 1;
                }
                if live.len() > config.max_atoms {
                    outcome = ChaseOutcome::AtomBudgetExceeded;
                    break 'rounds;
                }
            }
            delta_start = delta_end;
        }
    });
    let g = soct_obs::global();
    g.chase_rounds.add(rounds as u64);
    g.chase_triggers.add(obs_enumerated);
    g.chase_dedup_hits
        .add(obs_enumerated.saturating_sub(obs_new));
    g.chase_tuples.add(obs_tuples);
    g.chase_parallel_tasks.add(obs_tasks);
    drop(run_span);

    ChaseStats {
        outcome,
        rounds,
        triggers_applied,
        nulls_created: nulls.count(),
        parallel_rounds,
    }
}

/// Backtracking matcher over row-id ranges: body atom `i` may only match
/// store rows with id in `[lo[i], hi[i])`. The ranges implement the
/// semi-naive split; candidate lists are borrowed posting slices from the
/// store's position index whenever some argument is already bound.
/// `binding` maps variable slots to packed values ([`UNBOUND`] = free);
/// bindings made while descending are unwound on backtrack, so the array
/// returns to its entry state. Returns `false` iff `visit` stopped the
/// enumeration.
pub(crate) fn match_ranged<S, F>(
    body: &[CompiledAtom],
    store: &S,
    lo: &[RowId],
    hi: &[RowId],
    binding: &mut [u64],
    visit: &mut F,
) -> bool
where
    S: ChaseStore + ?Sized,
    F: FnMut(&[u64]) -> bool,
{
    fn recurse<S, F>(
        body: &[CompiledAtom],
        depth: usize,
        store: &S,
        lo: &[RowId],
        hi: &[RowId],
        binding: &mut [u64],
        visit: &mut F,
    ) -> bool
    where
        S: ChaseStore + ?Sized,
        F: FnMut(&[u64]) -> bool,
    {
        if depth == body.len() {
            return visit(binding);
        }
        if lo[depth] >= hi[depth] {
            return true; // empty range: no matches at this decomposition
        }
        let pattern = &body[depth];
        let mut pivot: Option<(usize, u64)> = None;
        for (i, &s) in pattern.slots.iter().enumerate() {
            let v = binding[s as usize];
            if v != UNBOUND {
                pivot = Some((i, v));
                break;
            }
        }
        let candidates: &[RowId] = match pivot {
            Some((i, v)) => store.rows_with(pattern.pred, i, v),
            None => store.rows_of(pattern.pred),
        };
        for &idx in candidates {
            if idx < lo[depth] || idx >= hi[depth] {
                continue;
            }
            let row = store.row(idx);
            debug_assert_eq!(row.len(), pattern.slots.len());
            // Bind this atom's slots against the row, trailing fresh binds
            // so they unwind whether the row matches or not.
            let mut trail = [0u16; MAX_ARITY];
            let mut trailed = 0usize;
            let mut ok = true;
            for (&s, &v) in pattern.slots.iter().zip(row.iter()) {
                let cur = binding[s as usize];
                if cur == UNBOUND {
                    binding[s as usize] = v;
                    trail[trailed] = s;
                    trailed += 1;
                } else if cur != v {
                    ok = false;
                    break;
                }
            }
            let keep_going = if ok {
                recurse(body, depth + 1, store, lo, hi, binding, visit)
            } else {
                true
            };
            for &s in &trail[..trailed] {
                binding[s as usize] = UNBOUND;
            }
            if !keep_going {
                return false;
            }
        }
        true
    }
    recurse(body, 0, store, lo, hi, binding, visit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::{satisfies_all, Atom, ConstId, Schema, VarId};
    use soct_storage::TupleSource;

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// Example 1.1: D = {R(a,a)}, σ: R(x,y) → ∃z R(z,x).
    fn example_1_1() -> (Schema, Instance, Vec<Tgd>) {
        let mut s = Schema::new();
        let r = s.add_predicate("R", 2).unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&s, r, vec![c(0), c(0)]).unwrap());
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, r, vec![v(2), v(0)]).unwrap()],
        )
        .unwrap();
        (s, db, vec![tgd])
    }

    #[test]
    fn example_1_1_restricted_terminates_immediately() {
        let (_s, db, tgds) = example_1_1();
        let res = run_chase(
            &db,
            &tgds,
            &ChaseConfig::unbounded(ChaseVariant::Restricted),
        );
        assert_eq!(res.outcome, ChaseOutcome::Terminated);
        assert_eq!(res.instance.len(), 1, "D already satisfies σ");
        assert_eq!(res.triggers_applied, 0);
    }

    #[test]
    fn example_1_1_semi_oblivious_diverges() {
        let (_s, db, tgds) = example_1_1();
        let res = run_chase(
            &db,
            &tgds,
            &ChaseConfig::with_max_atoms(ChaseVariant::SemiOblivious, 50),
        );
        assert_eq!(res.outcome, ChaseOutcome::AtomBudgetExceeded);
        assert!(res.instance.len() >= 50);
    }

    #[test]
    fn running_example_of_section_3_diverges() {
        // D = {R(a,b)}, σ: R(x,y) → ∃z R(y,z): infinite for every variant
        // except restricted... in fact restricted also diverges here.
        let mut s = Schema::new();
        let r = s.add_predicate("R", 2).unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&s, r, vec![c(0), c(1)]).unwrap());
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        for variant in [
            ChaseVariant::Oblivious,
            ChaseVariant::SemiOblivious,
            ChaseVariant::Restricted,
        ] {
            let res = run_chase(
                &db,
                std::slice::from_ref(&tgd),
                &ChaseConfig::with_max_atoms(variant, 40),
            );
            assert_eq!(res.outcome, ChaseOutcome::AtomBudgetExceeded, "{variant:?}");
        }
    }

    #[test]
    fn terminating_chase_satisfies_the_tgds() {
        // r(x,y) → ∃z p(x,z); p(x,y) → q(y).
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        let q = s.add_predicate("q", 1).unwrap();
        let tgds = vec![
            Tgd::new(
                vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&s, p, vec![v(0), v(2)]).unwrap()],
            )
            .unwrap(),
            Tgd::new(
                vec![Atom::new(&s, p, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&s, q, vec![v(1)]).unwrap()],
            )
            .unwrap(),
        ];
        let mut db = Instance::new();
        db.insert(Atom::new(&s, r, vec![c(0), c(1)]).unwrap());
        db.insert(Atom::new(&s, r, vec![c(1), c(1)]).unwrap());
        for variant in [
            ChaseVariant::Oblivious,
            ChaseVariant::SemiOblivious,
            ChaseVariant::Restricted,
        ] {
            let res = run_chase(&db, &tgds, &ChaseConfig::unbounded(variant));
            assert_eq!(res.outcome, ChaseOutcome::Terminated, "{variant:?}");
            assert!(satisfies_all(&res.instance, &tgds), "{variant:?}");
        }
    }

    #[test]
    fn semi_oblivious_merges_triggers_with_equal_frontier() {
        // r(x,y) → ∃z p(x,z) on D = {r(a,b), r(a,c)}:
        // oblivious fires twice (two homomorphisms), semi-oblivious once
        // (same frontier witness x=a).
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&s, r, vec![c(0), c(1)]).unwrap());
        db.insert(Atom::new(&s, r, vec![c(0), c(2)]).unwrap());
        let so = run_chase(
            &db,
            std::slice::from_ref(&tgd),
            &ChaseConfig::unbounded(ChaseVariant::SemiOblivious),
        );
        let ob = run_chase(
            &db,
            std::slice::from_ref(&tgd),
            &ChaseConfig::unbounded(ChaseVariant::Oblivious),
        );
        assert_eq!(so.instance.len(), 3); // one p-atom
        assert_eq!(ob.instance.len(), 4); // two p-atoms
        assert!(so.instance.len() <= ob.instance.len());
    }

    #[test]
    fn restricted_is_never_larger_than_semi_oblivious() {
        let (_s, db, tgds) = example_1_1();
        let restricted = run_chase(
            &db,
            &tgds,
            &ChaseConfig::unbounded(ChaseVariant::Restricted),
        );
        let so = run_chase(
            &db,
            &tgds,
            &ChaseConfig::with_max_atoms(ChaseVariant::SemiOblivious, 30),
        );
        assert!(restricted.instance.len() <= so.instance.len());
    }

    #[test]
    fn multi_atom_bodies_join_correctly() {
        // e(x,y), e(y,z) → e(x,z): transitive closure (no existentials).
        let mut s = Schema::new();
        let e = s.add_predicate("e", 2).unwrap();
        let tgd = Tgd::new(
            vec![
                Atom::new(&s, e, vec![v(0), v(1)]).unwrap(),
                Atom::new(&s, e, vec![v(1), v(2)]).unwrap(),
            ],
            vec![Atom::new(&s, e, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        for i in 0..4 {
            db.insert(Atom::new(&s, e, vec![c(i), c(i + 1)]).unwrap());
        }
        let res = run_chase(
            &db,
            &[tgd],
            &ChaseConfig::unbounded(ChaseVariant::SemiOblivious),
        );
        assert_eq!(res.outcome, ChaseOutcome::Terminated);
        // Closure of the path 0→1→2→3→4: 4+3+2+1 = 10 edges.
        assert_eq!(res.instance.len(), 10);
    }

    #[test]
    fn empty_frontier_tgd_fires_exactly_once_semi_obliviously() {
        // r(x) → ∃z p(z): fr = ∅, so one application total.
        let mut s = Schema::new();
        let r = s.add_predicate("r", 1).unwrap();
        let p = s.add_predicate("p", 1).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(1)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&s, r, vec![c(0)]).unwrap());
        db.insert(Atom::new(&s, r, vec![c(1)]).unwrap());
        db.insert(Atom::new(&s, r, vec![c(2)]).unwrap());
        let so = run_chase(
            &db,
            std::slice::from_ref(&tgd),
            &ChaseConfig::unbounded(ChaseVariant::SemiOblivious),
        );
        assert_eq!(so.outcome, ChaseOutcome::Terminated);
        assert_eq!(so.instance.len(), 4, "single p-atom despite 3 triggers");
        assert_eq!(so.triggers_applied, 1);
        // The oblivious chase fires once per r-atom.
        let ob = run_chase(
            &db,
            std::slice::from_ref(&tgd),
            &ChaseConfig::unbounded(ChaseVariant::Oblivious),
        );
        assert_eq!(ob.instance.len(), 6);
    }

    #[test]
    fn round_budget_is_respected() {
        let (_s, db, _) = example_1_1();
        let mut s = Schema::new();
        let r = s.add_predicate("R", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let res = run_chase(
            &db,
            &[tgd],
            &ChaseConfig {
                variant: ChaseVariant::SemiOblivious,
                max_atoms: usize::MAX,
                max_rounds: 3,
                threads: 0,
            },
        );
        assert_eq!(res.outcome, ChaseOutcome::RoundBudgetExceeded);
        assert_eq!(res.rounds, 3);
        assert_eq!(res.instance.len(), 4, "one new atom per round");
    }

    #[test]
    fn columnar_and_instance_paths_agree() {
        let (_s, db, tgds) = example_1_1();
        let packed = run_chase_columnar(
            &db,
            &tgds,
            &ChaseConfig::with_max_atoms(ChaseVariant::SemiOblivious, 30),
        );
        let boxed = run_chase(
            &db,
            &tgds,
            &ChaseConfig::with_max_atoms(ChaseVariant::SemiOblivious, 30),
        );
        assert_eq!(packed.store.len(), boxed.instance.len());
        assert_eq!(packed.rounds, boxed.rounds);
        assert_eq!(packed.triggers_applied, boxed.triggers_applied);
        assert_eq!(packed.nulls_created, boxed.nulls_created);
        assert_eq!(
            packed.derived_atoms(db.len()),
            boxed.derived_atoms(db.len())
        );
        let decoded = packed.store.to_instance();
        for a in decoded.atoms() {
            assert!(boxed.instance.contains(a));
        }
    }

    #[test]
    fn engine_backed_chase_persists_derived_atoms() {
        // r(x,y) → ∃z p(x,z); p(x,y) → q(y), database resident in storage.
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        let q = s.add_predicate("q", 1).unwrap();
        let tgds = vec![
            Tgd::new(
                vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&s, p, vec![v(0), v(2)]).unwrap()],
            )
            .unwrap(),
            Tgd::new(
                vec![Atom::new(&s, p, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&s, q, vec![v(1)]).unwrap()],
            )
            .unwrap(),
        ];
        let mut engine = StorageEngine::new();
        engine.create_table(r, "r", 2);
        engine.insert(r, &[c(0), c(1)]);
        engine.insert(r, &[c(1), c(1)]);
        let res = run_chase_on_engine(
            &s,
            &mut engine,
            &tgds,
            &ChaseConfig::unbounded(ChaseVariant::SemiOblivious),
        );
        assert_eq!(res.outcome, ChaseOutcome::Terminated);
        // Two p-atoms (one per frontier value) and the two q-atoms they feed.
        assert_eq!(res.store.len(), 2 + 2 + 2);
        assert_eq!(engine.row_count(p), 2, "derived p-atoms reached storage");
        assert_eq!(engine.row_count(q), 2, "derived q-atoms reached storage");
        assert_eq!(engine.table(q).unwrap().name(), "q");
        // The packed result and the storage contents agree.
        assert_eq!(res.store.non_empty_predicates(), vec![r, p, q]);
        assert!(satisfies_all(&res.store.to_instance(), &tgds));
    }
}
