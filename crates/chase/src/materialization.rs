//! The materialization-based termination checker (§1.4).
//!
//! "Simply run the semi-oblivious chase of D with Σ and keep a counter for
//! the number of generated atoms, and if the count exceeds `k_{D,Σ}`, then
//! conclude that the chase does not terminate; otherwise, it does."
//!
//! The paper's exploratory analysis found this approach "simply too
//! expensive" because the worst-case bounds are astronomically large; we
//! reproduce it (a) as the `abl-mat` ablation baseline and (b) as the
//! ground-truth oracle in the property-test suite, where a caller-supplied
//! budget keeps runs small.
//!
//! For non-simple linear TGDs the sound bound must be computed on the
//! simplified system (see `crate::bounds`); `soct-core` provides a wrapper
//! that simplifies first. Calling this directly is sound and complete for
//! simple-linear TGDs and for any set whose bound the caller trusts.

use crate::bounds::chase_size_bound;
use crate::engine::{run_chase_on_store, ChaseConfig, ChaseOutcome, ChaseVariant};
use crate::store::ColumnarStore;
use soct_model::{Instance, Schema, Tgd};

/// Verdict of the materialization-based checker.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MaterializationVerdict {
    /// The chase reached a fixpoint within the bound: finite.
    Finite,
    /// The atom count exceeded `k_{D,Σ}`: infinite.
    Infinite,
    /// The caller's budget ran out below the bound: undecided. This is the
    /// honest outcome the paper's analysis hit in practice.
    BudgetExhausted,
}

/// Statistics of a materialization-based run.
#[derive(Clone, Copy, Debug)]
pub struct MaterializationReport {
    /// The verdict reached.
    pub verdict: MaterializationVerdict,
    /// The worst-case bound `k_{D,Σ}` used (saturating).
    pub bound: u128,
    /// Atoms materialized before stopping.
    pub atoms_materialized: usize,
    /// Chase rounds executed.
    pub rounds: usize,
}

/// Runs the materialization-based check with an optional atom budget on top
/// of the worst-case bound.
pub fn is_chase_finite_materialization(
    schema: &Schema,
    db: &Instance,
    tgds: &[Tgd],
    budget: Option<usize>,
) -> MaterializationReport {
    let bound = chase_size_bound(schema, tgds, db);
    // Stop one atom past the bound: exceeding it proves divergence.
    let bound_cutoff = if bound >= usize::MAX as u128 {
        usize::MAX
    } else {
        bound as usize + 1
    };
    let cutoff = budget.map_or(bound_cutoff, |b| b.min(bound_cutoff));
    // Only the atom count matters here, so the chase runs directly on the
    // packed columnar store — no boxed-atom instance is ever materialized.
    let mut store = ColumnarStore::from_instance(db);
    let stats = run_chase_on_store(
        &mut store,
        tgds,
        &ChaseConfig::with_max_atoms(ChaseVariant::SemiOblivious, cutoff),
    );
    let verdict = match stats.outcome {
        ChaseOutcome::Terminated => MaterializationVerdict::Finite,
        _ if store.len() as u128 > bound => MaterializationVerdict::Infinite,
        _ => MaterializationVerdict::BudgetExhausted,
    };
    MaterializationReport {
        verdict,
        bound,
        atoms_materialized: store.len(),
        rounds: stats.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::{Atom, ConstId, Term, VarId};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    #[test]
    fn finite_case_is_detected() {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&s, r, vec![c(0), c(1)]).unwrap());
        let rep = is_chase_finite_materialization(&s, &db, &[tgd], None);
        assert_eq!(rep.verdict, MaterializationVerdict::Finite);
        assert!(rep.atoms_materialized as u128 <= rep.bound);
    }

    #[test]
    fn infinite_case_with_saturated_bound_exhausts_budget() {
        // Supported special cycle ⇒ bound saturates ⇒ only the budget stops
        // the run. This is exactly the §1.4 pathology.
        let mut s = Schema::new();
        let r = s.add_predicate("R", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&s, r, vec![c(0), c(1)]).unwrap());
        let rep = is_chase_finite_materialization(&s, &db, &[tgd], Some(100));
        assert_eq!(rep.verdict, MaterializationVerdict::BudgetExhausted);
        assert_eq!(rep.bound, u128::MAX);
        assert!(rep.atoms_materialized >= 100);
    }

    #[test]
    fn unsupported_cycle_terminates_finite() {
        // Cycle on q, database on r only: the chase of D never touches q.
        let mut s = Schema::new();
        let r = s.add_predicate("r", 1).unwrap();
        let q = s.add_predicate("q", 2).unwrap();
        let cyc = Tgd::new(
            vec![Atom::new(&s, q, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, q, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&s, r, vec![c(0)]).unwrap());
        let rep = is_chase_finite_materialization(&s, &db, &[cyc], None);
        assert_eq!(rep.verdict, MaterializationVerdict::Finite);
        assert_eq!(rep.atoms_materialized, 1);
    }
}
