//! The packed columnar tuple store the chase engines run on.
//!
//! The paper runs every experiment against a database-resident instance
//! (PostgreSQL, §5.3/§5.4); this module is the substrate that lets our
//! chase do the same. A [`ChaseStore`] is a mutable set of packed-`u64`
//! tuples ([`soct_model::Term::pack`] encoding) with the three access paths
//! trigger enumeration needs:
//!
//! 1. per-predicate row listings (the scan side of body matching),
//! 2. an incremental `(predicate, position, value) → rows` index with
//!    borrowed-slice lookups (the index-nested-loops side), and
//! 3. tuple-hash duplicate detection (the set semantics of the `chase_i`
//!    fixpoint).
//!
//! Rows carry global, insertion-ordered ids ([`RowId`]) so the engine's
//! semi-naive delta ranges work across predicates, exactly like the atom
//! indices of [`soct_model::Instance`] — but a row here is a bare `&[u64]`
//! slice into a per-predicate arena: the hot path never allocates an
//! `Atom`, boxes a term slice, or clones an index posting list.
//!
//! Two implementations mirror the paper's two deployment modes:
//!
//! - [`ColumnarStore`] — the in-memory mode (§5.3's "in-memory" flavour):
//!   everything lives in per-predicate packed arenas.
//! - [`EngineBackedStore`] — the in-database mode (§5.4): the instance
//!   lives in a [`StorageEngine`] (our stand-in for PostgreSQL). Opening
//!   the store performs the engine's *full-scan* operation once to build
//!   the working arenas — a decoded buffer pool over the engine's pages —
//!   and every derived tuple is written back through to the engine's
//!   tables, so after the run the chased instance is database-resident.
//!
//! [`ColumnarStore`] also implements [`TupleSource`], so chase output can
//! be handed straight to the termination checkers and `FindShapes` without
//! converting back to boxed atoms.

use soct_model::fxhash::{FxHashMap, FxHasher};
use soct_model::{Atom, Instance, PredId, Schema, Term, MAX_ARITY};
use soct_storage::{query, ColumnCondition, StorageEngine, TupleSource};
use std::hash::Hasher;

/// Global index of a row within a store (insertion order, across all
/// predicates) — the unit of the engine's semi-naive delta ranges.
pub type RowId = u32;

/// The sentinel an engine binding slot holds while unbound. Never a valid
/// packed ground term (packed tags are 0..=2 in bits 32..34).
pub(crate) const UNBOUND: u64 = u64::MAX;

/// Mutable packed-tuple storage with the access paths the chase needs.
///
/// The chase engine is generic over this trait; [`ColumnarStore`] and
/// [`EngineBackedStore`] are the two shipped implementations.
///
/// `Send + Sync` are supertraits because the engine's parallel rounds
/// shard trigger enumeration across scoped worker threads: each worker
/// holds a shared reference to the store as a read-only round snapshot
/// (behind the engine's `RwLock`, which needs `Send`), and all mutation
/// happens in the single-writer merge phase between rounds.
///
/// ```
/// use soct_chase::{ChaseStore, ColumnarStore};
/// use soct_model::{ConstId, PredId, Term};
///
/// let mut store = ColumnarStore::new();
/// let p = PredId(0);
/// let c = |i| Term::Const(ConstId(i)).pack();
/// assert_eq!(store.insert(p, &[c(0), c(1)]), Some(0));
/// assert_eq!(store.insert(p, &[c(0), c(1)]), None); // set semantics
/// assert_eq!(store.insert(p, &[c(1), c(1)]), Some(1));
/// assert_eq!(store.rows_of(p), &[0, 1]);           // insertion order
/// assert_eq!(store.rows_with(p, 1, c(1)), &[0, 1]); // position index
/// assert_eq!(store.row(1), &[c(1), c(1)]);
/// ```
pub trait ChaseStore: Send + Sync {
    /// Total rows, across all predicates.
    fn len(&self) -> usize;

    /// True when no rows are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The packed terms of row `id`.
    fn row(&self, id: RowId) -> &[u64];

    /// The predicate of row `id`.
    fn pred_of(&self, id: RowId) -> PredId;

    /// Row ids of predicate `pred`, in insertion order.
    fn rows_of(&self, pred: PredId) -> &[RowId];

    /// Row ids of `pred` whose `position`-th column equals `value` — an
    /// exact, borrowed posting list from the incremental position index.
    fn rows_with(&self, pred: PredId, position: usize, value: u64) -> &[RowId];

    /// Inserts a packed tuple; returns its new id, or `None` if an equal
    /// tuple of the same predicate is already stored.
    ///
    /// `row.len()` is the predicate's arity: it must be in
    /// `1..=MAX_ARITY` and consistent across all inserts of `pred`
    /// (schema-checked atoms guarantee this; implementations may panic on
    /// violation rather than corrupt their arenas).
    fn insert(&mut self, pred: PredId, row: &[u64]) -> Option<RowId>;
}

/// Hash of a `(predicate, packed tuple)` pair — the dedup key.
#[inline]
fn row_hash(pred: PredId, row: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(pred.0);
    for &v in row {
        h.write_u64(v);
    }
    h.finish()
}

/// Per-predicate packed-row arena.
#[derive(Default, Clone, Debug)]
struct PredColumn {
    /// Columns per row; fixed after the first insert.
    arity: u32,
    /// Row-major packed values, `arity` per row, insertion order.
    values: Vec<u64>,
    /// Global ids of this predicate's rows, insertion order.
    rows: Vec<RowId>,
}

/// Locates a row inside its predicate's arena.
#[derive(Clone, Copy, Debug)]
struct RowRef {
    pred: PredId,
    /// Offset of the row's first value in `PredColumn::values`.
    offset: u32,
}

/// The in-memory [`ChaseStore`]: per-predicate packed-row arenas, a global
/// insertion-order directory, an incremental position index, and
/// tuple-hash dedup. Predicates are discovered lazily from inserted rows,
/// so no schema is needed to create one.
#[derive(Default, Clone, Debug)]
pub struct ColumnarStore {
    preds: Vec<PredColumn>,
    dir: Vec<RowRef>,
    /// `(pred, position, packed value) → row ids`, maintained on insert.
    pos_index: FxHashMap<(PredId, u16, u64), Vec<RowId>>,
    /// `row_hash → row ids`; collisions resolved by comparing arenas.
    dedup: FxHashMap<u64, Vec<RowId>>,
}

impl ColumnarStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a store holding the atoms of `db`, in insertion order.
    pub fn from_instance(db: &Instance) -> Self {
        let mut store = Self::new();
        let mut scratch = [0u64; MAX_ARITY];
        for a in db.atoms() {
            for (i, t) in a.terms.iter().enumerate() {
                scratch[i] = t.pack();
            }
            store.insert(a.pred, &scratch[..a.arity()]);
        }
        store
    }

    /// Builds a store from any [`TupleSource`] — predicates in catalog
    /// order, rows in scan order. Duplicate source rows collapse (set
    /// semantics).
    pub fn from_source(src: &dyn TupleSource) -> Self {
        let mut store = Self::new();
        for pred in src.non_empty_predicates() {
            src.scan(pred, &mut |row| {
                store.insert(pred, row);
                true
            });
        }
        store
    }

    /// Total rows, across all predicates (inherent mirror of
    /// [`ChaseStore::len`], so callers need no trait import).
    #[inline]
    pub fn len(&self) -> usize {
        self.dir.len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.dir.is_empty()
    }

    /// The distinct predicates with at least one row, ascending.
    pub fn predicates(&self) -> impl Iterator<Item = PredId> + '_ {
        self.preds
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.rows.is_empty())
            .map(|(i, _)| PredId(i as u32))
    }

    /// Arity of `pred` (0 when the predicate holds no rows).
    pub fn arity_of(&self, pred: PredId) -> usize {
        self.preds
            .get(pred.index())
            .map(|c| c.arity as usize)
            .unwrap_or(0)
    }

    /// True if an equal tuple of `pred` is stored.
    pub fn contains(&self, pred: PredId, row: &[u64]) -> bool {
        self.find(pred, row).is_some()
    }

    fn find(&self, pred: PredId, row: &[u64]) -> Option<RowId> {
        let candidates = self.dedup.get(&row_hash(pred, row))?;
        candidates
            .iter()
            .copied()
            .find(|&id| self.pred_of(id) == pred && self.row(id) == row)
    }

    /// Iterates `(predicate, packed row)` in global insertion order.
    pub fn iter_rows(&self) -> impl Iterator<Item = (PredId, &[u64])> + '_ {
        self.dir.iter().map(move |r| {
            let col = &self.preds[r.pred.index()];
            let off = r.offset as usize;
            (r.pred, &col.values[off..off + col.arity as usize])
        })
    }

    /// Decodes the store into a boxed-atom [`Instance`] (compatibility
    /// path; the hot paths stay packed). The result keeps the position
    /// index so downstream homomorphism checks stay fast.
    pub fn to_instance(&self) -> Instance {
        let mut inst = Instance::with_index();
        for (pred, row) in self.iter_rows() {
            let terms: Vec<Term> = row
                .iter()
                .map(|&v| Term::unpack(v).expect("stores hold valid packed ground terms"))
                .collect();
            inst.insert(Atom::new_unchecked(pred, terms));
        }
        inst
    }
}

impl ChaseStore for ColumnarStore {
    #[inline]
    fn len(&self) -> usize {
        ColumnarStore::len(self)
    }

    #[inline]
    fn row(&self, id: RowId) -> &[u64] {
        let r = self.dir[id as usize];
        let col = &self.preds[r.pred.index()];
        let off = r.offset as usize;
        &col.values[off..off + col.arity as usize]
    }

    #[inline]
    fn pred_of(&self, id: RowId) -> PredId {
        self.dir[id as usize].pred
    }

    fn rows_of(&self, pred: PredId) -> &[RowId] {
        self.preds
            .get(pred.index())
            .map(|c| c.rows.as_slice())
            .unwrap_or(&[])
    }

    fn rows_with(&self, pred: PredId, position: usize, value: u64) -> &[RowId] {
        self.pos_index
            .get(&(pred, position as u16, value))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn insert(&mut self, pred: PredId, row: &[u64]) -> Option<RowId> {
        debug_assert!(!row.is_empty() && row.len() <= MAX_ARITY);
        let hash = row_hash(pred, row);
        if let Some(candidates) = self.dedup.get(&hash) {
            if candidates
                .iter()
                .any(|&id| self.pred_of(id) == pred && self.row(id) == row)
            {
                return None;
            }
        }
        if pred.index() >= self.preds.len() {
            self.preds
                .resize_with(pred.index() + 1, PredColumn::default);
        }
        let id = self.dir.len() as RowId;
        let col = &mut self.preds[pred.index()];
        if col.rows.is_empty() {
            col.arity = row.len() as u32;
        }
        // A hard assert: a mismatched-arity insert would misalign every
        // later row of the arena. Trivial next to the hashing above.
        assert_eq!(
            col.arity as usize,
            row.len(),
            "arity drift within a predicate"
        );
        let offset = col.values.len() as u32;
        col.values.extend_from_slice(row);
        col.rows.push(id);
        self.dir.push(RowRef { pred, offset });
        for (i, &v) in row.iter().enumerate() {
            self.pos_index
                .entry((pred, i as u16, v))
                .or_default()
                .push(id);
        }
        self.dedup.entry(hash).or_default().push(id);
        Some(id)
    }
}

impl TupleSource for ColumnarStore {
    fn non_empty_predicates(&self) -> Vec<PredId> {
        self.predicates().collect()
    }

    fn arity_of(&self, pred: PredId) -> usize {
        ColumnarStore::arity_of(self, pred)
    }

    fn row_count(&self, pred: PredId) -> u64 {
        self.rows_of(pred).len() as u64
    }

    fn scan(&self, pred: PredId, f: &mut dyn FnMut(&[u64]) -> bool) -> bool {
        let Some(col) = self.preds.get(pred.index()) else {
            return true;
        };
        if col.rows.is_empty() {
            return true;
        }
        for row in col.values.chunks_exact(col.arity as usize) {
            if !f(row) {
                return false;
            }
        }
        true
    }

    fn exists_where(&self, pred: PredId, conds: &[ColumnCondition]) -> bool {
        !self.scan(pred, &mut |row| !query::eval_all(conds, row))
    }
}

/// The storage-backed [`ChaseStore`]: the instance lives in a
/// [`StorageEngine`] and every derived tuple is written through to it.
///
/// Opening the store performs the engine's full-scan operation once (the
/// §5.3 "load" step) to populate a [`ColumnarStore`] working set — the
/// decoded buffer pool the matcher reads — then all inserts go to both.
/// Duplicate rows already present in the engine collapse into the working
/// set but are left untouched on disk.
pub struct EngineBackedStore<'a> {
    engine: &'a mut StorageEngine,
    schema: &'a Schema,
    mem: ColumnarStore,
    /// Predicates whose engine table is known to exist (growth hook cache).
    ensured: Vec<bool>,
}

impl<'a> EngineBackedStore<'a> {
    /// Opens the database resident in `engine` for chasing. Scans every
    /// non-empty table once; `schema` supplies table names for predicates
    /// first materialised by the chase.
    pub fn open(schema: &'a Schema, engine: &'a mut StorageEngine) -> Self {
        // One source of truth for the canonical load order (predicates
        // ascending, rows in insertion order): the bit-identical guarantee
        // between backends depends on it.
        let mem = ColumnarStore::from_source(engine);
        let mut ensured = vec![false; schema.len()];
        for (pred, _) in engine.tables() {
            if let Some(e) = ensured.get_mut(pred.index()) {
                *e = true;
            }
        }
        EngineBackedStore {
            engine,
            schema,
            mem,
            ensured,
        }
    }

    /// Detaches the in-memory working set (the chased instance) from the
    /// engine borrow.
    pub fn into_store(self) -> ColumnarStore {
        self.mem
    }

    /// The engine this store writes through to.
    pub fn engine(&self) -> &StorageEngine {
        self.engine
    }
}

impl ChaseStore for EngineBackedStore<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.mem.len()
    }

    #[inline]
    fn row(&self, id: RowId) -> &[u64] {
        self.mem.row(id)
    }

    #[inline]
    fn pred_of(&self, id: RowId) -> PredId {
        self.mem.pred_of(id)
    }

    fn rows_of(&self, pred: PredId) -> &[RowId] {
        self.mem.rows_of(pred)
    }

    fn rows_with(&self, pred: PredId, position: usize, value: u64) -> &[RowId] {
        self.mem.rows_with(pred, position, value)
    }

    fn insert(&mut self, pred: PredId, row: &[u64]) -> Option<RowId> {
        let id = self.mem.insert(pred, row)?;
        if !self.ensured.get(pred.index()).copied().unwrap_or(false) {
            self.engine
                .create_table(pred, self.schema.name(pred), row.len());
            if pred.index() >= self.ensured.len() {
                self.ensured.resize(pred.index() + 1, false);
            }
            self.ensured[pred.index()] = true;
        }
        self.engine.insert_packed(pred, row);
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::ConstId;

    fn c(i: u32) -> u64 {
        Term::Const(ConstId(i)).pack()
    }

    #[test]
    fn insert_dedups_and_indexes() {
        let mut s = ColumnarStore::new();
        let p = PredId(0);
        assert_eq!(s.insert(p, &[c(0), c(1)]), Some(0));
        assert_eq!(s.insert(p, &[c(0), c(1)]), None);
        assert_eq!(s.insert(p, &[c(1), c(1)]), Some(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.rows_of(p), &[0, 1]);
        assert_eq!(s.rows_with(p, 0, c(0)), &[0]);
        assert_eq!(s.rows_with(p, 1, c(1)), &[0, 1]);
        assert_eq!(s.rows_with(p, 1, c(9)), &[] as &[RowId]);
        assert_eq!(s.row(1), &[c(1), c(1)]);
        assert!(s.contains(p, &[c(0), c(1)]));
        assert!(!s.contains(p, &[c(1), c(0)]));
    }

    #[test]
    fn global_ids_interleave_predicates() {
        let mut s = ColumnarStore::new();
        let (p, q) = (PredId(0), PredId(2));
        s.insert(p, &[c(0)]);
        s.insert(q, &[c(1), c(1)]);
        s.insert(p, &[c(2)]);
        assert_eq!(s.rows_of(p), &[0, 2]);
        assert_eq!(s.rows_of(q), &[1]);
        assert_eq!(s.pred_of(1), q);
        assert_eq!(s.arity_of(q), 2);
        let preds: Vec<PredId> = s.predicates().collect();
        assert_eq!(preds, vec![p, q]);
    }

    #[test]
    fn instance_round_trip_preserves_order_and_set() {
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 2).unwrap();
        let mut inst = Instance::new();
        for i in 0..5u32 {
            inst.insert(
                Atom::new(
                    &schema,
                    r,
                    vec![Term::Const(ConstId(i)), Term::Const(ConstId(i + 1))],
                )
                .unwrap(),
            );
        }
        let store = ColumnarStore::from_instance(&inst);
        assert_eq!(store.len(), 5);
        let back = store.to_instance();
        assert_eq!(back.len(), 5);
        for (a, b) in inst.atoms().iter().zip(back.atoms()) {
            assert_eq!(a, b, "insertion order survives the round trip");
        }
    }

    #[test]
    fn tuple_source_view_matches_contents() {
        let mut s = ColumnarStore::new();
        let p = PredId(1);
        s.insert(p, &[c(3), c(3)]);
        s.insert(p, &[c(3), c(4)]);
        assert_eq!(s.non_empty_predicates(), vec![p]);
        assert_eq!(TupleSource::row_count(&s, p), 2);
        assert!(s.exists_where(p, &[ColumnCondition::Eq(0, 1)]));
        assert!(!s.exists_where(p, &[ColumnCondition::Ne(0, 1), ColumnCondition::Eq(0, 1)]));
        let mut seen = 0;
        s.scan(p, &mut |row| {
            assert_eq!(row.len(), 2);
            seen += 1;
            true
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn engine_backed_store_writes_through() {
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 2).unwrap();
        let p = schema.add_predicate("p", 1).unwrap();
        let mut engine = StorageEngine::new();
        engine.create_table(r, "r", 2);
        engine.insert_packed(r, &[c(0), c(1)]);
        engine.insert_packed(r, &[c(0), c(1)]); // on-disk duplicate
        let mut store = EngineBackedStore::open(&schema, &mut engine);
        assert_eq!(store.len(), 1, "duplicates collapse in the working set");
        // A derived tuple for a predicate with no table yet.
        assert!(store.insert(p, &[c(7)]).is_some());
        assert!(store.insert(p, &[c(7)]).is_none(), "write-through dedups");
        let mem = store.into_store();
        assert_eq!(mem.len(), 2);
        assert_eq!(engine.row_count(p), 1);
        assert_eq!(engine.table(p).unwrap().name(), "p");
        // Engine keeps its original rows untouched.
        assert_eq!(engine.row_count(r), 2);
    }
}
