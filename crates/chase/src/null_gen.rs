//! Canonical null naming (Definition 3.1).
//!
//! The result of a trigger `(σ, h)` maps each existential variable `x` of
//! `head(σ)` to the null `⊥^x_{σ, h|fr(σ)}` — a name determined by the TGD,
//! the restriction of `h` to the frontier, and the variable. This makes the
//! semi-oblivious chase's "apply once per frontier witness" policy
//! automatic under set semantics, and makes chase results deterministic.
//!
//! The oblivious chase keys nulls by the *full* body homomorphism instead;
//! the restricted chase mints fresh nulls per application. One factory
//! serves all three via the witness the engine passes in.

use soct_model::fxhash::FxHashMap;
use soct_model::{NullId, Term, VarId};

/// Key of a canonical null: (TGD index, witness tuple, existential var).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct NullKey {
    tgd: u32,
    witness: Box<[Term]>,
    var: VarId,
}

/// Mints nulls with canonical, reusable names.
#[derive(Default, Clone, Debug)]
pub struct NullFactory {
    map: FxHashMap<NullKey, NullId>,
    next: u32,
}

impl NullFactory {
    /// Creates an empty factory.
    pub fn new() -> Self {
        Self::default()
    }

    /// The null `⊥^var_{tgd, witness}`; stable across calls with the same
    /// key.
    pub fn canonical(&mut self, tgd: u32, witness: &[Term], var: VarId) -> NullId {
        if let Some(&n) = self.map.get(&NullKey {
            tgd,
            witness: witness.into(),
            var,
        }) {
            return n;
        }
        let id = NullId(self.next);
        self.next += 1;
        self.map.insert(
            NullKey {
                tgd,
                witness: witness.into(),
                var,
            },
            id,
        );
        id
    }

    /// A fresh null that will never be reused (restricted chase).
    pub fn fresh(&mut self) -> NullId {
        let id = NullId(self.next);
        self.next += 1;
        id
    }

    /// Number of nulls minted so far.
    pub fn count(&self) -> usize {
        self.next as usize
    }
}

/// The packed engine's null factory: canonical nulls are keyed by
/// `(witness id, existential slot)`, where the witness id comes from the
/// engine's [`crate::trigger::WitnessTable`] (which already encodes the TGD
/// and the witness tuple). No tuple is cloned per null — the whole key is
/// eight bytes.
#[derive(Default, Debug)]
pub(crate) struct PackedNullFactory {
    map: FxHashMap<(u32, u16), NullId>,
    next: u32,
}

impl PackedNullFactory {
    /// The null `⊥^slot_{witness}`; stable across calls with the same key.
    pub fn canonical(&mut self, witness: u32, slot: u16) -> NullId {
        if let Some(&n) = self.map.get(&(witness, slot)) {
            return n;
        }
        let id = NullId(self.next);
        self.next += 1;
        self.map.insert((witness, slot), id);
        id
    }

    /// A fresh null that will never be reused (restricted chase).
    pub fn fresh(&mut self) -> NullId {
        let id = NullId(self.next);
        self.next += 1;
        id
    }

    /// Number of nulls minted so far.
    pub fn count(&self) -> usize {
        self.next as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::ConstId;

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    #[test]
    fn canonical_names_are_stable() {
        let mut f = NullFactory::new();
        let a = f.canonical(0, &[c(1)], VarId(5));
        let b = f.canonical(0, &[c(1)], VarId(5));
        assert_eq!(a, b);
        assert_eq!(f.count(), 1);
    }

    #[test]
    fn distinct_keys_get_distinct_nulls() {
        let mut f = NullFactory::new();
        let base = f.canonical(0, &[c(1)], VarId(0));
        assert_ne!(f.canonical(1, &[c(1)], VarId(0)), base); // different TGD
        assert_ne!(f.canonical(0, &[c(2)], VarId(0)), base); // different witness
        assert_ne!(f.canonical(0, &[c(1)], VarId(1)), base); // different variable
        assert_ne!(f.canonical(0, &[c(1), c(1)], VarId(0)), base); // longer witness
        assert_eq!(f.count(), 5);
    }

    #[test]
    fn fresh_nulls_never_collide() {
        let mut f = NullFactory::new();
        let a = f.fresh();
        let b = f.fresh();
        let c_ = f.canonical(0, &[], VarId(0));
        assert_ne!(a, b);
        assert_ne!(b, c_);
        assert_eq!(f.count(), 3);
    }

    #[test]
    fn packed_factory_mirrors_the_term_factory() {
        let mut f = PackedNullFactory::default();
        let a = f.canonical(0, 0);
        assert_eq!(f.canonical(0, 0), a);
        assert_ne!(f.canonical(1, 0), a); // other witness
        assert_ne!(f.canonical(0, 1), a); // other slot
        let fresh = f.fresh();
        assert_ne!(fresh, a);
        assert_eq!(f.count(), 4);
    }

    #[test]
    fn nulls_built_from_nulls_are_canonical_too() {
        // Chase steps routinely fire on atoms containing nulls; the witness
        // may therefore contain nulls.
        let mut f = NullFactory::new();
        let n0 = f.fresh();
        let w = [Term::Null(n0)];
        let a = f.canonical(3, &w, VarId(2));
        let b = f.canonical(3, &w, VarId(2));
        assert_eq!(a, b);
    }
}
