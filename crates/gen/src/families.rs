//! Parameterized TGD families for the scenario foundry.
//!
//! `soct_gen`'s original generators reproduce the paper's §6 experiments;
//! the families here go beyond them, covering fragments from the related
//! literature so benchmarks stop oversampling one region of the ruleset
//! space:
//!
//! - **linear** — the paper's shape-guided single-head linear rules
//!   (reusing [`crate::tgdgen`]);
//! - **multi-head** — multi-head linear rules in the style of Gerlach,
//!   Kalaitzis, Pieris (arXiv 2509.19400): one body atom, several head
//!   atoms chained through shared existentials;
//! - **sticky** — sticky-shaped joins: two-atom bodies sharing one join
//!   variable that propagates into every head atom;
//! - **guarded** — guarded-shaped rules: a guard atom carrying all body
//!   variables plus side atoms over subsets of them;
//! - **ontology** — ontology-shaped chains/stars/cycles over an EL-style
//!   vocabulary of unary classes and binary roles.
//!
//! Every generator is a pure function of `(params, seed)`; the same seed
//! reproduces byte-identical rulesets (locked by `tests/foundry_props.rs`).

use crate::partition::PartitionSampler;
use crate::tgdgen::{generate_tgds_over, TgdGenConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use soct_model::{Atom, PredId, Schema, Term, Tgd, TgdClass, VarId};

/// The TGD families the foundry enumerates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Family {
    /// Paper-style shape-guided linear rules (§6.2).
    Linear,
    /// Multi-head linear rules (single body atom, 1–3 head atoms).
    MultiHead,
    /// Sticky-shaped two-atom joins.
    Sticky,
    /// Guarded-shaped rules (guard atom + side atoms).
    Guarded,
    /// Ontology-shaped chains, stars, and cycles (unary/binary only).
    Ontology,
}

impl Family {
    /// All families, in manifest order.
    pub const ALL: [Family; 5] = [
        Family::Linear,
        Family::MultiHead,
        Family::Sticky,
        Family::Guarded,
        Family::Ontology,
    ];

    /// The manifest/CLI name of the family.
    pub fn name(self) -> &'static str {
        match self {
            Family::Linear => "linear",
            Family::MultiHead => "multi-head",
            Family::Sticky => "sticky",
            Family::Guarded => "guarded",
            Family::Ontology => "ontology",
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Family {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Family::ALL
            .into_iter()
            .find(|f| f.name() == s)
            .ok_or_else(|| {
                format!("family must be linear|multi-head|sticky|guarded|ontology, got `{s}`")
            })
    }
}

/// Size/shape knobs one candidate ruleset is generated under. The foundry
/// derives them from the requested difficulty tier (with seeded jitter)
/// and then *verifies* the result against the measured tier
/// ([`crate::difficulty::calibrate`]).
#[derive(Clone, Copy, Debug)]
pub struct FamilyParams {
    /// Size of the fresh predicate pool.
    pub n_preds: usize,
    /// Number of rules to generate.
    pub n_rules: usize,
    /// Minimum predicate arity (ontology ignores this: classes are unary).
    pub min_arity: usize,
    /// Maximum predicate arity (ontology caps at 2).
    pub max_arity: usize,
    /// Probability of an existential head position.
    pub existential_prob: f64,
    /// Probability of structure that closes predicate-level cycles
    /// (back-edges in chains, cycle closure in ontologies).
    pub cycle_prob: f64,
}

/// Tier-appropriate parameter ranges, jittered by `rng` so candidates in
/// one bucket differ structurally, not just in their random draws.
pub fn params_for(tier: crate::difficulty::Difficulty, rng: &mut StdRng) -> FamilyParams {
    use crate::difficulty::Difficulty::*;
    match tier {
        Trivial => FamilyParams {
            n_preds: rng.random_range(2..=4usize),
            n_rules: rng.random_range(2..=3usize),
            min_arity: 1,
            max_arity: 2,
            existential_prob: 0.10,
            cycle_prob: 0.15,
        },
        Easy => FamilyParams {
            n_preds: rng.random_range(4..=7usize),
            n_rules: rng.random_range(5..=12usize),
            min_arity: 1,
            max_arity: rng.random_range(2..=3usize),
            existential_prob: 0.15,
            cycle_prob: 0.25,
        },
        Medium => FamilyParams {
            n_preds: rng.random_range(7..=12usize),
            n_rules: rng.random_range(16..=44usize),
            min_arity: 2,
            max_arity: rng.random_range(3..=5usize),
            existential_prob: 0.20,
            cycle_prob: 0.5,
        },
        Hard => FamilyParams {
            n_preds: rng.random_range(10..=18usize),
            n_rules: rng.random_range(70..=150usize),
            min_arity: 3,
            // Capped at 6: the dynamic-simplification closure over wide
            // shape lattices grows exponentially with arity (§4.2), and
            // corpus entries must stay checkable in milliseconds.
            max_arity: 6,
            existential_prob: 0.25,
            cycle_prob: 0.75,
        },
    }
}

/// Generates one candidate ruleset of the given family. Pure in
/// `(family, params, seed)`: the schema's predicate names, the rule
/// order, and every term are reproducible bit-for-bit.
pub fn generate_family(family: Family, params: &FamilyParams, seed: u64) -> (Schema, Vec<Tgd>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf0d5_7a6e_5eed_0001);
    let mut schema = Schema::new();
    let tgds = match family {
        Family::Linear => gen_linear(&mut schema, params, &mut rng),
        Family::MultiHead => gen_multi_head(&mut schema, params, &mut rng),
        Family::Sticky => gen_sticky(&mut schema, params, &mut rng),
        Family::Guarded => gen_guarded(&mut schema, params, &mut rng),
        Family::Ontology => gen_ontology(&mut schema, params, &mut rng),
    };
    (schema, tgds)
}

/// Fresh predicate pool `{prefix}{i}` with uniform arities in the window.
fn pool(
    schema: &mut Schema,
    prefix: &str,
    n: usize,
    min_arity: usize,
    max_arity: usize,
    rng: &mut StdRng,
) -> Vec<PredId> {
    crate::datagen::make_predicates(schema, prefix, n, min_arity, max_arity, rng)
}

/// Paper-style linear rules: delegate to the §6.2 generator over a fresh
/// pool (every pool predicate is eligible, so `ssize = n_preds`).
fn gen_linear(schema: &mut Schema, p: &FamilyParams, rng: &mut StdRng) -> Vec<Tgd> {
    let preds = pool(schema, "ln", p.n_preds, p.min_arity, p.max_arity, rng);
    let cfg = TgdGenConfig {
        ssize: p.n_preds,
        min_arity: p.min_arity,
        max_arity: p.max_arity,
        tsize: p.n_rules,
        tclass: TgdClass::Linear,
        existential_prob: p.existential_prob,
        seed: 0, // unused: generate_tgds_over threads `rng` through
    };
    generate_tgds_over(&cfg, schema, &preds, rng)
}

/// Shape-guided body terms for a single body atom: variables follow a
/// uniformly random partition of the positions (repetitions allowed),
/// yielding proper Linear rules; returns the distinct variables.
fn shaped_body(
    sampler: &PartitionSampler,
    arity: usize,
    rng: &mut StdRng,
) -> (Vec<Term>, Vec<VarId>) {
    let shape = sampler.sample(rng, arity);
    let terms: Vec<Term> = shape
        .ids()
        .iter()
        .map(|&id| Term::Var(VarId(id as u32 - 1)))
        .collect();
    let mut distinct = Vec::new();
    for t in &terms {
        let v = t.as_var().expect("body terms are variables");
        if !distinct.contains(&v) {
            distinct.push(v);
        }
    }
    (terms, distinct)
}

/// Multi-head linear rules: one shape-guided body atom, 1–3 head atoms.
/// Existential variables are shared across head atoms half the time, so
/// the heads chain through fresh nulls instead of being independent —
/// the structural trait that separates multi-head from single-head sets.
fn gen_multi_head(schema: &mut Schema, p: &FamilyParams, rng: &mut StdRng) -> Vec<Tgd> {
    let preds = pool(schema, "mh", p.n_preds, p.min_arity, p.max_arity, rng);
    let sampler = PartitionSampler::new();
    let mut out = Vec::with_capacity(p.n_rules);
    while out.len() < p.n_rules {
        let body_pred = preds[rng.random_range(0..preds.len())];
        let body_arity = schema.arity(body_pred);
        let (body_terms, body_vars) = shaped_body(&sampler, body_arity, rng);

        let n_heads = rng.random_range(1..=3usize);
        let mut next_exist = body_arity as u32;
        let mut live_exists: Vec<VarId> = Vec::new();
        let mut heads = Vec::with_capacity(n_heads);
        for _ in 0..n_heads {
            let head_pred = preds[rng.random_range(0..preds.len())];
            let head_arity = schema.arity(head_pred);
            let terms: Vec<Term> = (0..head_arity)
                .map(|_| {
                    if rng.random_bool(p.existential_prob) {
                        // Chain through an existing existential half the
                        // time; otherwise mint a fresh one.
                        if !live_exists.is_empty() && rng.random_bool(0.5) {
                            Term::Var(live_exists[rng.random_range(0..live_exists.len())])
                        } else {
                            let v = VarId(next_exist);
                            next_exist += 1;
                            live_exists.push(v);
                            Term::Var(v)
                        }
                    } else {
                        Term::Var(body_vars[rng.random_range(0..body_vars.len())])
                    }
                })
                .collect();
            heads.push(Atom::new(schema, head_pred, terms).expect("arity by construction"));
        }
        let body = Atom::new(schema, body_pred, body_terms).expect("arity by construction");
        out.push(Tgd::new(vec![body], heads).expect("generated TGD is valid"));
    }
    out
}

/// Sticky-shaped rules: two body atoms sharing exactly one join variable,
/// and the join variable occurs in every head atom (the marked-variable
/// discipline of sticky sets, specialised to one join).
fn gen_sticky(schema: &mut Schema, p: &FamilyParams, rng: &mut StdRng) -> Vec<Tgd> {
    // Sticky joins need arity ≥ 1 on both sides; keep the window as given
    // but force at least arity 1 (pool already does).
    let preds = pool(schema, "st", p.n_preds, p.min_arity, p.max_arity, rng);
    let mut out = Vec::with_capacity(p.n_rules);
    while out.len() < p.n_rules {
        let a_pred = preds[rng.random_range(0..preds.len())];
        let b_pred = preds[rng.random_range(0..preds.len())];
        let head_pred = preds[rng.random_range(0..preds.len())];
        let a_arity = schema.arity(a_pred);
        let b_arity = schema.arity(b_pred);
        let head_arity = schema.arity(head_pred);

        // Variables 0..a_arity fill atom A; the join variable is one of
        // them, re-used at a random position of atom B; B's remaining
        // positions get fresh variables.
        let join = VarId(rng.random_range(0..a_arity as u32));
        let a_terms: Vec<Term> = (0..a_arity as u32).map(|i| Term::Var(VarId(i))).collect();
        let join_pos = rng.random_range(0..b_arity);
        let mut next = a_arity as u32;
        let b_terms: Vec<Term> = (0..b_arity)
            .map(|i| {
                if i == join_pos {
                    Term::Var(join)
                } else {
                    let v = next;
                    next += 1;
                    Term::Var(VarId(v))
                }
            })
            .collect();
        let body_vars: Vec<VarId> = (0..next).map(VarId).collect();

        // Head: the join variable appears at a fixed position; the rest
        // are existential with probability p, else random body variables.
        let join_head_pos = rng.random_range(0..head_arity);
        let mut next_exist = next;
        let head_terms: Vec<Term> = (0..head_arity)
            .map(|i| {
                if i == join_head_pos {
                    Term::Var(join)
                } else if rng.random_bool(p.existential_prob) {
                    let v = VarId(next_exist);
                    next_exist += 1;
                    Term::Var(v)
                } else {
                    Term::Var(body_vars[rng.random_range(0..body_vars.len())])
                }
            })
            .collect();

        let a = Atom::new(schema, a_pred, a_terms).expect("arity by construction");
        let b = Atom::new(schema, b_pred, b_terms).expect("arity by construction");
        let head = Atom::new(schema, head_pred, head_terms).expect("arity by construction");
        out.push(Tgd::new(vec![a, b], vec![head]).expect("generated TGD is valid"));
    }
    out
}

/// Guarded-shaped rules: a guard atom containing *all* body variables,
/// plus 1–2 side atoms over subsets of them; single head atom.
fn gen_guarded(schema: &mut Schema, p: &FamilyParams, rng: &mut StdRng) -> Vec<Tgd> {
    // The guard must be wide enough to carry every variable: draw guards
    // from the top of the arity window, sides from anywhere.
    let preds = pool(schema, "gd", p.n_preds, p.min_arity, p.max_arity, rng);
    let max_arity_pred = |preds: &[PredId], schema: &Schema, rng: &mut StdRng| {
        // Rejection-pick a predicate of maximal-ish arity for the guard.
        let widest = preds.iter().map(|&q| schema.arity(q)).max().unwrap_or(1);
        loop {
            let q = preds[rng.random_range(0..preds.len())];
            if schema.arity(q) + 1 >= widest {
                return q;
            }
        }
    };
    let mut out = Vec::with_capacity(p.n_rules);
    while out.len() < p.n_rules {
        let guard_pred = max_arity_pred(&preds, schema, rng);
        let guard_arity = schema.arity(guard_pred);
        // Guard variables: distinct (guardedness is about coverage, not
        // repetition; repeated-variable shapes come from the other
        // families).
        let guard_terms: Vec<Term> = (0..guard_arity as u32)
            .map(|i| Term::Var(VarId(i)))
            .collect();
        let guard_vars: Vec<VarId> = (0..guard_arity as u32).map(VarId).collect();

        let mut body = vec![Atom::new(schema, guard_pred, guard_terms).expect("arity ok")];
        for _ in 0..rng.random_range(1..=2usize) {
            let side_pred = preds[rng.random_range(0..preds.len())];
            let side_arity = schema.arity(side_pred);
            let side_terms: Vec<Term> = (0..side_arity)
                .map(|_| Term::Var(guard_vars[rng.random_range(0..guard_vars.len())]))
                .collect();
            body.push(Atom::new(schema, side_pred, side_terms).expect("arity ok"));
        }

        let head_pred = preds[rng.random_range(0..preds.len())];
        let head_arity = schema.arity(head_pred);
        let mut next_exist = guard_arity as u32;
        let head_terms: Vec<Term> = (0..head_arity)
            .map(|_| {
                if rng.random_bool(p.existential_prob) {
                    let v = VarId(next_exist);
                    next_exist += 1;
                    Term::Var(v)
                } else {
                    Term::Var(guard_vars[rng.random_range(0..guard_vars.len())])
                }
            })
            .collect();
        let head = Atom::new(schema, head_pred, head_terms).expect("arity ok");
        out.push(Tgd::new(body, vec![head]).expect("generated TGD is valid"));
    }
    out
}

/// Ontology-shaped rules over unary classes `oc{i}` and binary roles
/// `or{i}`: class hierarchies, role chains `C(x) → ∃y R(x,y)`,
/// `R(x,y) → C'(y)`, existential stars around hub classes, and — with
/// `cycle_prob` — chain closures back to earlier classes, which create
/// the special SCCs that make ontologies diverge.
fn gen_ontology(schema: &mut Schema, p: &FamilyParams, rng: &mut StdRng) -> Vec<Tgd> {
    let n_classes = p.n_preds.max(2);
    let n_roles = (p.n_preds / 2).max(1);
    let classes: Vec<PredId> = (0..n_classes)
        .map(|i| schema.add_predicate(&format!("oc{i}"), 1).expect("fresh"))
        .collect();
    let roles: Vec<PredId> = (0..n_roles)
        .map(|i| schema.add_predicate(&format!("or{i}"), 2).expect("fresh"))
        .collect();
    let (x, y) = (Term::Var(VarId(0)), Term::Var(VarId(1)));

    let mut out = Vec::with_capacity(p.n_rules);
    while out.len() < p.n_rules {
        match rng.random_range(0..4u32) {
            // Class hierarchy A ⊑ B.
            0 => {
                let a = classes[rng.random_range(0..classes.len())];
                let b = classes[rng.random_range(0..classes.len())];
                out.push(
                    Tgd::new(
                        vec![Atom::new(schema, a, vec![x]).expect("arity ok")],
                        vec![Atom::new(schema, b, vec![x]).expect("arity ok")],
                    )
                    .expect("valid axiom"),
                );
            }
            // Existential step A ⊑ ∃R (chain/star opener).
            1 => {
                let a = classes[rng.random_range(0..classes.len())];
                let r = roles[rng.random_range(0..roles.len())];
                out.push(
                    Tgd::new(
                        vec![Atom::new(schema, a, vec![x]).expect("arity ok")],
                        vec![Atom::new(schema, r, vec![x, y]).expect("arity ok")],
                    )
                    .expect("valid axiom"),
                );
            }
            // Range step ∃R⁻ ⊑ B: with cycle_prob the target class is a
            // uniformly random one (possibly closing a chain into a
            // cycle); otherwise it is a *later* class, keeping the
            // class-level order acyclic.
            2 => {
                let r = roles[rng.random_range(0..roles.len())];
                let b = if rng.random_bool(p.cycle_prob) {
                    classes[rng.random_range(0..classes.len())]
                } else {
                    let lo = rng.random_range(0..classes.len());
                    classes[lo.max(classes.len() / 2)]
                };
                out.push(
                    Tgd::new(
                        vec![Atom::new(schema, r, vec![x, y]).expect("arity ok")],
                        vec![Atom::new(schema, b, vec![y]).expect("arity ok")],
                    )
                    .expect("valid axiom"),
                );
            }
            // Star burst: a hub class sprouts 2–3 existential roles at
            // once (multi-head) — high predicate fan-out.
            _ => {
                let hub = classes[rng.random_range(0..classes.len())];
                let n = rng.random_range(2..=3usize).min(roles.len());
                let mut heads = Vec::with_capacity(n);
                for k in 0..n {
                    let r = roles[rng.random_range(0..roles.len())];
                    let fresh = Term::Var(VarId(1 + k as u32));
                    heads.push(Atom::new(schema, r, vec![x, fresh]).expect("arity ok"));
                }
                out.push(
                    Tgd::new(
                        vec![Atom::new(schema, hub, vec![x]).expect("arity ok")],
                        heads,
                    )
                    .expect("valid axiom"),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::difficulty::Difficulty;

    fn gen(family: Family, seed: u64) -> (Schema, Vec<Tgd>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = params_for(Difficulty::Medium, &mut rng);
        generate_family(family, &params, seed)
    }

    #[test]
    fn families_generate_their_advertised_structure() {
        for seed in [1u64, 7, 42] {
            let (_s, linear) = gen(Family::Linear, seed);
            assert!(linear.iter().all(|t| t.is_linear() && t.head().len() == 1));

            let (_s, mh) = gen(Family::MultiHead, seed);
            assert!(mh.iter().all(Tgd::is_linear));
            assert!(
                mh.iter().any(|t| t.head().len() > 1),
                "multi-head family must contain multi-head rules"
            );

            let (_s, sticky) = gen(Family::Sticky, seed);
            assert!(sticky.iter().all(|t| t.body().len() == 2));

            let (schema, guarded) = gen(Family::Guarded, seed);
            for t in &guarded {
                assert!(t.body().len() >= 2);
                // First body atom is the guard: it carries all body vars.
                let guard_arity = schema.arity(t.body()[0].pred);
                assert_eq!(t.body_variables().len(), guard_arity);
            }

            let (schema, onto) = gen(Family::Ontology, seed);
            for t in &onto {
                for a in t.body().iter().chain(t.head()) {
                    assert!(schema.arity(a.pred) <= 2);
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for family in Family::ALL {
            let (sa, a) = gen(family, 99);
            let (sb, b) = gen(family, 99);
            assert_eq!(a, b);
            assert_eq!(sa.len(), sb.len());
        }
    }

    #[test]
    fn family_names_round_trip() {
        for family in Family::ALL {
            assert_eq!(family.name().parse::<Family>().unwrap(), family);
        }
        assert!("frobnicate".parse::<Family>().is_err());
    }
}
