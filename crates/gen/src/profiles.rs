//! The experimental design of §7.1 and §8.1: predicate profiles, TGD
//! profiles, their nine combined profiles, and the shared 1000-predicate
//! schema everything draws from.
//!
//! Paper scale: TGD profiles up to one million rules, 100 sets per combined
//! profile (900 sets total) for SL; 5 sets per profile (45) for L; `D★`
//! with 500M tuples. A [`Scale`] knob shrinks set counts and sizes so the
//! default suite runs on a laptop; `Scale::full()` restores the paper's
//! numbers. The measured *trends* are scale-invariant — that is what
//! EXPERIMENTS.md compares.

use crate::datagen::make_predicates;
use crate::tgdgen::{generate_tgds, TgdGenConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use soct_model::{PredId, Schema, Tgd, TgdClass};

/// The three predicate profiles of §7.1.
pub const PRED_PROFILES: [(usize, usize); 3] = [(5, 200), (200, 400), (400, 600)];

/// The three TGD profiles of §7.1 at paper scale.
pub const TGD_PROFILES_FULL: [(usize, usize); 3] =
    [(1, 333_000), (333_000, 666_000), (666_000, 1_000_000)];

/// Experiment scale factors.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Sets generated per combined profile (paper: 100 for SL, 5 for L).
    pub sl_sets_per_profile: usize,
    pub l_sets_per_profile: usize,
    /// Multiplier on the TGD profile bounds (paper: 1.0).
    pub tgd_scale: f64,
    /// Multiplier on `D★`'s `dsize`/`rsize` (paper: 1.0 = 500K each).
    pub data_scale: f64,
}

impl Scale {
    /// Laptop-friendly default: 1/20 of the rule volume, 1/500 of the data
    /// volume, a handful of sets per profile.
    pub fn default_scale() -> Self {
        Scale {
            sl_sets_per_profile: 5,
            l_sets_per_profile: 2,
            tgd_scale: 0.05,
            data_scale: 0.002,
        }
    }

    /// A smoke-test scale for CI and criterion benches.
    pub fn quick() -> Self {
        Scale {
            sl_sets_per_profile: 2,
            l_sets_per_profile: 1,
            tgd_scale: 0.01,
            data_scale: 0.0005,
        }
    }

    /// The paper's numbers.
    pub fn full() -> Self {
        Scale {
            sl_sets_per_profile: 100,
            l_sets_per_profile: 5,
            tgd_scale: 1.0,
            data_scale: 1.0,
        }
    }

    /// The TGD profiles under this scale.
    pub fn tgd_profiles(&self) -> [(usize, usize); 3] {
        TGD_PROFILES_FULL.map(|(lo, hi)| {
            (
                ((lo as f64 * self.tgd_scale) as usize).max(1),
                ((hi as f64 * self.tgd_scale) as usize).max(2),
            )
        })
    }

    /// The view sizes (`tuples per predicate`) of §8.1 under this scale:
    /// paper values 1K, 50K, 100K, 250K, 500K.
    pub fn view_sizes(&self) -> [u64; 5] {
        [1_000u64, 50_000, 100_000, 250_000, 500_000]
            .map(|v| ((v as f64 * self.data_scale) as u64).max(1))
    }
}

/// One of the nine combined profiles.
#[derive(Clone, Copy, Debug)]
pub struct CombinedProfile {
    /// Index into [`PRED_PROFILES`] (0..3).
    pub pred_profile: usize,
    /// Index into the TGD profiles (0..3).
    pub tgd_profile: usize,
    pub pred_range: (usize, usize),
    pub tgd_range: (usize, usize),
}

impl CombinedProfile {
    /// Human-readable label, e.g. `[200,400]x[333K,666K]`.
    pub fn label(&self) -> String {
        format!(
            "preds[{},{}] x rules[{},{}]",
            self.pred_range.0, self.pred_range.1, self.tgd_range.0, self.tgd_range.1
        )
    }
}

/// The nine combined profiles under a scale.
pub fn combined_profiles(scale: &Scale) -> Vec<CombinedProfile> {
    let tgd_profiles = scale.tgd_profiles();
    let mut out = Vec::with_capacity(9);
    for (pi, &pred_range) in PRED_PROFILES.iter().enumerate() {
        for (ti, &tgd_range) in tgd_profiles.iter().enumerate() {
            out.push(CombinedProfile {
                pred_profile: pi,
                tgd_profile: ti,
                pred_range,
                tgd_range,
            });
        }
    }
    out
}

/// The shared underlying schema S of §7.1: 1000 predicates with arities in
/// `[1,5]`.
pub fn shared_schema(seed: u64) -> (Schema, Vec<PredId>) {
    let mut schema = Schema::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let preds = make_predicates(&mut schema, "p", 1000, 1, 5, &mut rng);
    (schema, preds)
}

/// Samples one TGD set from a combined profile: `ssize` and `tsize` drawn
/// uniformly from the profile's ranges, exactly as §7.1 describes.
pub fn sample_profile_set(
    profile: &CombinedProfile,
    schema: &Schema,
    pool: &[PredId],
    tclass: TgdClass,
    seed: u64,
) -> Vec<Tgd> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ssize = rng.random_range(profile.pred_range.0..=profile.pred_range.1);
    let tsize = rng.random_range(profile.tgd_range.0.max(1)..=profile.tgd_range.1);
    let cfg = TgdGenConfig {
        ssize,
        min_arity: 1,
        max_arity: 5,
        tsize,
        tclass,
        existential_prob: 0.1,
        seed: rng.random_range(0..u64::MAX),
    };
    generate_tgds(&cfg, schema, pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_combined_profiles() {
        let profiles = combined_profiles(&Scale::quick());
        assert_eq!(profiles.len(), 9);
        // All pred/tgd pairs distinct.
        let mut keys: Vec<(usize, usize)> = profiles
            .iter()
            .map(|p| (p.pred_profile, p.tgd_profile))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 9);
    }

    #[test]
    fn full_scale_matches_paper_numbers() {
        let s = Scale::full();
        assert_eq!(s.tgd_profiles(), TGD_PROFILES_FULL);
        assert_eq!(s.view_sizes(), [1_000, 50_000, 100_000, 250_000, 500_000]);
        assert_eq!(s.sl_sets_per_profile, 100);
        assert_eq!(s.l_sets_per_profile, 5);
    }

    #[test]
    fn shared_schema_is_the_thousand_predicate_pool() {
        let (schema, preds) = shared_schema(0);
        assert_eq!(preds.len(), 1000);
        assert_eq!(schema.len(), 1000);
        assert!(preds.iter().all(|&p| (1..=5).contains(&schema.arity(p))));
    }

    #[test]
    fn sampled_sets_respect_their_profile() {
        let (schema, pool) = shared_schema(1);
        let profiles = combined_profiles(&Scale::quick());
        let p = &profiles[4]; // [200,400] × middle TGD profile
        let tgds = sample_profile_set(p, &schema, &pool, TgdClass::SimpleLinear, 5);
        assert!(tgds.len() >= p.tgd_range.0 && tgds.len() <= p.tgd_range.1);
        let used = soct_model::tgd::predicates_of(&tgds);
        assert!(used.len() <= p.pred_range.1);
        assert!(tgds.iter().all(Tgd::is_simple_linear));
    }

    #[test]
    fn scaled_profiles_shrink_monotonically() {
        let q = Scale::quick().tgd_profiles();
        let f = Scale::full().tgd_profiles();
        for (a, b) in q.iter().zip(f.iter()) {
            assert!(a.1 <= b.1);
        }
    }
}
