//! The difficulty calibrator of the scenario foundry.
//!
//! A generated ruleset is *not* trusted to be as hard as its generator
//! intended: difficulty is **measured** on the artefact itself, from the
//! same signals the paper's analysis ties to checker cost (§7–§8) —
//! ruleset size, predicate fan-out, the depth of the shape lattices the
//! Apriori walk can descend (bounded by the maximum arity), the presence
//! of special SCCs in the dependency graph, and the number of chase
//! rounds on the critical instance. The foundry generates candidates with
//! tier-appropriate knobs and then keeps only those whose *measured* tier
//! matches the requested one (rejection sampling over sub-seeds), so a
//! `hard` corpus entry is hard by measurement, not by intention.

use soct_chase::{run_chase, ChaseConfig, ChaseVariant};
use soct_core::{check_termination, FindShapesMode, Verdict};
use soct_graph::{find_special_sccs, DependencyGraph};
use soct_model::{Atom, ConstId, FxHashMap, FxHashSet, Instance, PredId, Schema, Term, Tgd};

/// Atom budget for the calibration chase on the critical instance: big
/// enough that shallow fixpoints terminate inside it, small enough that
/// divergent sets are cut off cheaply.
pub const CALIBRATION_MAX_ATOMS: usize = 4_000;
/// Round budget for the calibration chase; divergent sets report this cap.
pub const CALIBRATION_MAX_ROUNDS: usize = 24;

/// The four difficulty tiers of the foundry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Difficulty {
    /// A handful of low-arity rules; every checker answers instantly.
    Trivial,
    /// Small acyclic sets: exercises the pipeline, nothing stresses it.
    Easy,
    /// Either sizeable, or cyclic with a real chase depth — the first tier
    /// where special SCCs and double-digit chase rounds appear.
    Medium,
    /// Large and structurally deep: wide fan-out, high-arity shapes,
    /// special SCCs, and chase rounds at the calibration cap.
    Hard,
}

impl Difficulty {
    /// All tiers, ordered from trivial to hard.
    pub const ALL: [Difficulty; 4] = [
        Difficulty::Trivial,
        Difficulty::Easy,
        Difficulty::Medium,
        Difficulty::Hard,
    ];

    /// The manifest/CLI name of the tier.
    pub fn name(self) -> &'static str {
        match self {
            Difficulty::Trivial => "trivial",
            Difficulty::Easy => "easy",
            Difficulty::Medium => "medium",
            Difficulty::Hard => "hard",
        }
    }
}

impl std::fmt::Display for Difficulty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Difficulty {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Difficulty::ALL
            .into_iter()
            .find(|d| d.name() == s)
            .ok_or_else(|| format!("difficulty must be trivial|easy|medium|hard, got `{s}`"))
    }
}

/// The measured signals a tier verdict is derived from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signals {
    /// `|Σ|`.
    pub n_rules: usize,
    /// `|sch(Σ)|`.
    pub n_preds: usize,
    /// Maximum predicate arity — the depth of the deepest shape lattice
    /// the Apriori walk can descend for this vocabulary.
    pub max_arity: usize,
    /// Maximum predicate-level fan-out: the largest number of distinct
    /// head predicates reachable from one body predicate across Σ.
    pub fanout: usize,
    /// Special SCCs in the dependency graph (the quantity
    /// `IsChaseFinite[SL]` keys on).
    pub special_sccs: usize,
    /// Rounds of the semi-oblivious chase on the critical instance,
    /// capped at [`CALIBRATION_MAX_ROUNDS`].
    pub chase_rounds: usize,
    /// Verdict of `check_termination` on the critical instance.
    pub verdict: Verdict,
}

/// The critical instance `D_Σ` (Remark 1) over raw constant ids: one atom
/// per predicate of Σ, all positions distinct fresh constants. Verdicts on
/// it characterise termination on all databases, which is what the corpus
/// manifest records.
pub fn critical_db(schema: &Schema, tgds: &[Tgd]) -> Instance {
    let mut db = Instance::new();
    let mut next = 0u32;
    for p in soct_model::tgd::predicates_of(tgds) {
        let terms: Vec<Term> = (0..schema.arity(p))
            .map(|_| {
                let t = Term::Const(ConstId(next));
                next += 1;
                t
            })
            .collect();
        db.insert(Atom::new(schema, p, terms).expect("arity matches"));
    }
    db
}

/// Measures every calibration signal of a ruleset.
pub fn measure(schema: &Schema, tgds: &[Tgd]) -> Signals {
    let preds = soct_model::tgd::predicates_of(tgds);
    let max_arity = preds.iter().map(|&p| schema.arity(p)).max().unwrap_or(0);

    // Predicate-level fan-out: body predicate → distinct head predicates.
    let mut fan: FxHashMap<PredId, FxHashSet<PredId>> = FxHashMap::default();
    for t in tgds {
        for b in t.body() {
            let heads = fan.entry(b.pred).or_default();
            for h in t.head() {
                heads.insert(h.pred);
            }
        }
    }
    let fanout = fan.values().map(FxHashSet::len).max().unwrap_or(0);

    let graph = DependencyGraph::build(schema, tgds);
    let special_sccs = find_special_sccs(&graph).special_sccs().len();

    let db = critical_db(schema, tgds);
    let chase = run_chase(
        &db,
        tgds,
        &ChaseConfig {
            max_rounds: CALIBRATION_MAX_ROUNDS,
            threads: 1,
            ..ChaseConfig::with_max_atoms(ChaseVariant::SemiOblivious, CALIBRATION_MAX_ATOMS)
        },
    );
    let verdict = check_termination(schema, tgds, &db, FindShapesMode::InMemory).verdict;

    Signals {
        n_rules: tgds.len(),
        n_preds: preds.len(),
        max_arity,
        fanout,
        special_sccs,
        chase_rounds: chase.rounds.min(CALIBRATION_MAX_ROUNDS),
        verdict,
    }
}

/// Difficulty score: the sum of five bucketed components (0–3 each, the
/// cyclicity component 0 or 3). Monotone in every signal.
pub fn score(s: &Signals) -> u32 {
    let size = match s.n_rules {
        0..=3 => 0,
        4..=12 => 1,
        13..=48 => 2,
        _ => 3,
    };
    let arity = match s.max_arity {
        0..=2 => 0,
        3 => 1,
        4..=5 => 2,
        _ => 3,
    };
    let fanout = match s.fanout {
        0..=1 => 0,
        2..=3 => 1,
        4..=6 => 2,
        _ => 3,
    };
    let cyclic = if s.special_sccs > 0 { 3 } else { 0 };
    let rounds = match s.chase_rounds {
        0..=2 => 0,
        3..=5 => 1,
        6..=12 => 2,
        _ => 3,
    };
    size + arity + fanout + cyclic + rounds
}

/// Buckets a score into a tier. Thresholds are part of the corpus
/// contract: changing them re-tiers existing entries, which the CI drift
/// gate (`soct gen --check-corpus`) turns into a loud failure.
pub fn tier_of_score(score: u32) -> Difficulty {
    match score {
        0..=2 => Difficulty::Trivial,
        3..=5 => Difficulty::Easy,
        6..=9 => Difficulty::Medium,
        _ => Difficulty::Hard,
    }
}

/// Measured tier of a ruleset: [`tier_of_score`] ∘ [`score`] ∘ [`measure`].
pub fn calibrate(schema: &Schema, tgds: &[Tgd]) -> (Difficulty, Signals) {
    let signals = measure(schema, tgds);
    (tier_of_score(score(&signals)), signals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_parser::Program;

    fn signals_of(rules: &str) -> Signals {
        let p = Program::parse(rules).unwrap();
        measure(&p.schema, &p.tgds)
    }

    #[test]
    fn tiny_acyclic_set_is_trivial() {
        let s = signals_of("r(X, Y) -> s(Y).");
        assert_eq!(s.n_rules, 1);
        assert_eq!(s.special_sccs, 0);
        assert_eq!(s.verdict, Verdict::Finite);
        assert_eq!(tier_of_score(score(&s)), Difficulty::Trivial);
    }

    #[test]
    fn special_cycle_lifts_the_tier_to_medium() {
        // Divergent: the chase runs to the round cap, the graph has a
        // special SCC — two maxed components on an otherwise tiny set.
        let s = signals_of("r(X, Y) -> r(Y, Z).");
        assert!(s.special_sccs > 0);
        assert_eq!(s.chase_rounds, CALIBRATION_MAX_ROUNDS);
        assert_eq!(s.verdict, Verdict::Infinite);
        assert_eq!(tier_of_score(score(&s)), Difficulty::Medium);
    }

    #[test]
    fn fanout_is_the_max_over_body_predicates() {
        let s = signals_of("r(X) -> s(X).\nr(X) -> t(X).\nr(X) -> u(X).\ns(X) -> t(X).");
        assert_eq!(s.fanout, 3);
    }

    #[test]
    fn critical_db_has_one_atom_per_predicate_with_distinct_constants() {
        let p = Program::parse("r(X, Y) -> s(Y).\ns(X) -> t(X, X).").unwrap();
        let db = critical_db(&p.schema, &p.tgds);
        assert_eq!(db.len(), 3);
        let mut seen = FxHashSet::default();
        for a in db.atoms() {
            for t in a.terms.iter() {
                assert!(seen.insert(*t), "constants must be pairwise distinct");
            }
        }
    }

    #[test]
    fn tier_thresholds_cover_the_score_range() {
        assert_eq!(tier_of_score(0), Difficulty::Trivial);
        assert_eq!(tier_of_score(3), Difficulty::Easy);
        assert_eq!(tier_of_score(6), Difficulty::Medium);
        assert_eq!(tier_of_score(10), Difficulty::Hard);
        assert_eq!(tier_of_score(15), Difficulty::Hard);
    }
}
