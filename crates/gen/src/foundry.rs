//! The workload foundry: family enumeration × difficulty calibration ×
//! diversity filtering, with byte-deterministic output.
//!
//! One call to [`generate`] produces `count` rulesets of one
//! `(family, difficulty)` bucket from a master seed: candidate sub-seeds
//! are a pure function of `(family, difficulty, seed, k)`, each candidate
//! is generated with tier-appropriate knobs ([`crate::families`]),
//! measured ([`crate::difficulty`]), and kept only if its *measured* tier
//! matches the request and it survives the dedup/diversity filter
//! ([`crate::diversity`]). The loop is deterministic end to end, so the
//! same `(family, difficulty, seed, count)` always reproduces the same
//! bytes — the property the corpus drift gate (`soct gen --check-corpus`)
//! and `tests/foundry_props.rs` enforce.

use crate::difficulty::{calibrate, Difficulty, Signals};
use crate::diversity::{features, DiversityFilter, Features};
use crate::families::{generate_family, params_for, Family};
use rand::rngs::StdRng;
use rand::SeedableRng;
use soct_core::Verdict;
use soct_model::{fingerprint_ruleset, Fingerprint, Interner, Schema, Tgd};

/// One foundry request: a `(family, difficulty)` bucket of `count`
/// deduplicated rulesets derived from `seed`.
#[derive(Clone, Copy, Debug)]
pub struct FoundryConfig {
    /// The TGD family to enumerate.
    pub family: Family,
    /// The difficulty tier every returned ruleset must *measure* at.
    pub difficulty: Difficulty,
    /// Master seed; candidate sub-seeds derive from it.
    pub seed: u64,
    /// Number of rulesets to return.
    pub count: usize,
}

/// A generated, calibrated, accepted ruleset.
pub struct GeneratedRuleset {
    /// The family it was generated from.
    pub family: Family,
    /// The measured (= requested) difficulty tier.
    pub difficulty: Difficulty,
    /// The sub-seed that regenerates exactly this ruleset via
    /// [`generate_candidate`] — recorded in the corpus manifest so the
    /// drift gate can re-derive entries independently.
    pub subseed: u64,
    /// Canonical text (`soct_parser::write_tgds` output; parse→write is
    /// byte-stable on it).
    pub text: String,
    /// The schema the rules were generated over.
    pub schema: Schema,
    /// The rules themselves.
    pub tgds: Vec<Tgd>,
    /// Order/renaming-invariant ruleset fingerprint.
    pub fingerprint: Fingerprint,
    /// `check_termination` verdict on the critical instance.
    pub verdict: Verdict,
    /// The measured difficulty signals.
    pub signals: Signals,
    /// The structural feature vector used by the diversity filter.
    pub features: Features,
}

/// Candidates examined per requested ruleset before giving up. Generous:
/// acceptance requires the measured tier to match, and tier measurement
/// is intentionally independent of the generator's knobs.
const MAX_ATTEMPTS_PER_RULESET: usize = 600;

/// SplitMix64 step — derives statistically independent sub-seeds from the
/// master seed without sharing any RNG state between candidates.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The sub-seed of candidate `k` of a bucket: a pure function of the
/// request, so buckets never share RNG state and a bucket's k-th
/// candidate is the same no matter what was generated before it.
pub fn subseed(family: Family, difficulty: Difficulty, seed: u64, k: u64) -> u64 {
    let f = Family::ALL.iter().position(|&x| x == family).unwrap() as u64;
    let d = Difficulty::ALL
        .iter()
        .position(|&x| x == difficulty)
        .unwrap() as u64;
    mix(seed ^ mix(f.wrapping_mul(41) ^ d.wrapping_mul(1009) ^ k.wrapping_mul(0x5de3_44d0)))
}

/// Generates and measures the candidate identified by `subseed` — the
/// regeneration entry point used by the corpus drift gate. Everything
/// (knob jitter and ruleset content) derives from the one sub-seed.
pub fn generate_candidate(
    family: Family,
    difficulty: Difficulty,
    subseed: u64,
) -> GeneratedRuleset {
    let mut knob_rng = StdRng::seed_from_u64(mix(subseed ^ 0x6b0b_5eed));
    let params = params_for(difficulty, &mut knob_rng);
    let (schema, tgds) = generate_family(family, &params, subseed);
    let (measured, signals) = calibrate(&schema, &tgds);
    let feats = features(&schema, &tgds, &signals);
    let fingerprint = fingerprint_ruleset(&schema, &tgds);
    // Rules carry no constants, so an empty interner renders them fully.
    let text = soct_parser::write_tgds(&tgds, &schema, &Interner::new());
    GeneratedRuleset {
        family,
        difficulty: measured,
        subseed,
        text,
        schema,
        tgds,
        fingerprint,
        verdict: signals.verdict,
        signals,
        features: feats,
    }
}

/// Runs the foundry for one bucket. Deterministic in `cfg`; errors if the
/// family cannot fill the bucket within the attempt budget (a sign the
/// tier thresholds and the family's parameter ranges have drifted apart).
pub fn generate(cfg: &FoundryConfig) -> Result<Vec<GeneratedRuleset>, String> {
    let mut out = Vec::with_capacity(cfg.count);
    let mut filter = DiversityFilter::new();
    let budget = MAX_ATTEMPTS_PER_RULESET * cfg.count.max(1);
    for k in 0..budget as u64 {
        if out.len() == cfg.count {
            break;
        }
        let candidate = generate_candidate(
            cfg.family,
            cfg.difficulty,
            subseed(cfg.family, cfg.difficulty, cfg.seed, k),
        );
        if candidate.difficulty != cfg.difficulty {
            continue;
        }
        if !filter.admit(candidate.fingerprint.0, candidate.features) {
            continue;
        }
        out.push(candidate);
    }
    if out.len() < cfg.count {
        return Err(format!(
            "foundry exhausted {budget} candidates filling {}/{} of bucket {}/{} (seed {})",
            out.len(),
            cfg.count,
            cfg.family,
            cfg.difficulty,
            cfg.seed
        ));
    }
    Ok(out)
}

/// Renders a [`Verdict`] in the manifest's (and the service's) lowercase
/// wire form.
pub fn verdict_name(v: Verdict) -> &'static str {
    match v {
        Verdict::Finite => "finite",
        Verdict::Infinite => "infinite",
        Verdict::Unknown => "unknown",
    }
}

/// Inverse of [`verdict_name`].
pub fn parse_verdict(s: &str) -> Result<Verdict, String> {
    match s {
        "finite" => Ok(Verdict::Finite),
        "infinite" => Ok(Verdict::Infinite),
        "unknown" => Ok(Verdict::Unknown),
        other => Err(format!(
            "verdict must be finite|infinite|unknown, got `{other}`"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_generation_is_deterministic_and_calibrated() {
        let cfg = FoundryConfig {
            family: Family::Linear,
            difficulty: Difficulty::Easy,
            seed: 7,
            count: 3,
        };
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text, "byte-deterministic per (bucket, seed)");
            assert_eq!(x.fingerprint, y.fingerprint);
            assert_eq!(x.subseed, y.subseed);
            // Accepted = measured at the requested tier.
            let (tier, _) = calibrate(&x.schema, &x.tgds);
            assert_eq!(tier, Difficulty::Easy);
        }
    }

    #[test]
    fn bucket_entries_are_deduplicated() {
        let cfg = FoundryConfig {
            family: Family::Ontology,
            difficulty: Difficulty::Trivial,
            seed: 3,
            count: 5,
        };
        let entries = generate(&cfg).unwrap();
        let fps: soct_model::FxHashSet<u128> = entries.iter().map(|e| e.fingerprint.0).collect();
        assert_eq!(fps.len(), 5, "fingerprints must be pairwise distinct");
        let (min, _) = crate::diversity::feature_spread(
            &entries.iter().map(|e| e.features).collect::<Vec<_>>(),
        );
        assert!(min >= 1, "no two entries share a feature vector");
    }

    #[test]
    fn subseeds_do_not_collide_across_buckets() {
        let mut seen = soct_model::FxHashSet::default();
        for family in Family::ALL {
            for difficulty in Difficulty::ALL {
                for k in 0..8 {
                    assert!(seen.insert(subseed(family, difficulty, 42, k)));
                }
            }
        }
    }

    #[test]
    fn regeneration_from_subseed_matches_the_bucket_entry() {
        let cfg = FoundryConfig {
            family: Family::MultiHead,
            difficulty: Difficulty::Easy,
            seed: 11,
            count: 2,
        };
        for e in generate(&cfg).unwrap() {
            let again = generate_candidate(e.family, Difficulty::Easy, e.subseed);
            assert_eq!(again.text, e.text);
            assert_eq!(again.fingerprint, e.fingerprint);
            assert_eq!(again.difficulty, Difficulty::Easy);
            assert_eq!(again.verdict, e.verdict);
        }
    }
}
