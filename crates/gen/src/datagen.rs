//! The data generator (§6.1).
//!
//! Existing generators (TPC-H, DataFiller) cannot control the *shapes* of
//! the generated atoms, which is exactly what the dynamic-simplification
//! experiments need; this generator takes the paper's tuning tuple
//! `(preds, min, max, dsize, rsize)` and emits, per tuple, a uniformly
//! random shape whose blocks are filled with distinct domain values —
//! "a shape determines how many times the same value is repeated in a
//! tuple".
//!
//! Tuples are generated i.i.d., so every prefix view (`LimitView`) sees the
//! same shape distribution — the property the paper obtains by
//! lexicographically sorting `D★` (§8.1).

use crate::partition::PartitionSampler;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use soct_model::{Atom, ConstId, Instance, PredId, Schema, Term};
use soct_storage::StorageEngine;

/// The paper's data-generator tuning parameters, plus a seed.
#[derive(Clone, Copy, Debug)]
pub struct DataGenConfig {
    /// Number of predicates in the generated database.
    pub preds: usize,
    /// Minimum predicate arity.
    pub min_arity: usize,
    /// Maximum predicate arity (inclusive).
    pub max_arity: usize,
    /// `|dom(D)|`: number of distinct constant values.
    pub dsize: usize,
    /// Tuples per relation.
    pub rsize: usize,
    pub seed: u64,
}

impl DataGenConfig {
    /// The paper's `D★` call `(1000, 1, 5, 500K, 500K)`, scaled down by
    /// `scale` on `dsize`/`rsize` (scale = 1.0 reproduces the original).
    pub fn dstar(scale: f64) -> Self {
        let s = |v: usize| ((v as f64 * scale) as usize).max(1);
        DataGenConfig {
            preds: 1000,
            min_arity: 1,
            max_arity: 5,
            dsize: s(500_000),
            rsize: s(500_000),
            seed: 0x5eed_0da7,
        }
    }
}

/// A generated database: schema slice + storage engine.
pub struct GeneratedData {
    /// The predicates of the generated relations.
    pub preds: Vec<PredId>,
    pub engine: StorageEngine,
}

/// Creates `n` predicates `prefix{i}` with uniformly random arities in
/// `[min, max]`, added to `schema`.
pub fn make_predicates(
    schema: &mut Schema,
    prefix: &str,
    n: usize,
    min_arity: usize,
    max_arity: usize,
    rng: &mut StdRng,
) -> Vec<PredId> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let arity = rng.random_range(min_arity..=max_arity);
        let name = format!("{prefix}{i}");
        out.push(
            schema
                .add_predicate(&name, arity)
                .expect("generated predicate names are fresh"),
        );
    }
    out
}

/// Runs the generator, creating fresh predicates in `schema`.
pub fn generate_database(cfg: &DataGenConfig, schema: &mut Schema) -> GeneratedData {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let preds = make_predicates(
        schema,
        "d",
        cfg.preds,
        cfg.min_arity,
        cfg.max_arity,
        &mut rng,
    );
    let engine = fill_engine(schema, &preds, cfg.dsize, cfg.rsize, &mut rng);
    GeneratedData { preds, engine }
}

/// Fills an engine with `rsize` shape-random tuples per predicate.
pub fn fill_engine(
    schema: &Schema,
    preds: &[PredId],
    dsize: usize,
    rsize: usize,
    rng: &mut StdRng,
) -> StorageEngine {
    let sampler = PartitionSampler::new();
    let mut engine = StorageEngine::new();
    let mut row = [0u64; 32];
    let mut block_values = [0u64; 32];
    for &p in preds {
        let arity = schema.arity(p);
        engine.create_table(p, schema.name(p), arity);
        for _ in 0..rsize {
            let shape = sampler.sample(rng, arity);
            sample_row_with_shape(&shape, dsize, rng, &mut block_values, &mut row);
            engine.insert_packed(p, &row[..arity]);
        }
    }
    engine
}

/// Fills `row` with a tuple of the given shape: one distinct random domain
/// value per block ("filling the positions by randomly picking values from
/// the database domain … without repetition").
fn sample_row_with_shape(
    shape: &soct_model::Rgs,
    dsize: usize,
    rng: &mut StdRng,
    block_values: &mut [u64],
    row: &mut [u64],
) {
    let blocks = shape.block_count();
    debug_assert!(blocks <= dsize, "domain too small for distinct blocks");
    // Rejection-sample distinct values; blocks ≤ arity ≤ 16 ≪ dsize.
    for b in 0..blocks {
        loop {
            let v = Term::Const(ConstId(rng.random_range(0..dsize as u32))).pack();
            if !block_values[..b].contains(&v) {
                block_values[b] = v;
                break;
            }
        }
    }
    for (i, &id) in shape.ids().iter().enumerate() {
        row[i] = block_values[id as usize - 1];
    }
}

/// Small-scale variant returning a plain [`Instance`] (used by tests and
/// the quickstart example).
pub fn generate_instance(cfg: &DataGenConfig, schema: &mut Schema) -> (Vec<PredId>, Instance) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let preds = make_predicates(
        schema,
        "d",
        cfg.preds,
        cfg.min_arity,
        cfg.max_arity,
        &mut rng,
    );
    let sampler = PartitionSampler::new();
    let mut inst = Instance::new();
    let mut row = [0u64; 32];
    let mut blocks = [0u64; 32];
    for &p in &preds {
        let arity = schema.arity(p);
        for _ in 0..cfg.rsize {
            let shape = sampler.sample(&mut rng, arity);
            sample_row_with_shape(&shape, cfg.dsize, &mut rng, &mut blocks, &mut row);
            let terms: Vec<Term> = row[..arity]
                .iter()
                .map(|&v| Term::unpack(v).expect("packed by us"))
                .collect();
            inst.insert(Atom::new(schema, p, terms).expect("arity matches"));
        }
    }
    (preds, inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_storage::TupleSource;

    fn small_cfg() -> DataGenConfig {
        DataGenConfig {
            preds: 5,
            min_arity: 1,
            max_arity: 4,
            dsize: 50,
            rsize: 200,
            seed: 1,
        }
    }

    #[test]
    fn respects_the_tuning_parameters() {
        let mut schema = Schema::new();
        let data = generate_database(&small_cfg(), &mut schema);
        assert_eq!(data.preds.len(), 5);
        for &p in &data.preds {
            let a = schema.arity(p);
            assert!((1..=4).contains(&a));
            assert_eq!(data.engine.row_count(p), 200);
        }
        assert_eq!(data.engine.total_rows(), 1000);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut s1 = Schema::new();
        let mut s2 = Schema::new();
        let a = generate_database(&small_cfg(), &mut s1);
        let b = generate_database(&small_cfg(), &mut s2);
        for (&pa, &pb) in a.preds.iter().zip(&b.preds) {
            assert_eq!(s1.arity(pa), s2.arity(pb));
            let mut rows_a = Vec::new();
            a.engine.scan(pa, &mut |r| {
                rows_a.push(r.to_vec());
                true
            });
            let mut rows_b = Vec::new();
            b.engine.scan(pb, &mut |r| {
                rows_b.push(r.to_vec());
                true
            });
            assert_eq!(rows_a, rows_b);
        }
    }

    #[test]
    fn produces_a_variety_of_shapes() {
        // The whole point of the custom generator: arity-3+ relations must
        // exhibit more than one shape.
        let mut schema = Schema::new();
        let cfg = DataGenConfig {
            preds: 1,
            min_arity: 3,
            max_arity: 3,
            dsize: 10,
            rsize: 500,
            seed: 3,
        };
        let data = generate_database(&cfg, &mut schema);
        let rep = {
            struct Probe;
            let mut shapes = soct_model::FxHashSet::default();
            data.engine.scan(data.preds[0], &mut |row| {
                shapes.insert(soct_model::Rgs::of_row(row));
                true
            });
            let _ = Probe;
            shapes
        };
        assert!(rep.len() >= 3, "only {} shapes", rep.len());
    }

    #[test]
    fn shape_blocks_hold_distinct_values() {
        let mut schema = Schema::new();
        let cfg = DataGenConfig {
            preds: 1,
            min_arity: 4,
            max_arity: 4,
            dsize: 6, // small domain stresses the rejection loop
            rsize: 300,
            seed: 9,
        };
        let data = generate_database(&cfg, &mut schema);
        data.engine.scan(data.preds[0], &mut |row| {
            let rgs = soct_model::Rgs::of_row(row);
            // Distinct blocks must hold distinct values (the shape *is* the
            // equality pattern, nothing coarser).
            let reps = rgs.block_representatives();
            for i in 0..reps.len() {
                for j in (i + 1)..reps.len() {
                    assert_ne!(row[reps[i]], row[reps[j]]);
                }
            }
            true
        });
    }

    #[test]
    fn instance_variant_matches_config() {
        let mut schema = Schema::new();
        let (preds, inst) = generate_instance(&small_cfg(), &mut schema);
        assert_eq!(preds.len(), 5);
        assert!(inst.is_database());
        // Set semantics deduplicates collisions (an arity-1 relation over a
        // 50-value domain holds at most 50 distinct atoms), hence ≤.
        assert!(inst.len() <= 1000);
        assert!(inst.len() > 200);
    }
}
