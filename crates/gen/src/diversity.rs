//! Dedup and diversity metrics for the scenario foundry.
//!
//! Two layers keep a corpus bucket from collapsing to near-duplicates:
//!
//! 1. **Exact dedup** on the order/renaming-invariant ruleset fingerprint
//!    ([`soct_model::fingerprint_ruleset`]): two candidates that differ
//!    only by rule order or variable names are the *same* workload.
//! 2. **Structural diversity** on a feature vector of bucketed counts
//!    (rules, predicates, arity histogram, head widths, body widths,
//!    existential positions, special SCCs, chase rounds): a candidate
//!    whose features are identical to an already-accepted one is rejected
//!    even if its fingerprint is fresh, because it stresses the checkers
//!    in exactly the same way.
//!
//! A per-bucket feature histogram ([`feature_spread`]) quantifies the
//! spread, so tests can assert a bucket covers more than one structural
//! point.

use crate::difficulty::Signals;
use soct_model::{FxHashSet, Schema, Tgd};

/// Number of slots in a [`Features`] vector.
pub const FEATURE_DIMS: usize = 12;

/// A structural feature vector. Equality is the "near-duplicate" test:
/// buckets are coarse enough that cosmetically different candidates
/// collide, and fine enough that structurally distinct ones do not.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Features(pub [u16; FEATURE_DIMS]);

impl Features {
    /// L1 distance between two feature vectors.
    pub fn l1(&self, other: &Features) -> u32 {
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(&a, &b)| u32::from(a.abs_diff(b)))
            .sum()
    }
}

/// Extracts the feature vector of a ruleset from the artefact plus its
/// measured [`Signals`].
pub fn features(schema: &Schema, tgds: &[Tgd], signals: &Signals) -> Features {
    // Arity histogram over the ruleset's predicates: 1, 2, 3, 4–5, 6+.
    let mut arity_hist = [0u16; 5];
    for p in soct_model::tgd::predicates_of(tgds) {
        let slot = match schema.arity(p) {
            0..=1 => 0,
            2 => 1,
            3 => 2,
            4..=5 => 3,
            _ => 4,
        };
        arity_hist[slot] += 1;
    }
    let multi_head = tgds.iter().filter(|t| t.head().len() > 1).count();
    let multi_body = tgds.iter().filter(|t| t.body().len() > 1).count();
    let existentials: usize = tgds.iter().map(|t| t.existential().len()).sum();
    let sat = |v: usize| u16::try_from(v).unwrap_or(u16::MAX);
    Features([
        sat(signals.n_rules),
        sat(signals.n_preds),
        arity_hist[0],
        arity_hist[1],
        arity_hist[2],
        arity_hist[3],
        arity_hist[4],
        sat(multi_head),
        sat(multi_body),
        sat(existentials / 4), // bucketed: ±3 existentials ≈ same workload
        sat(signals.special_sccs),
        sat(signals.chase_rounds / 3), // bucketed chase depth
    ])
}

/// Streaming dedup/diversity filter for one corpus bucket.
#[derive(Default, Debug)]
pub struct DiversityFilter {
    fingerprints: FxHashSet<u128>,
    accepted: Vec<Features>,
}

impl DiversityFilter {
    /// Empty filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits a candidate iff its fingerprint is new *and* its feature
    /// vector differs from every accepted one. Admitted candidates are
    /// recorded.
    pub fn admit(&mut self, fingerprint: u128, feat: Features) -> bool {
        if !self.fingerprints.insert(fingerprint) {
            return false;
        }
        if self.accepted.contains(&feat) {
            return false;
        }
        self.accepted.push(feat);
        true
    }

    /// Number of candidates admitted so far.
    pub fn len(&self) -> usize {
        self.accepted.len()
    }

    /// True when nothing has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.accepted.is_empty()
    }

    /// The feature vectors admitted so far, in admission order.
    pub fn accepted(&self) -> &[Features] {
        &self.accepted
    }
}

/// Diversity summary of a set of feature vectors: minimum and mean
/// pairwise L1 distance. A bucket of near-duplicates has `min == 0`;
/// the foundry's filter guarantees `min >= 1`.
pub fn feature_spread(feats: &[Features]) -> (u32, f64) {
    let mut min = u32::MAX;
    let mut sum = 0u64;
    let mut pairs = 0u64;
    for i in 0..feats.len() {
        for j in (i + 1)..feats.len() {
            let d = feats[i].l1(&feats[j]);
            min = min.min(d);
            sum += u64::from(d);
            pairs += 1;
        }
    }
    if pairs == 0 {
        (0, 0.0)
    } else {
        (min, sum as f64 / pairs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(v: &[u16]) -> Features {
        let mut a = [0u16; FEATURE_DIMS];
        a[..v.len()].copy_from_slice(v);
        Features(a)
    }

    #[test]
    fn duplicate_fingerprints_are_rejected() {
        let mut f = DiversityFilter::new();
        assert!(f.admit(1, feat(&[1])));
        assert!(!f.admit(1, feat(&[2])), "same fingerprint must be rejected");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn identical_features_are_rejected_even_with_fresh_fingerprints() {
        let mut f = DiversityFilter::new();
        assert!(f.admit(1, feat(&[3, 4])));
        assert!(!f.admit(2, feat(&[3, 4])));
        assert!(f.admit(3, feat(&[3, 5])));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn spread_of_admitted_features_is_positive() {
        let mut f = DiversityFilter::new();
        for i in 0..5u16 {
            f.admit(u128::from(i) + 10, feat(&[i, 2 * i]));
        }
        let (min, mean) = feature_spread(f.accepted());
        assert!(min >= 1, "filter guarantees pairwise distance >= 1");
        assert!(mean >= 1.0);
    }

    #[test]
    fn l1_distance_is_symmetric_and_zero_on_self() {
        let a = feat(&[1, 2, 3]);
        let b = feat(&[4, 0, 3]);
        assert_eq!(a.l1(&b), b.l1(&a));
        assert_eq!(a.l1(&b), 3 + 2);
        assert_eq!(a.l1(&a), 0);
    }
}
