//! Uniform random set partitions.
//!
//! The data generator "randomly selects a shape" per tuple (§6.1) and the
//! TGD generator "randomly chooses a shape for the body-atom" (§6.2); since
//! shapes of arity n are exactly the set partitions of `[n]`, we sample
//! partitions uniformly. The sampler uses the standard conditional-count
//! method: with `D(n, k)` = number of ways to complete a partition that has
//! `k` open blocks and `n` elements left (`D(0,·) = 1`,
//! `D(n,k) = k·D(n−1,k) + D(n−1,k+1)`), element placement probabilities
//! follow the counts exactly, so every partition is equally likely.

use rand::{Rng, RngExt};
use soct_model::Rgs;

/// Maximum supported arity for uniform shape sampling.
pub const MAX_ARITY: usize = 16;

/// Precomputed `D(n, k)` table for uniform partition sampling.
pub struct PartitionSampler {
    /// `d[n][k]`, n ∈ 0..=MAX_ARITY, k ∈ 0..=MAX_ARITY.
    d: Vec<Vec<u128>>,
}

impl Default for PartitionSampler {
    fn default() -> Self {
        Self::new()
    }
}

impl PartitionSampler {
    /// Builds the count table.
    pub fn new() -> Self {
        let n_max = MAX_ARITY;
        let mut d = vec![vec![0u128; n_max + 2]; n_max + 1];
        d[0].fill(1);
        for n in 1..=n_max {
            for k in (0..=n_max).rev() {
                d[n][k] = (k as u128) * d[n - 1][k] + d[n - 1][k + 1];
            }
        }
        PartitionSampler { d }
    }

    /// Number of partitions of `[n]` (the Bell number), from the table.
    pub fn count(&self, n: usize) -> u128 {
        assert!(n <= MAX_ARITY);
        self.d[n][0]
    }

    /// Samples a uniformly random partition of `[n]` as an RGS.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Rgs {
        assert!(n <= MAX_ARITY, "arity beyond sampler table");
        let mut ids = Vec::with_capacity(n);
        let mut k = 0usize; // open blocks
        for i in 0..n {
            let remaining = n - i - 1;
            let total = self.d[remaining + 1][k];
            // Choose among k existing blocks (weight D(remaining, k) each)
            // and one new block (weight D(remaining, k+1)).
            let mut ticket = rng.random_range(0..total);
            let existing_w = self.d[remaining][k];
            let mut placed = false;
            for b in 1..=k {
                if ticket < existing_w {
                    ids.push(b as u8);
                    placed = true;
                    break;
                }
                ticket -= existing_w;
            }
            if !placed {
                k += 1;
                ids.push(k as u8);
            }
        }
        Rgs::canonicalize(&ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use soct_model::bell;
    use std::collections::HashMap;

    #[test]
    fn counts_match_bell_numbers() {
        let s = PartitionSampler::new();
        for n in 0..=10 {
            assert_eq!(s.count(n), bell(n), "n = {n}");
        }
    }

    #[test]
    fn samples_are_valid_rgs() {
        let s = PartitionSampler::new();
        let mut rng = StdRng::seed_from_u64(7);
        for n in 1..=8 {
            for _ in 0..50 {
                let r = s.sample(&mut rng, n);
                assert_eq!(r.len(), n);
                // RGS validity: first id is 1 and ids grow by at most 1.
                let ids = r.ids();
                assert_eq!(ids[0], 1);
                let mut max = 1;
                for &v in ids.iter() {
                    assert!(v <= max + 1 && v >= 1);
                    max = max.max(v);
                }
            }
        }
    }

    #[test]
    fn distribution_is_uniform_for_n3() {
        // Bell(3) = 5 partitions; a chi-square-ish sanity band around the
        // expected 1/5 frequency.
        let s = PartitionSampler::new();
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 25_000;
        let mut freq: HashMap<Vec<u8>, usize> = HashMap::new();
        for _ in 0..trials {
            let r = s.sample(&mut rng, 3);
            *freq.entry(r.ids().to_vec()).or_insert(0) += 1;
        }
        assert_eq!(freq.len(), 5);
        let expected = trials as f64 / 5.0;
        for (ids, count) in freq {
            let dev = (count as f64 - expected).abs() / expected;
            assert!(dev < 0.08, "partition {ids:?} off by {dev:.3}");
        }
    }

    #[test]
    fn n1_is_deterministic() {
        let s = PartitionSampler::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.sample(&mut rng, 1).ids(), &[1]);
    }
}
