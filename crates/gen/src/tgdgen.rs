//! The TGD generator (§6.2).
//!
//! Existing dependency generators (e.g. iBench) cannot control the shape of
//! the body atoms; this one can. It takes the paper's tuning tuple
//! `(ssize, min, max, tsize, tclass)` and generates single-head TGDs:
//!
//! - **simple-linear**: distinct fresh variables fill the body atom; each
//!   head position becomes an existential variable with probability 10%,
//!   otherwise a uniformly random body variable;
//! - **linear**: additionally, a uniformly random shape is drawn for the
//!   body atom, and the body variables follow it (repetitions allowed).

use crate::partition::PartitionSampler;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use soct_model::{Atom, PredId, Schema, Term, Tgd, TgdClass, VarId};

/// The paper's TGD-generator tuning parameters, plus knobs it fixes
/// implicitly (existential probability 10%).
#[derive(Clone, Copy, Debug)]
pub struct TgdGenConfig {
    /// `|sch(Σ)|`: number of predicates drawn from the pool.
    pub ssize: usize,
    /// Minimum predicate arity considered.
    pub min_arity: usize,
    /// Maximum predicate arity considered (inclusive).
    pub max_arity: usize,
    /// `|Σ|`: number of TGDs.
    pub tsize: usize,
    /// SL or L (General is not generated; the paper studies linear rules).
    pub tclass: TgdClass,
    /// Probability that a head position is existential (paper: 10%).
    pub existential_prob: f64,
    pub seed: u64,
}

impl TgdGenConfig {
    /// Paper defaults with the 10% existential probability.
    pub fn new(ssize: usize, tsize: usize, tclass: TgdClass, seed: u64) -> Self {
        TgdGenConfig {
            ssize,
            min_arity: 1,
            max_arity: 5,
            tsize,
            tclass,
            existential_prob: 0.1,
            seed,
        }
    }
}

/// Generates a set of TGDs over a subset of the predicate `pool`
/// (mirroring §6.2: "first chooses a subset S′ of S such that |S′| = ssize
/// and its predicates have arity between min and max").
pub fn generate_tgds(cfg: &TgdGenConfig, schema: &Schema, pool: &[PredId]) -> Vec<Tgd> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let eligible: Vec<PredId> = pool
        .iter()
        .copied()
        .filter(|&p| (cfg.min_arity..=cfg.max_arity).contains(&schema.arity(p)))
        .collect();
    assert!(
        eligible.len() >= cfg.ssize,
        "pool has {} eligible predicates, need {}",
        eligible.len(),
        cfg.ssize
    );
    // Partial Fisher–Yates: pick ssize distinct predicates.
    let mut pick = eligible;
    for i in 0..cfg.ssize {
        let j = rng.random_range(i..pick.len());
        pick.swap(i, j);
    }
    pick.truncate(cfg.ssize);
    generate_tgds_over(cfg, schema, &pick, &mut rng)
}

/// Generates TGDs using *all* the given predicates (the subset having been
/// chosen by the caller).
pub fn generate_tgds_over(
    cfg: &TgdGenConfig,
    schema: &Schema,
    preds: &[PredId],
    rng: &mut StdRng,
) -> Vec<Tgd> {
    let sampler = PartitionSampler::new();
    let mut out = Vec::with_capacity(cfg.tsize);
    while out.len() < cfg.tsize {
        // "randomly selects two predicates … with repetition".
        let body_pred = preds[rng.random_range(0..preds.len())];
        let head_pred = preds[rng.random_range(0..preds.len())];
        let body_arity = schema.arity(body_pred);
        let head_arity = schema.arity(head_pred);

        // Body variables: distinct for SL; shape-guided for L.
        let body_terms: Vec<Term> = match cfg.tclass {
            TgdClass::SimpleLinear => (0..body_arity as u32)
                .map(|i| Term::Var(VarId(i)))
                .collect(),
            _ => {
                let shape = sampler.sample(rng, body_arity);
                shape
                    .ids()
                    .iter()
                    .map(|&id| Term::Var(VarId(id as u32 - 1)))
                    .collect()
            }
        };
        let distinct_body: Vec<VarId> = {
            let mut v = Vec::new();
            for t in &body_terms {
                let var = t.as_var().unwrap();
                if !v.contains(&var) {
                    v.push(var);
                }
            }
            v
        };

        // Head positions: existential with probability p, else a random
        // body variable. Existential variable ids start above the body's.
        let mut next_exist = body_arity as u32;
        let head_terms: Vec<Term> = (0..head_arity)
            .map(|_| {
                if rng.random_bool(cfg.existential_prob) {
                    let v = VarId(next_exist);
                    next_exist += 1;
                    Term::Var(v)
                } else {
                    Term::Var(distinct_body[rng.random_range(0..distinct_body.len())])
                }
            })
            .collect();

        let body = Atom::new(schema, body_pred, body_terms).expect("arity by construction");
        let head = Atom::new(schema, head_pred, head_terms).expect("arity by construction");
        out.push(Tgd::new(vec![body], vec![head]).expect("generated TGD is valid"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::make_predicates;

    fn pool(n: usize, min: usize, max: usize) -> (Schema, Vec<PredId>) {
        let mut schema = Schema::new();
        let mut rng = StdRng::seed_from_u64(99);
        let preds = make_predicates(&mut schema, "p", n, min, max, &mut rng);
        (schema, preds)
    }

    #[test]
    fn generates_the_requested_count_and_class() {
        let (schema, preds) = pool(50, 1, 5);
        for tclass in [TgdClass::SimpleLinear, TgdClass::Linear] {
            let cfg = TgdGenConfig::new(20, 300, tclass, 5);
            let tgds = generate_tgds(&cfg, &schema, &preds);
            assert_eq!(tgds.len(), 300);
            for t in &tgds {
                assert!(t.is_linear());
                assert_eq!(t.head().len(), 1, "single-head (§6.2)");
                if tclass == TgdClass::SimpleLinear {
                    assert!(t.is_simple_linear());
                }
            }
        }
    }

    #[test]
    fn linear_mode_produces_repeated_body_variables() {
        let (schema, preds) = pool(20, 3, 5);
        let cfg = TgdGenConfig::new(10, 500, TgdClass::Linear, 6);
        let tgds = generate_tgds(&cfg, &schema, &preds);
        let with_repeats = tgds
            .iter()
            .filter(|t| t.body()[0].has_repeated_var())
            .count();
        // Bell-uniform shapes at arity ≥ 3 repeat variables most of the
        // time (only 1 of Bell(3) = 5 partitions is the identity... no:
        // identity is 1 of 5); expect a solid fraction either way.
        assert!(with_repeats > 100, "only {with_repeats} of 500 repeat");
    }

    #[test]
    fn existential_rate_is_roughly_ten_percent() {
        let (schema, preds) = pool(30, 4, 4);
        let cfg = TgdGenConfig::new(10, 2000, TgdClass::SimpleLinear, 11);
        let tgds = generate_tgds(&cfg, &schema, &preds);
        let positions: usize = tgds.iter().map(|t| t.head()[0].arity()).sum();
        let existential_positions: usize = tgds
            .iter()
            .map(|t| {
                t.head()[0]
                    .terms
                    .iter()
                    .filter(|term| t.existential().contains(&term.as_var().unwrap()))
                    .count()
            })
            .sum();
        let rate = existential_positions as f64 / positions as f64;
        assert!((0.07..0.13).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn respects_the_arity_window() {
        let (schema, preds) = pool(60, 1, 8);
        let cfg = TgdGenConfig {
            ssize: 15,
            min_arity: 2,
            max_arity: 4,
            tsize: 100,
            tclass: TgdClass::Linear,
            existential_prob: 0.1,
            seed: 8,
        };
        let tgds = generate_tgds(&cfg, &schema, &preds);
        for t in &tgds {
            for a in t.body().iter().chain(t.head()) {
                assert!((2..=4).contains(&a.arity()));
            }
        }
        // At most ssize distinct predicates used.
        let used = soct_model::tgd::predicates_of(&tgds);
        assert!(used.len() <= 15);
    }

    #[test]
    fn deterministic_under_seed() {
        let (schema, preds) = pool(40, 1, 5);
        let cfg = TgdGenConfig::new(20, 100, TgdClass::Linear, 77);
        let a = generate_tgds(&cfg, &schema, &preds);
        let b = generate_tgds(&cfg, &schema, &preds);
        assert_eq!(a, b);
    }
}
