//! # soct-gen
//!
//! The experimental infrastructure of §6: a shape-controlled data generator,
//! a shape-controlled TGD generator, the predicate/TGD/combined profiles of
//! §7.1 and the `D★`-plus-views design of §8.1, and synthetic stand-ins for
//! the §9 validation scenarios (Deep, LUBM, iBench) matching their published
//! Table 1 statistics.

pub mod datagen;
pub mod partition;
pub mod profiles;
pub mod scenarios;
pub mod tgdgen;

pub use datagen::{generate_database, generate_instance, DataGenConfig, GeneratedData};
pub use partition::PartitionSampler;
pub use profiles::{combined_profiles, CombinedProfile, Scale};
pub use scenarios::{deep_like, ibench_like, lubm_like, IBenchVariant, Scenario, ScenarioStats};
pub use tgdgen::{generate_tgds, TgdGenConfig};
