//! # soct-gen
//!
//! The experimental infrastructure of §6: a shape-controlled data generator,
//! a shape-controlled TGD generator, the predicate/TGD/combined profiles of
//! §7.1 and the `D★`-plus-views design of §8.1, and synthetic stand-ins for
//! the §9 validation scenarios (Deep, LUBM, iBench) matching their published
//! Table 1 statistics.
//!
//! On top of those sits the **scenario foundry**: parameterized TGD
//! families ([`families`]), a measured-signal difficulty calibrator
//! ([`difficulty`]), a dedup/diversity filter ([`diversity`]), the
//! orchestration loop ([`foundry`]), and the checked-in corpus layer
//! ([`corpus`]) that tests and benches load.

pub mod corpus;
pub mod datagen;
pub mod difficulty;
pub mod diversity;
pub mod families;
pub mod foundry;
pub mod partition;
pub mod profiles;
pub mod scenarios;
pub mod tgdgen;

pub use corpus::{
    build_corpus, check_corpus, load_manifest, repo_corpus_dir, write_corpus, CorpusEntry,
    BUCKET_SIZE, CORPUS_SEED, MANIFEST,
};
pub use datagen::{generate_database, generate_instance, DataGenConfig, GeneratedData};
pub use difficulty::{calibrate, measure, Difficulty, Signals};
pub use diversity::{feature_spread, features, DiversityFilter, Features};
pub use families::{generate_family, Family, FamilyParams};
pub use foundry::{
    generate_candidate, parse_verdict, verdict_name, FoundryConfig, GeneratedRuleset,
};
pub use partition::PartitionSampler;
pub use profiles::{combined_profiles, CombinedProfile, Scale};
pub use scenarios::{deep_like, ibench_like, lubm_like, IBenchVariant, Scenario, ScenarioStats};
pub use tgdgen::{generate_tgds, TgdGenConfig};
