//! The checked-in corpus: on-disk layout, manifest format, and the drift
//! gate.
//!
//! A corpus directory holds one `.dlog` file per ruleset plus a
//! `MANIFEST.tsv` with one row per file:
//!
//! ```text
//! file<TAB>family<TAB>difficulty<TAB>subseed<TAB>fingerprint<TAB>verdict
//! ```
//!
//! `subseed` is the foundry sub-seed that regenerates exactly that file
//! ([`crate::foundry::generate_candidate`]), `fingerprint` the 32-hex-digit
//! ruleset fingerprint, `verdict` the expected `check_termination` result in
//! lowercase wire form. Tests and benches *load* the corpus (they never
//! regenerate it), so recorded verdicts stay meaningful; the CI drift gate
//! ([`check_corpus`]) regenerates every entry from its sub-seed and fails
//! loudly when generator changes would silently alter checked-in files.

use crate::difficulty::Difficulty;
use crate::families::Family;
use crate::foundry::{
    generate, generate_candidate, parse_verdict, verdict_name, FoundryConfig, GeneratedRuleset,
};
use soct_core::Verdict;
use std::path::{Path, PathBuf};

/// Manifest file name inside a corpus directory.
pub const MANIFEST: &str = "MANIFEST.tsv";
/// Rulesets per `(family, difficulty)` bucket in the standard corpus.
pub const BUCKET_SIZE: usize = 5;
/// Master seed of the standard checked-in corpus.
pub const CORPUS_SEED: u64 = 20230801;

/// One manifest row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusEntry {
    /// File name relative to the corpus directory, e.g. `linear_easy_03.dlog`.
    pub file: String,
    /// Generating family.
    pub family: Family,
    /// Measured difficulty tier.
    pub difficulty: Difficulty,
    /// Foundry sub-seed that regenerates the file byte-identically.
    pub subseed: u64,
    /// Ruleset fingerprint (order/renaming-invariant).
    pub fingerprint: u128,
    /// Expected `check_termination` verdict on the critical instance.
    pub verdict: Verdict,
}

/// The checked-in corpus directory of this repository
/// (`<workspace>/corpus`), resolved from the gen crate's source location
/// so tests and benches find it regardless of the invocation directory.
pub fn repo_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

fn manifest_line(e: &CorpusEntry) -> String {
    format!(
        "{}\t{}\t{}\t{}\t{:032x}\t{}",
        e.file,
        e.family,
        e.difficulty,
        e.subseed,
        e.fingerprint,
        verdict_name(e.verdict)
    )
}

fn parse_manifest_line(line: &str, lineno: usize) -> Result<CorpusEntry, String> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() != 6 {
        return Err(format!(
            "manifest line {lineno}: expected 6 fields, got {}",
            fields.len()
        ));
    }
    let err = |what: &str, detail: String| format!("manifest line {lineno}: {what}: {detail}");
    Ok(CorpusEntry {
        file: fields[0].to_string(),
        family: fields[1].parse().map_err(|e| err("family", e))?,
        difficulty: fields[2].parse().map_err(|e| err("difficulty", e))?,
        subseed: fields[3]
            .parse()
            .map_err(|e: std::num::ParseIntError| err("subseed", e.to_string()))?,
        fingerprint: u128::from_str_radix(fields[4], 16)
            .map_err(|e| err("fingerprint", e.to_string()))?,
        verdict: parse_verdict(fields[5]).map_err(|e| err("verdict", e))?,
    })
}

/// Serialises manifest rows (header comment + one line per entry, sorted
/// input expected).
pub fn render_manifest(entries: &[CorpusEntry]) -> String {
    let mut out = String::from("# file\tfamily\tdifficulty\tsubseed\tfingerprint\tverdict\n");
    for e in entries {
        out.push_str(&manifest_line(e));
        out.push('\n');
    }
    out
}

/// Parses a manifest, skipping `#` comment lines and blank lines.
pub fn parse_manifest(text: &str) -> Result<Vec<CorpusEntry>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_manifest_line(line, i + 1)?);
    }
    Ok(out)
}

/// Loads the manifest of a corpus directory.
pub fn load_manifest(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let path = dir.join(MANIFEST);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_manifest(&text)
}

/// The file name of the `i`-th entry of a bucket.
pub fn entry_file_name(family: Family, difficulty: Difficulty, index: usize) -> String {
    format!("{family}_{difficulty}_{index:02}.dlog")
}

/// Generates the standard corpus in memory: every family × every tier,
/// [`BUCKET_SIZE`] deduplicated rulesets per bucket, derived from `seed`.
/// Returns `(entries, rulesets)` in manifest order.
pub fn build_corpus(seed: u64) -> Result<(Vec<CorpusEntry>, Vec<GeneratedRuleset>), String> {
    let mut entries = Vec::new();
    let mut rulesets = Vec::new();
    for family in Family::ALL {
        for difficulty in Difficulty::ALL {
            let bucket = generate(&FoundryConfig {
                family,
                difficulty,
                seed,
                count: BUCKET_SIZE,
            })?;
            for (i, r) in bucket.into_iter().enumerate() {
                entries.push(CorpusEntry {
                    file: entry_file_name(family, difficulty, i),
                    family,
                    difficulty,
                    subseed: r.subseed,
                    fingerprint: r.fingerprint.0,
                    verdict: r.verdict,
                });
                rulesets.push(r);
            }
        }
    }
    Ok((entries, rulesets))
}

/// Writes a freshly generated corpus (ruleset files + manifest) into `dir`,
/// creating it if needed. Returns the number of ruleset files written.
pub fn write_corpus(dir: &Path, seed: u64) -> Result<usize, String> {
    let (entries, rulesets) = build_corpus(seed)?;
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    for (e, r) in entries.iter().zip(&rulesets) {
        let path = dir.join(&e.file);
        std::fs::write(&path, &r.text)
            .map_err(|err| format!("cannot write {}: {err}", path.display()))?;
    }
    let manifest = dir.join(MANIFEST);
    std::fs::write(&manifest, render_manifest(&entries))
        .map_err(|e| format!("cannot write {}: {e}", manifest.display()))?;
    Ok(entries.len())
}

/// The CI drift gate: regenerates every manifest entry from its recorded
/// sub-seed and compares bytes, fingerprint, and verdict against the
/// checked-in state. Returns the list of drift descriptions (empty = clean).
pub fn check_corpus(dir: &Path) -> Result<Vec<String>, String> {
    let entries = load_manifest(dir)?;
    if entries.is_empty() {
        return Err(format!("{} has an empty manifest", dir.display()));
    }
    let mut drift = Vec::new();
    for e in &entries {
        let path = dir.join(&e.file);
        let on_disk = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(err) => {
                drift.push(format!("{}: unreadable: {err}", e.file));
                continue;
            }
        };
        let regen = generate_candidate(e.family, e.difficulty, e.subseed);
        if regen.text != on_disk {
            drift.push(format!(
                "{}: bytes differ from regeneration (subseed {})",
                e.file, e.subseed
            ));
        }
        if regen.fingerprint.0 != e.fingerprint {
            drift.push(format!(
                "{}: fingerprint {:032x} != manifest {:032x}",
                e.file, regen.fingerprint.0, e.fingerprint
            ));
        }
        if regen.verdict != e.verdict {
            drift.push(format!(
                "{}: verdict {} != manifest {}",
                e.file,
                verdict_name(regen.verdict),
                verdict_name(e.verdict)
            ));
        }
        if regen.difficulty != e.difficulty {
            drift.push(format!(
                "{}: measured tier {} != manifest {}",
                e.file, regen.difficulty, e.difficulty
            ));
        }
    }
    Ok(drift)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips() {
        let entries = vec![
            CorpusEntry {
                file: "linear_easy_00.dlog".into(),
                family: Family::Linear,
                difficulty: Difficulty::Easy,
                subseed: 123456789,
                fingerprint: 0xdead_beef_dead_beef_dead_beef_dead_beef,
                verdict: Verdict::Finite,
            },
            CorpusEntry {
                file: "ontology_hard_04.dlog".into(),
                family: Family::Ontology,
                difficulty: Difficulty::Hard,
                subseed: u64::MAX,
                fingerprint: 1,
                verdict: Verdict::Infinite,
            },
        ];
        let text = render_manifest(&entries);
        assert_eq!(parse_manifest(&text).unwrap(), entries);
    }

    #[test]
    fn malformed_manifest_lines_are_rejected_with_line_numbers() {
        assert!(parse_manifest("a\tb\n").unwrap_err().contains("line 1"));
        let bad_family = "x.dlog\tnope\teasy\t1\t0\tfinite\n";
        assert!(parse_manifest(bad_family).unwrap_err().contains("family"));
        let bad_verdict = "x.dlog\tlinear\teasy\t1\t0\tmaybe\n";
        assert!(parse_manifest(bad_verdict).unwrap_err().contains("verdict"));
    }

    #[test]
    fn entry_file_names_are_stable() {
        assert_eq!(
            entry_file_name(Family::MultiHead, Difficulty::Medium, 3),
            "multi-head_medium_03.dlog"
        );
    }

    #[test]
    fn written_corpus_passes_its_own_drift_gate() {
        let dir = std::env::temp_dir().join(format!("soct_corpus_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A tiny one-bucket corpus keeps this test fast; write the files
        // and manifest by hand through the same primitives write_corpus uses.
        let bucket = generate(&FoundryConfig {
            family: Family::Linear,
            difficulty: Difficulty::Trivial,
            seed: 5,
            count: 2,
        })
        .unwrap();
        std::fs::create_dir_all(&dir).unwrap();
        let mut entries = Vec::new();
        for (i, r) in bucket.iter().enumerate() {
            let file = entry_file_name(r.family, r.difficulty, i);
            std::fs::write(dir.join(&file), &r.text).unwrap();
            entries.push(CorpusEntry {
                file,
                family: r.family,
                difficulty: r.difficulty,
                subseed: r.subseed,
                fingerprint: r.fingerprint.0,
                verdict: r.verdict,
            });
        }
        std::fs::write(dir.join(MANIFEST), render_manifest(&entries)).unwrap();
        assert_eq!(check_corpus(&dir).unwrap(), Vec::<String>::new());

        // Tampering with a file is drift.
        std::fs::write(dir.join(&entries[0].file), "p(X) -> q(X).\n").unwrap();
        let drift = check_corpus(&dir).unwrap();
        assert!(drift.iter().any(|d| d.contains("bytes differ")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
