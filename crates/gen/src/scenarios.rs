//! Synthetic stand-ins for the §9 validation scenarios.
//!
//! The original artefacts (Deep \[8\], LUBM \[16\], iBench STB-128/ONT-256 \[5\])
//! are not redistributable here, so each family is *re-synthesised to its
//! published Table 1 statistics* — number of predicates, arity range,
//! number of atoms, number of database shapes, number of rules — which are
//! exactly the quantities the runtime of `IsChaseFinite[L]` depends on
//! (§8's analysis: `t-shapes` on database size/shape count,
//! db-independent time on rule count and schema size). See DESIGN.md
//! ("Substitutions") for the argument in full.
//!
//! Structural properties preserved per family:
//! - **Deep-like**: ~1300 predicates of arity 4, layered (weakly-acyclic)
//!   simple-linear rules, and a database of 1000 *singleton relations* —
//!   the property §9.2 credits for in-memory FindShapes winning.
//! - **LUBM-like**: a small EL-style vocabulary (unary classes, binary
//!   properties), 137 hierarchy/domain/range/existential axioms, few
//!   shapes, very many atoms — in-database FindShapes wins.
//! - **iBench-like**: many predicates of high arity (up to 10/11) with
//!   moderate shape counts — stresses the Apriori lattice walk.

use crate::datagen::make_predicates;
use crate::partition::PartitionSampler;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use soct_model::{Atom, ConstId, PredId, Rgs, Schema, Term, Tgd, VarId};
use soct_storage::{StorageEngine, TupleSource};

/// A ready-to-run validation scenario.
pub struct Scenario {
    pub name: String,
    pub schema: Schema,
    pub tgds: Vec<Tgd>,
    pub engine: StorageEngine,
    pub stats: ScenarioStats,
}

/// The Table 1 statistics, measured on the generated artefacts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioStats {
    pub n_pred: usize,
    pub arity_min: usize,
    pub arity_max: usize,
    pub n_atoms: u64,
    pub n_shapes: usize,
    pub n_rules: usize,
}

/// Counts the distinct shapes in an engine by scanning (used to report
/// `n-shapes`; the checkers recompute it through `FindShapes`).
pub fn count_shapes(engine: &StorageEngine) -> usize {
    let mut shapes: soct_model::FxHashSet<(PredId, Rgs)> = soct_model::FxHashSet::default();
    for pred in engine.non_empty_predicates() {
        engine.scan(pred, &mut |row| {
            shapes.insert((pred, Rgs::of_row(row)));
            true
        });
    }
    shapes.len()
}

fn measure(name: &str, schema: &Schema, tgds: &[Tgd], engine: &StorageEngine) -> ScenarioStats {
    let arities: Vec<usize> = schema.predicates().map(|p| schema.arity(p)).collect();
    let _ = name;
    ScenarioStats {
        n_pred: schema.len(),
        arity_min: arities.iter().copied().min().unwrap_or(0),
        arity_max: arities.iter().copied().max().unwrap_or(0),
        n_atoms: engine.total_rows(),
        n_shapes: count_shapes(engine),
        n_rules: tgds.len(),
    }
}

/// Layered simple-linear rules: bodies in layer i, heads in layer > i —
/// weakly acyclic by construction (the predicate-level graph is a DAG, so
/// no dependency-graph cycle of any kind exists).
fn layered_sl_rules(
    schema: &Schema,
    layers: &[Vec<PredId>],
    n_rules: usize,
    existential_prob: f64,
    rng: &mut StdRng,
) -> Vec<Tgd> {
    let mut out = Vec::with_capacity(n_rules);
    while out.len() < n_rules {
        let li = rng.random_range(0..layers.len() - 1);
        let lj = rng.random_range(li + 1..layers.len());
        let body_pred = layers[li][rng.random_range(0..layers[li].len())];
        let head_pred = layers[lj][rng.random_range(0..layers[lj].len())];
        let body_arity = schema.arity(body_pred);
        let head_arity = schema.arity(head_pred);
        let body: Vec<Term> = (0..body_arity as u32)
            .map(|i| Term::Var(VarId(i)))
            .collect();
        let mut next = body_arity as u32;
        let head: Vec<Term> = (0..head_arity)
            .map(|_| {
                if rng.random_bool(existential_prob) {
                    let v = next;
                    next += 1;
                    Term::Var(VarId(v))
                } else {
                    Term::Var(VarId(rng.random_range(0..body_arity as u32)))
                }
            })
            .collect();
        out.push(
            Tgd::new(
                vec![Atom::new(schema, body_pred, body).expect("arity ok")],
                vec![Atom::new(schema, head_pred, head).expect("arity ok")],
            )
            .expect("valid rule"),
        );
    }
    out
}

/// Fills `preds` with tuples whose shapes are drawn from a fixed per-pred
/// menu, hitting an exact total shape budget.
fn fill_with_shape_menu(
    schema: &Schema,
    engine: &mut StorageEngine,
    menus: &[(PredId, Vec<Rgs>)],
    tuples_per_pred: u64,
    dsize: u32,
    rng: &mut StdRng,
) {
    let mut row = [0u64; 32];
    let mut blocks = [0u64; 32];
    for (pred, menu) in menus {
        let arity = schema.arity(*pred);
        engine.create_table(*pred, schema.name(*pred), arity);
        for t in 0..tuples_per_pred {
            // Guarantee every menu shape appears at least once by cycling
            // through the menu first, then sampling uniformly.
            let shape = if (t as usize) < menu.len() {
                &menu[t as usize]
            } else {
                &menu[rng.random_range(0..menu.len())]
            };
            let nblocks = shape.block_count();
            for b in 0..nblocks {
                loop {
                    let v = Term::Const(ConstId(rng.random_range(0..dsize))).pack();
                    if !blocks[..b].contains(&v) {
                        blocks[b] = v;
                        break;
                    }
                }
            }
            for (i, &id) in shape.ids().iter().enumerate() {
                row[i] = blocks[id as usize - 1];
            }
            engine.insert_packed(*pred, &row[..arity]);
        }
    }
}

/// Picks `count` distinct random *fine* shapes of the given arity: at most
/// two block merges away from the identity partition. Real relational data
/// rarely repeats a value across many columns, and the published iBench
/// shape counts (129 shapes over 287 relations) are only consistent with
/// near-identity shapes; coarse shapes would also make the Apriori lattice
/// walk visit an unrealistically large down-set.
fn random_shape_menu(
    sampler: &PartitionSampler,
    arity: usize,
    count: usize,
    rng: &mut StdRng,
) -> Vec<Rgs> {
    let _ = sampler;
    // Number of partitions with ≥ arity-2 blocks: identity + C(n,2) single
    // merges + (3-block and 2+2-block double merges).
    let max_fine = 1 + arity * (arity - 1) / 2;
    let max = count.min(max_fine.max(1));
    let mut menu: Vec<Rgs> = Vec::new();
    let mut guard = 0;
    while menu.len() < max && guard < 10_000 {
        guard += 1;
        let mut ids: Vec<u8> = (1..=arity as u8).collect();
        // 0, 1 or 2 merges, biased toward fewer.
        let merges = if arity < 2 {
            0
        } else {
            [0usize, 1, 1, 2][rng.random_range(0..4usize)]
        };
        for _ in 0..merges {
            let i = rng.random_range(0..arity);
            let j = rng.random_range(0..arity);
            let (a, b) = (ids[i].min(ids[j]), ids[i].max(ids[j]));
            for v in ids.iter_mut() {
                if *v == b {
                    *v = a;
                }
            }
        }
        let s = Rgs::canonicalize(&ids);
        if !menu.contains(&s) {
            menu.push(s);
        }
    }
    menu
}

/// Deep-like scenario (`Deep-100/200/300`): Table 1 row
/// `(n-pred 1299, arity 4, n-atoms 1000, n-shapes 1000, n-rules 4241+100·k)`.
pub fn deep_like(variant: usize, seed: u64) -> Scenario {
    assert!(
        [100, 200, 300].contains(&variant),
        "Deep variants are 100/200/300"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdeeb);
    let mut schema = Schema::new();
    let preds = make_predicates(&mut schema, "deep", 1299, 4, 4, &mut rng);
    // 13 layers of ~100 predicates: source-to-target chains.
    let layers: Vec<Vec<PredId>> = preds.chunks(100).map(|c| c.to_vec()).collect();
    // Deep-100: 4241, Deep-200: 4541, Deep-300: 4841 — step of 300.
    let n_rules = 4241 + (variant - 100) / 100 * 300;
    let tgds = layered_sl_rules(&schema, &layers, n_rules, 0.12, &mut rng);

    // 1000 singleton relations, each contributing exactly one (pred, shape)
    // pair ⇒ n-shapes = n-atoms = 1000.
    let sampler = PartitionSampler::new();
    let mut engine = StorageEngine::new();
    let menus: Vec<(PredId, Vec<Rgs>)> = preds
        .iter()
        .take(1000)
        .map(|&p| (p, vec![sampler.sample(&mut rng, 4)]))
        .collect();
    fill_with_shape_menu(&schema, &mut engine, &menus, 1, 10_000, &mut rng);

    let stats = measure("deep", &schema, &tgds, &engine);
    Scenario {
        name: format!("Deep-{variant}"),
        schema,
        tgds,
        engine,
        stats,
    }
}

/// LUBM-like scenario: Table 1 row `(n-pred 104, arity [1,2],
/// n-atoms ≈ 99547·scale_factor, n-shapes 30, n-rules 137)`.
///
/// `scale` plays the role of the LUBM university count (1, 10, 100, 1000);
/// `atom_scale` shrinks the per-university atom volume for laptop runs
/// (1.0 = paper size).
pub fn lubm_like(scale: usize, atom_scale: f64, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x10b3);
    let mut schema = Schema::new();
    // 60 unary classes + 44 binary properties = 104 predicates.
    let classes = make_predicates(&mut schema, "Class", 60, 1, 1, &mut rng);
    let props = make_predicates(&mut schema, "prop", 44, 2, 2, &mut rng);

    // 137 EL-style axioms, acyclic by class/property layering.
    let mut tgds: Vec<Tgd> = Vec::with_capacity(137);
    let v0 = Term::Var(VarId(0));
    let v1 = Term::Var(VarId(1));
    let v2 = Term::Var(VarId(2));
    let push = |body: Atom, head: Atom, tgds: &mut Vec<Tgd>| {
        tgds.push(Tgd::new(vec![body], vec![head]).expect("valid axiom"));
    };
    // 59 class-hierarchy axioms A_i ⊑ A_{f(i)<i} (a forest, acyclic).
    for i in 1..60 {
        let parent = rng.random_range(0..i);
        push(
            Atom::new(&schema, classes[i], vec![v0]).unwrap(),
            Atom::new(&schema, classes[parent], vec![v0]).unwrap(),
            &mut tgds,
        );
    }
    // 20 property-hierarchy axioms P_i ⊑ P_{g(i)<i}.
    for i in 1..21 {
        let parent = rng.random_range(0..i);
        push(
            Atom::new(&schema, props[i], vec![v0, v1]).unwrap(),
            Atom::new(&schema, props[parent], vec![v0, v1]).unwrap(),
            &mut tgds,
        );
    }
    // 22 domain + 22 range axioms.
    for i in 0..22 {
        let c = classes[rng.random_range(0..60usize)];
        push(
            Atom::new(&schema, props[i * 2], vec![v0, v1]).unwrap(),
            Atom::new(&schema, c, vec![v0]).unwrap(),
            &mut tgds,
        );
        let c2 = classes[rng.random_range(0..60usize)];
        push(
            Atom::new(&schema, props[i * 2 + 1], vec![v0, v1]).unwrap(),
            Atom::new(&schema, c2, vec![v1]).unwrap(),
            &mut tgds,
        );
    }
    // 14 existential axioms A ⊑ ∃P (classes high in the id order point to
    // late properties: keeps the dependency graph acyclic).
    for i in 0..14 {
        let c = classes[40 + i];
        let p = props[21 + i];
        push(
            Atom::new(&schema, c, vec![v0]).unwrap(),
            Atom::new(&schema, p, vec![v0, v2]).unwrap(),
            &mut tgds,
        );
    }
    assert_eq!(tgds.len(), 137);

    // Data: 20 populated classes (1 shape each) + 5 populated properties
    // (2 shapes each) = 30 shapes; ≈ 99547·scale·atom_scale atoms.
    let total_atoms = ((99_547.0 * scale as f64 * atom_scale) as u64).max(30);
    let per_pred = (total_atoms / 25).max(2);
    let mut menus: Vec<(PredId, Vec<Rgs>)> = Vec::new();
    for &c in classes.iter().take(20) {
        menus.push((c, vec![Rgs::identity(1)]));
    }
    for &p in props.iter().take(5) {
        menus.push((p, vec![Rgs::identity(2), Rgs::canonicalize(&[1, 1])]));
    }
    let mut engine = StorageEngine::new();
    let dsize = (total_atoms as u32).max(1000);
    fill_with_shape_menu(&schema, &mut engine, &menus, per_pred, dsize, &mut rng);

    let stats = measure("lubm", &schema, &tgds, &engine);
    Scenario {
        name: format!("LUBM-{scale}"),
        schema,
        tgds,
        engine,
        stats,
    }
}

/// Which iBench-like scenario to build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IBenchVariant {
    /// 287 predicates, arity `[1,10]`, 231 rules, 129 shapes, ~1.1M atoms.
    Stb128,
    /// 662 predicates, arity `[1,11]`, 785 rules, 245 shapes, ~2.1M atoms.
    Ont256,
}

/// iBench-like scenario; `atom_scale` shrinks the atom volume
/// (1.0 = paper size).
pub fn ibench_like(variant: IBenchVariant, atom_scale: f64, seed: u64) -> Scenario {
    let (name, n_pred, max_arity, n_rules, n_shapes, paper_atoms) = match variant {
        IBenchVariant::Stb128 => ("STB-128", 287, 10, 231, 129, 1_109_037u64),
        IBenchVariant::Ont256 => ("ONT-256", 662, 11, 785, 245, 2_146_490u64),
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1bec);
    let mut schema = Schema::new();
    let preds = make_predicates(&mut schema, "ib", n_pred, 1, max_arity, &mut rng);
    // Two layers: source relations map into target relations (s-t TGDs),
    // plus a thin third layer of target-target rules — all acyclic.
    let third = n_pred / 3;
    let layers = vec![
        preds[..third].to_vec(),
        preds[third..2 * third].to_vec(),
        preds[2 * third..].to_vec(),
    ];
    let tgds = layered_sl_rules(&schema, &layers, n_rules, 0.15, &mut rng);

    // Populate source relations with a shape menu summing to `n_shapes`.
    let sampler = PartitionSampler::new();
    let mut menus: Vec<(PredId, Vec<Rgs>)> = Vec::new();
    let mut remaining = n_shapes;
    let mut idx = 0usize;
    while remaining > 0 {
        let p = preds[idx % third];
        idx += 1;
        let arity = schema.arity(p);
        let budget = rng.random_range(1..=3usize).min(remaining);
        let menu = random_shape_menu(&sampler, arity, budget, &mut rng);
        if menu.is_empty() {
            continue;
        }
        remaining -= menu.len();
        menus.push((p, menu));
        if idx > 10 * third {
            break; // menus saturated (tiny arities): accept what we have
        }
    }
    let total_atoms = ((paper_atoms as f64 * atom_scale) as u64).max(menus.len() as u64 * 4);
    let per_pred = (total_atoms / menus.len().max(1) as u64).max(4);
    let mut engine = StorageEngine::new();
    fill_with_shape_menu(&schema, &mut engine, &menus, per_pred, 100_000, &mut rng);

    let stats = measure(name, &schema, &tgds, &engine);
    Scenario {
        name: name.to_string(),
        schema,
        tgds,
        engine,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_core::{is_chase_finite_l, FindShapesMode};

    #[test]
    fn deep_like_matches_table_1() {
        let s = deep_like(200, 7);
        assert_eq!(s.stats.n_pred, 1299);
        assert_eq!(s.stats.arity_min, 4);
        assert_eq!(s.stats.arity_max, 4);
        assert_eq!(s.stats.n_atoms, 1000);
        assert_eq!(s.stats.n_shapes, 1000);
        assert_eq!(s.stats.n_rules, 4541);
        assert!(s.tgds.iter().all(Tgd::is_simple_linear));
    }

    #[test]
    fn deep_rule_counts_follow_variants() {
        assert_eq!(deep_like(100, 1).stats.n_rules, 4241);
        assert_eq!(deep_like(300, 1).stats.n_rules, 4841);
    }

    #[test]
    fn deep_like_is_weakly_acyclic_hence_finite() {
        let s = deep_like(100, 3);
        let rep = is_chase_finite_l(&s.schema, &s.tgds, &s.engine, FindShapesMode::InMemory);
        assert!(rep.finite, "layered rules are weakly acyclic");
    }

    #[test]
    fn lubm_like_matches_table_1() {
        let s = lubm_like(1, 0.01, 11);
        assert_eq!(s.stats.n_pred, 104);
        assert_eq!(s.stats.arity_min, 1);
        assert_eq!(s.stats.arity_max, 2);
        assert_eq!(s.stats.n_rules, 137);
        assert_eq!(s.stats.n_shapes, 30);
        assert!(s.stats.n_atoms > 500);
        assert!(s.tgds.iter().all(Tgd::is_simple_linear));
    }

    #[test]
    fn lubm_scales_with_university_count() {
        let one = lubm_like(1, 0.01, 11);
        let ten = lubm_like(10, 0.01, 11);
        assert!(ten.stats.n_atoms > 5 * one.stats.n_atoms);
        assert_eq!(one.stats.n_shapes, ten.stats.n_shapes);
    }

    #[test]
    fn ibench_like_matches_table_1() {
        let s = ibench_like(IBenchVariant::Stb128, 0.002, 5);
        assert_eq!(s.stats.n_pred, 287);
        assert_eq!(s.stats.arity_min, 1);
        assert_eq!(s.stats.arity_max, 10);
        assert_eq!(s.stats.n_rules, 231);
        // Shape budget is hit up to menu saturation on small arities.
        assert!(
            (110..=129).contains(&s.stats.n_shapes),
            "n_shapes = {}",
            s.stats.n_shapes
        );
        let o = ibench_like(IBenchVariant::Ont256, 0.001, 5);
        assert_eq!(o.stats.n_pred, 662);
        assert_eq!(o.stats.arity_max, 11);
        assert_eq!(o.stats.n_rules, 785);
    }

    #[test]
    fn scenarios_run_through_the_checker() {
        for s in [
            lubm_like(1, 0.005, 2),
            ibench_like(IBenchVariant::Stb128, 0.001, 2),
        ] {
            let rep = is_chase_finite_l(&s.schema, &s.tgds, &s.engine, FindShapesMode::InDatabase);
            assert!(rep.finite, "{} should be acyclic", s.name);
            assert!(rep.n_db_shapes > 0);
        }
    }
}
