//! Tables: paged sequences of fixed-width rows for one predicate.

use crate::page::Page;
use soct_model::{Term, MAX_ARITY};

/// A table of packed-term rows.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    arity: usize,
    pages: Vec<Page>,
    rows: u64,
}

impl Table {
    /// Creates an empty table.
    ///
    /// Panics if `arity` exceeds [`MAX_ARITY`] — predicates admitted by
    /// `Schema::add_predicate` never do; this guards direct constructions
    /// that bypass a schema.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        assert!(
            arity <= MAX_ARITY,
            "arity {arity} exceeds MAX_ARITY ({MAX_ARITY}); \
             Schema::add_predicate enforces this limit"
        );
        Table {
            name: name.into(),
            arity,
            pages: Vec::new(),
            rows: 0,
        }
    }

    /// The relation name (for SQL rendering and persistence).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    #[inline]
    pub fn row_count(&self) -> u64 {
        self.rows
    }

    /// True when the table has no rows (drives the catalog query).
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of pages (I/O proxy for the benchmarks).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Appends a row of packed values.
    pub fn insert_packed(&mut self, row: &[u64]) {
        debug_assert_eq!(row.len(), self.arity);
        if self.pages.last().is_none_or(Page::is_full) {
            self.pages.push(Page::new(self.arity));
        }
        self.pages.last_mut().unwrap().push_row(row);
        self.rows += 1;
    }

    /// Appends a row of terms.
    pub fn insert_terms(&mut self, terms: &[Term]) {
        // The buffer is safe by the MAX_ARITY contract checked in
        // `Table::new` (and, upstream, in `Schema::add_predicate`).
        debug_assert_eq!(terms.len(), self.arity);
        let mut row = [0u64; MAX_ARITY];
        for (i, t) in terms.iter().enumerate() {
            row[i] = t.pack();
        }
        self.insert_packed(&row[..terms.len()]);
    }

    /// Visits up to `limit` rows (`u64::MAX` = all) with early exit.
    /// Returns `false` if the callback stopped the scan.
    pub fn for_each_row_limited(&self, limit: u64, f: &mut dyn FnMut(&[u64]) -> bool) -> bool {
        let mut scratch = vec![0u64; self.arity];
        let mut remaining = limit;
        for page in &self.pages {
            if remaining == 0 {
                return true;
            }
            let take = (page.len() as u64).min(remaining);
            for i in 0..take as usize {
                page.read_row(i, &mut scratch);
                if !f(&scratch) {
                    return false;
                }
            }
            remaining -= take;
        }
        true
    }

    /// Visits every row with early exit.
    pub fn for_each_row(&self, f: &mut dyn FnMut(&[u64]) -> bool) -> bool {
        self.for_each_row_limited(u64::MAX, f)
    }

    /// Reads row `i` (global index) into a fresh vector — the slow
    /// convenience path used by tests.
    pub fn row(&self, mut i: u64) -> Option<Vec<u64>> {
        if i >= self.rows {
            return None;
        }
        for page in &self.pages {
            if (i as usize) < page.len() {
                let mut out = vec![0u64; self.arity];
                page.read_row(i as usize, &mut out);
                return Some(out);
            }
            i -= page.len() as u64;
        }
        None
    }

    /// The pages (for persistence).
    pub(crate) fn pages(&self) -> &[Page] {
        &self.pages
    }

    /// Restores a table from persisted pages.
    pub(crate) fn from_pages(name: String, arity: usize, pages: Vec<Page>) -> Self {
        let rows = pages.iter().map(|p| p.len() as u64).sum();
        Table {
            name,
            arity,
            pages,
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::ConstId;

    #[test]
    fn insert_and_scan() {
        let mut t = Table::new("r", 2);
        for i in 0..5000u64 {
            t.insert_packed(&[i, i * 2]);
        }
        assert_eq!(t.row_count(), 5000);
        assert!(t.page_count() > 1, "spills to multiple pages");
        let mut sum = 0u64;
        t.for_each_row(&mut |row| {
            sum += row[1];
            true
        });
        assert_eq!(sum, (0..5000u64).map(|i| i * 2).sum());
    }

    #[test]
    fn limited_scan_sees_prefix() {
        let mut t = Table::new("r", 1);
        for i in 0..100u64 {
            t.insert_packed(&[i]);
        }
        let mut seen = Vec::new();
        t.for_each_row_limited(7, &mut |row| {
            seen.push(row[0]);
            true
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn term_round_trip() {
        let mut t = Table::new("r", 2);
        let a = Term::Const(ConstId(42));
        let b = Term::Const(ConstId(7));
        t.insert_terms(&[a, b]);
        let row = t.row(0).unwrap();
        assert_eq!(Term::unpack(row[0]), Some(a));
        assert_eq!(Term::unpack(row[1]), Some(b));
    }

    #[test]
    fn random_access_across_pages() {
        let mut t = Table::new("r", 3);
        for i in 0..3000u64 {
            t.insert_packed(&[i, i, i]);
        }
        assert_eq!(t.row(0).unwrap()[0], 0);
        assert_eq!(t.row(2999).unwrap()[0], 2999);
        assert!(t.row(3000).is_none());
    }
}
