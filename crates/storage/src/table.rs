//! Tables: paged sequences of fixed-width rows for one predicate.

use crate::page::Page;
use soct_model::{Term, MAX_ARITY};

/// A table of packed-term rows.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    arity: usize,
    pages: Vec<Page>,
    rows: u64,
}

impl Table {
    /// Creates an empty table.
    ///
    /// Panics if `arity` exceeds [`MAX_ARITY`] — predicates admitted by
    /// `Schema::add_predicate` never do; this guards direct constructions
    /// that bypass a schema.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        assert!(
            arity <= MAX_ARITY,
            "arity {arity} exceeds MAX_ARITY ({MAX_ARITY}); \
             Schema::add_predicate enforces this limit"
        );
        Table {
            name: name.into(),
            arity,
            pages: Vec::new(),
            rows: 0,
        }
    }

    /// The relation name (for SQL rendering and persistence).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    #[inline]
    pub fn row_count(&self) -> u64 {
        self.rows
    }

    /// True when the table has no rows (drives the catalog query).
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of pages (I/O proxy for the benchmarks).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Appends a row of packed values.
    pub fn insert_packed(&mut self, row: &[u64]) {
        debug_assert_eq!(row.len(), self.arity);
        if self.pages.last().is_none_or(Page::is_full) {
            self.pages.push(Page::new(self.arity));
        }
        self.pages.last_mut().unwrap().push_row(row);
        self.rows += 1;
    }

    /// Appends a row of terms.
    pub fn insert_terms(&mut self, terms: &[Term]) {
        // The buffer is safe by the MAX_ARITY contract checked in
        // `Table::new` (and, upstream, in `Schema::add_predicate`).
        debug_assert_eq!(terms.len(), self.arity);
        let mut row = [0u64; MAX_ARITY];
        for (i, t) in terms.iter().enumerate() {
            row[i] = t.pack();
        }
        self.insert_packed(&row[..terms.len()]);
    }

    /// Deletes the first row equal to `row` by swap-remove inside the page
    /// arena: the globally-last row overwrites the match, the tail slot is
    /// popped, and an emptied trailing page is released. Returns whether a
    /// matching row existed. Cost is the O(rows) equality scan; the removal
    /// itself is O(1) and row order is not preserved (the engine never
    /// promises positional stability — scans are set-semantics).
    pub fn delete_first_match(&mut self, row: &[u64]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        let mut scratch = vec![0u64; self.arity];
        let mut hit = None;
        'pages: for (pi, page) in self.pages.iter().enumerate() {
            for ri in 0..page.len() {
                page.read_row(ri, &mut scratch);
                if scratch.as_slice() == row {
                    hit = Some((pi, ri));
                    break 'pages;
                }
            }
        }
        let Some((pi, ri)) = hit else {
            return false;
        };
        let last_pi = self.pages.len() - 1;
        let last_ri = self.pages[last_pi].len() - 1;
        if (pi, ri) != (last_pi, last_ri) {
            self.pages[last_pi].read_row(last_ri, &mut scratch);
            self.pages[pi].overwrite_row(ri, &scratch);
        }
        self.pages[last_pi].pop_row();
        if self.pages[last_pi].is_empty() {
            self.pages.pop();
        }
        self.rows -= 1;
        true
    }

    /// Visits up to `limit` rows (`u64::MAX` = all) with early exit.
    /// Returns `false` if the callback stopped the scan.
    pub fn for_each_row_limited(&self, limit: u64, f: &mut dyn FnMut(&[u64]) -> bool) -> bool {
        let mut scratch = vec![0u64; self.arity];
        let mut remaining = limit;
        for page in &self.pages {
            if remaining == 0 {
                return true;
            }
            let take = (page.len() as u64).min(remaining);
            for i in 0..take as usize {
                page.read_row(i, &mut scratch);
                if !f(&scratch) {
                    return false;
                }
            }
            remaining -= take;
        }
        true
    }

    /// Visits every row with early exit.
    pub fn for_each_row(&self, f: &mut dyn FnMut(&[u64]) -> bool) -> bool {
        self.for_each_row_limited(u64::MAX, f)
    }

    /// Reads row `i` (global index) into a fresh vector — the slow
    /// convenience path used by tests.
    pub fn row(&self, mut i: u64) -> Option<Vec<u64>> {
        if i >= self.rows {
            return None;
        }
        for page in &self.pages {
            if (i as usize) < page.len() {
                let mut out = vec![0u64; self.arity];
                page.read_row(i as usize, &mut out);
                return Some(out);
            }
            i -= page.len() as u64;
        }
        None
    }

    /// The pages (for persistence).
    pub(crate) fn pages(&self) -> &[Page] {
        &self.pages
    }

    /// Restores a table from persisted pages.
    pub(crate) fn from_pages(name: String, arity: usize, pages: Vec<Page>) -> Self {
        let rows = pages.iter().map(|p| p.len() as u64).sum();
        Table {
            name,
            arity,
            pages,
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::ConstId;

    #[test]
    fn insert_and_scan() {
        let mut t = Table::new("r", 2);
        for i in 0..5000u64 {
            t.insert_packed(&[i, i * 2]);
        }
        assert_eq!(t.row_count(), 5000);
        assert!(t.page_count() > 1, "spills to multiple pages");
        let mut sum = 0u64;
        t.for_each_row(&mut |row| {
            sum += row[1];
            true
        });
        assert_eq!(sum, (0..5000u64).map(|i| i * 2).sum());
    }

    #[test]
    fn limited_scan_sees_prefix() {
        let mut t = Table::new("r", 1);
        for i in 0..100u64 {
            t.insert_packed(&[i]);
        }
        let mut seen = Vec::new();
        t.for_each_row_limited(7, &mut |row| {
            seen.push(row[0]);
            true
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn term_round_trip() {
        let mut t = Table::new("r", 2);
        let a = Term::Const(ConstId(42));
        let b = Term::Const(ConstId(7));
        t.insert_terms(&[a, b]);
        let row = t.row(0).unwrap();
        assert_eq!(Term::unpack(row[0]), Some(a));
        assert_eq!(Term::unpack(row[1]), Some(b));
    }

    #[test]
    fn delete_swap_removes_across_pages() {
        let mut t = Table::new("r", 2);
        for i in 0..3000u64 {
            t.insert_packed(&[i, i + 1]);
        }
        let pages_before = t.page_count();
        assert!(t.delete_first_match(&[7, 8]));
        assert!(!t.delete_first_match(&[7, 8]), "already gone");
        assert_eq!(t.row_count(), 2999);
        // The multiset of surviving rows is exactly the original minus one.
        let mut firsts: Vec<u64> = Vec::new();
        t.for_each_row(&mut |row| {
            firsts.push(row[0]);
            true
        });
        firsts.sort_unstable();
        let expect: Vec<u64> = (0..3000u64).filter(|&i| i != 7).collect();
        assert_eq!(firsts, expect);
        // Draining the tail releases emptied pages.
        for i in 2000..3000u64 {
            assert!(t.delete_first_match(&[i, i + 1]));
        }
        assert!(t.page_count() < pages_before);
        assert_eq!(t.row_count(), 1999);
    }

    #[test]
    fn delete_to_empty_and_reinsert() {
        let mut t = Table::new("r", 1);
        t.insert_packed(&[5]);
        assert!(t.delete_first_match(&[5]));
        assert!(t.is_empty());
        assert_eq!(t.page_count(), 0);
        assert!(!t.delete_first_match(&[5]));
        t.insert_packed(&[6]);
        assert_eq!(t.row(0).unwrap(), vec![6]);
    }

    #[test]
    fn random_access_across_pages() {
        let mut t = Table::new("r", 3);
        for i in 0..3000u64 {
            t.insert_packed(&[i, i, i]);
        }
        assert_eq!(t.row(0).unwrap()[0], 0);
        assert_eq!(t.row(2999).unwrap()[0], 2999);
        assert!(t.row(3000).is_none());
    }
}
