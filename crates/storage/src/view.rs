//! First-k-rows views (§8.1).
//!
//! The paper builds one very large database `D★` and derives "on-demand
//! virtual databases" by views that keep the first 1K/50K/100K/250K/500K
//! tuples per predicate. [`LimitView`] is that construct: a zero-copy
//! [`TupleSource`] that exposes a row-count-limited prefix of every relation
//! of an underlying engine.

use crate::engine::{StorageEngine, TupleSource};
use crate::query::{self, ColumnCondition};
use soct_model::PredId;

/// A virtual database exposing the first `limit` rows of every relation.
pub struct LimitView<'a> {
    engine: &'a StorageEngine,
    limit: u64,
}

impl<'a> LimitView<'a> {
    /// Creates a view keeping the first `limit` tuples per predicate.
    pub fn new(engine: &'a StorageEngine, limit: u64) -> Self {
        LimitView { engine, limit }
    }

    /// The per-relation row limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

impl TupleSource for LimitView<'_> {
    fn non_empty_predicates(&self) -> Vec<PredId> {
        // A view over a non-empty relation is non-empty whenever limit > 0.
        if self.limit == 0 {
            return Vec::new();
        }
        self.engine.non_empty_predicates()
    }

    fn arity_of(&self, pred: PredId) -> usize {
        self.engine.arity_of(pred)
    }

    fn row_count(&self, pred: PredId) -> u64 {
        self.engine.row_count(pred).min(self.limit)
    }

    fn scan(&self, pred: PredId, f: &mut dyn FnMut(&[u64]) -> bool) -> bool {
        match self.engine.table(pred) {
            Some(t) => t.for_each_row_limited(self.limit, f),
            None => true,
        }
    }

    fn exists_where(&self, pred: PredId, conds: &[ColumnCondition]) -> bool {
        self.engine
            .table(pred)
            .is_some_and(|t| query::exists(t, conds, self.limit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::{ConstId, Term};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    fn engine() -> StorageEngine {
        let mut e = StorageEngine::new();
        e.create_table(PredId(0), "r", 2);
        for i in 0..100 {
            // First 50 rows have distinct columns; the rest are "doubles".
            if i < 50 {
                e.insert(PredId(0), &[c(i), c(i + 1000)]);
            } else {
                e.insert(PredId(0), &[c(i), c(i)]);
            }
        }
        e
    }

    #[test]
    fn row_counts_are_clamped() {
        let e = engine();
        let v = LimitView::new(&e, 10);
        assert_eq!(v.row_count(PredId(0)), 10);
        assert_eq!(v.total_rows(), 10);
        let v_all = LimitView::new(&e, 10_000);
        assert_eq!(v_all.row_count(PredId(0)), 100);
    }

    #[test]
    fn scan_sees_only_the_prefix() {
        let e = engine();
        let v = LimitView::new(&e, 3);
        let mut n = 0;
        v.scan(PredId(0), &mut |_| {
            n += 1;
            true
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn exists_respects_the_limit() {
        let e = engine();
        // The "doubles" shape (1,1) only exists beyond row 50.
        let conds = [ColumnCondition::Eq(0, 1)];
        assert!(!LimitView::new(&e, 50).exists_where(PredId(0), &conds));
        assert!(LimitView::new(&e, 51).exists_where(PredId(0), &conds));
    }

    #[test]
    fn zero_limit_views_are_empty() {
        let e = engine();
        let v = LimitView::new(&e, 0);
        assert!(v.non_empty_predicates().is_empty());
        assert_eq!(v.total_rows(), 0);
    }
}
