//! Shape discovery by queries, with Apriori pruning (§5.4).
//!
//! Each shape of arity n is a set partition of the columns; its exact query
//! carries equalities (each position to its block representative) and
//! disequalities (between block representatives). The in-database
//! `FindShapes` issues, per shape, a *relaxed* query (equalities only)
//! followed by the exact query, and — Apriori-style — skips every more
//! specific shape (= coarser partition) once a relaxed query fails:
//! if no tuple satisfies `a1=a2`, none satisfies `a1=a2=a3` either.

use crate::engine::TupleSource;
use crate::query::ColumnCondition;
use soct_model::{PredId, Rgs};
use std::collections::VecDeque;

/// Block representatives into a stack buffer (first occurrence of each
/// block id); returns the block count. `MAX_ARITY = 64` bounds the width.
#[inline]
fn block_reps_into(rgs: &Rgs, reps: &mut [u16; soct_model::MAX_ARITY]) -> usize {
    let mut k = 0usize;
    for (i, b) in rgs.iter_ids().enumerate() {
        let b = b as usize - 1;
        if b >= k {
            reps[b] = i as u16;
            k = b + 1;
        }
    }
    k
}

/// The exact conditions of a shape: equalities binding every position to
/// its block representative, disequalities separating representatives.
pub fn shape_conditions(rgs: &Rgs) -> Vec<ColumnCondition> {
    let mut conds = Vec::new();
    shape_conditions_into(rgs, &mut conds);
    conds
}

/// [`shape_conditions`] into a caller-reused buffer (cleared first) — the
/// Apriori walk builds conditions once per lattice node, so reusing one
/// `Vec` keeps the walk allocation-free after the first node.
pub fn shape_conditions_into(rgs: &Rgs, conds: &mut Vec<ColumnCondition>) {
    shape_eq_conditions_into(rgs, conds);
    let mut reps = [0u16; soct_model::MAX_ARITY];
    let k = block_reps_into(rgs, &mut reps);
    for i in 0..k {
        for j in (i + 1)..k {
            conds.push(ColumnCondition::Ne(reps[i], reps[j]));
        }
    }
}

/// The relaxed (equalities-only) conditions of a shape — the paper's `Q′`.
pub fn shape_eq_conditions(rgs: &Rgs) -> Vec<ColumnCondition> {
    let mut conds = Vec::new();
    shape_eq_conditions_into(rgs, &mut conds);
    conds
}

/// [`shape_eq_conditions`] into a caller-reused buffer (cleared first).
pub fn shape_eq_conditions_into(rgs: &Rgs, conds: &mut Vec<ColumnCondition>) {
    conds.clear();
    let mut reps = [0u16; soct_model::MAX_ARITY];
    block_reps_into(rgs, &mut reps);
    for (i, b) in rgs.iter_ids().enumerate() {
        let rep = reps[b as usize - 1];
        if rep as usize != i {
            conds.push(ColumnCondition::Eq(rep, i as u16));
        }
    }
}

/// Query counters for the `abl-apriori` ablation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShapeQueryStats {
    /// Relaxed (`Q′`) queries issued.
    pub relaxed_queries: u64,
    /// Exact queries issued.
    pub exact_queries: u64,
    /// Lattice nodes never visited thanks to pruning.
    pub pruned_nodes: u64,
}

impl ShapeQueryStats {
    /// Accumulates another run's counters into `self` — the one merge used
    /// by every caller that folds per-relation or per-worker stats.
    pub fn merge(&mut self, other: &ShapeQueryStats) {
        self.relaxed_queries += other.relaxed_queries;
        self.exact_queries += other.exact_queries;
        self.pruned_nodes += other.pruned_nodes;
    }
}

/// In-database shape discovery for one relation with Apriori pruning:
/// breadth-first over the partition lattice from the identity partition,
/// expanding a node only when its relaxed query succeeds.
pub fn find_shapes_apriori(src: &dyn TupleSource, pred: PredId) -> (Vec<Rgs>, ShapeQueryStats) {
    let arity = src.arity_of(pred);
    let mut stats = ShapeQueryStats::default();
    let mut found = Vec::new();
    if arity == 0 || src.row_count(pred) == 0 {
        return (found, stats);
    }
    let mut visited: soct_model::FxHashSet<Rgs> = soct_model::FxHashSet::default();
    let mut queue: VecDeque<Rgs> = VecDeque::new();
    // Scratch buffers reused across the whole walk: one coarsening list and
    // one condition list, refilled per node — the walk allocates nothing
    // per node beyond set/queue growth.
    let mut coarsenings: Vec<Rgs> = Vec::new();
    let mut conds: Vec<ColumnCondition> = Vec::new();
    let root = Rgs::identity(arity);
    visited.insert(root.clone());
    queue.push_back(root);
    while let Some(p) = queue.pop_front() {
        stats.relaxed_queries += 1;
        shape_eq_conditions_into(&p, &mut conds);
        if !src.exists_where(pred, &conds) {
            // No tuple coarsens p: every coarsening of p is dead too.
            p.immediate_coarsenings_into(&mut coarsenings);
            stats.pruned_nodes +=
                coarsenings.iter().filter(|c| !visited.contains(c)).count() as u64;
            continue;
        }
        stats.exact_queries += 1;
        shape_conditions_into(&p, &mut conds);
        p.immediate_coarsenings_into(&mut coarsenings);
        if src.exists_where(pred, &conds) {
            found.push(p);
        }
        for c in coarsenings.drain(..) {
            if visited.insert(c.clone()) {
                queue.push_back(c);
            }
        }
    }
    found.sort_unstable();
    (found, stats)
}

/// Exhaustive in-database shape discovery: one exact query per partition of
/// the arity, no pruning. The `abl-apriori` strawman; exponential in the
/// arity (`Bell(n)` queries).
pub fn find_shapes_exhaustive(src: &dyn TupleSource, pred: PredId) -> (Vec<Rgs>, ShapeQueryStats) {
    let arity = src.arity_of(pred);
    let mut stats = ShapeQueryStats::default();
    let mut found = Vec::new();
    if arity == 0 || src.row_count(pred) == 0 {
        return (found, stats);
    }
    for p in Rgs::all_of_len(arity) {
        stats.exact_queries += 1;
        if src.exists_where(pred, &shape_conditions(&p)) {
            found.push(p);
        }
    }
    found.sort_unstable();
    (found, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StorageEngine;
    use soct_model::{ConstId, Term};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    fn engine_with(rows: &[&[u32]]) -> (StorageEngine, PredId) {
        let mut e = StorageEngine::new();
        let p = PredId(0);
        e.create_table(p, "R", rows[0].len());
        for r in rows {
            let terms: Vec<Term> = r.iter().map(|&v| c(v)).collect();
            e.insert(p, &terms);
        }
        (e, p)
    }

    #[test]
    fn conditions_for_paper_shape() {
        // R_(1,1,2): a1=a2 AND a1!=a3 (we anchor equalities at the block
        // representative, so it is a1=a2 rather than a2=a3; equivalent).
        let rgs = Rgs::canonicalize(&[1, 1, 2]);
        let conds = shape_conditions(&rgs);
        assert!(conds.contains(&ColumnCondition::Eq(0, 1)));
        assert!(conds.contains(&ColumnCondition::Ne(0, 2)));
        assert_eq!(conds.len(), 2);
        assert_eq!(shape_eq_conditions(&rgs), vec![ColumnCondition::Eq(0, 1)]);
    }

    #[test]
    fn apriori_finds_exactly_the_present_shapes() {
        let (e, p) = engine_with(&[
            &[1, 1, 2], // shape (1,1,2)
            &[5, 6, 7], // shape (1,2,3)
            &[9, 9, 9], // shape (1,1,1)
        ]);
        let (shapes, _) = find_shapes_apriori(&e, p);
        let expect: Vec<Rgs> = {
            let mut v = vec![
                Rgs::canonicalize(&[1, 1, 2]),
                Rgs::canonicalize(&[1, 2, 3]),
                Rgs::canonicalize(&[1, 1, 1]),
            ];
            v.sort_unstable();
            v
        };
        assert_eq!(shapes, expect);
    }

    #[test]
    fn apriori_agrees_with_exhaustive() {
        let (e, p) = engine_with(&[&[1, 2, 1, 3], &[4, 4, 4, 4], &[5, 6, 6, 7], &[8, 9, 10, 8]]);
        let (a, _) = find_shapes_apriori(&e, p);
        let (b, _) = find_shapes_exhaustive(&e, p);
        assert_eq!(a, b);
    }

    #[test]
    fn pruning_saves_queries_on_distinct_data() {
        // All-distinct tuples: every relaxed query with an equality fails,
        // so the walk stops at the second lattice level.
        let (e, p) = engine_with(&[&[1, 2, 3, 4], &[5, 6, 7, 8]]);
        let (shapes, stats) = find_shapes_apriori(&e, p);
        assert_eq!(shapes, vec![Rgs::identity(4)]);
        let (_, full) = find_shapes_exhaustive(&e, p);
        // Bell(4) = 15 exact queries exhaustively; Apriori needs 1 exact
        // query and 1 + 6 relaxed ones (identity + its 6 coarsenings).
        assert_eq!(full.exact_queries, 15);
        assert_eq!(stats.exact_queries, 1);
        assert_eq!(stats.relaxed_queries, 7);
    }

    #[test]
    fn empty_relation_yields_no_shapes() {
        let mut e = StorageEngine::new();
        let p = PredId(0);
        e.create_table(p, "R", 3);
        let (shapes, stats) = find_shapes_apriori(&e, p);
        assert!(shapes.is_empty());
        assert_eq!(stats.relaxed_queries, 0);
    }

    #[test]
    fn arity_one_has_single_shape() {
        let (e, p) = engine_with(&[&[1], &[2]]);
        let (shapes, _) = find_shapes_apriori(&e, p);
        assert_eq!(shapes, vec![Rgs::identity(1)]);
    }

    #[test]
    fn intermediate_shape_absent_but_coarser_present() {
        // Tuples (1,1,1): shape (1,1,2) is absent but its relaxed query
        // succeeds, so the walk must still reach (1,1,1).
        let (e, p) = engine_with(&[&[1, 1, 1]]);
        let (shapes, _) = find_shapes_apriori(&e, p);
        assert_eq!(shapes, vec![Rgs::canonicalize(&[1, 1, 1])]);
    }
}
