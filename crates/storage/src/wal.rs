//! Write-ahead logging and crash recovery for the storage engine.
//!
//! The live database of §5.3/§5.4 became a resident writable engine in
//! the serve tier; this module makes it durable. Every write batch is
//! appended to a segment-rotated, length-prefixed, checksummed log
//! *before* it is applied to the engine, so an acknowledged write
//! survives a crash, and an unacknowledged one is at worst a torn tail
//! that recovery truncates at the first bad checksum.
//!
//! On-disk layout inside the durable directory:
//! ```text
//! wal-0000000001.soctwal        append-only record segments
//! wal-0000000002.soctwal
//! snapshot-0000000002.soctdb    checkpoint image (engine + vocabulary)
//! ```
//! A snapshot with sequence number `S` captures everything appended to
//! segments `< S`; recovery loads the newest parseable snapshot and
//! replays only segments `>= S`.
//!
//! Record framing (little endian):
//! ```text
//! u32 payload_len | u64 fnv1a64(payload) | payload
//! payload = u8 kind | body
//! ```
//! Three record kinds keep the log self-contained: tuple batches
//! (`REC_OPS`, each op carries predicate id, table name, arity, and
//! the packed row), interned-constant batches (`REC_SYMBOLS`), and
//! predicate-declaration batches (`REC_PREDICATES`) — the latter two
//! let recovery rebuild the `Interner`/`Schema` with the exact dense
//! ids the writer assigned, which the tuple rows and cache keys depend
//! on.
//!
//! The ack contract: [`Wal::append_ops`] returns `Ok` only after the
//! record is in the file *and* the configured [`SyncPolicy`] has been
//! honoured (`always` fsyncs per record; `batch` every
//! [`BATCH_SYNC_EVERY`] records; `off` never, except on
//! [`Wal::flush`]/checkpoint). Callers apply the batch to the engine
//! and acknowledge the client only on `Ok` — on `Err` nothing was
//! applied, so the in-memory state never runs ahead of what a
//! restarted process can recover.
//!
//! All write-path file I/O goes through the injectable [`WalIo`]
//! trait. [`RealIo`] is the production implementation; [`FaultyIo`]
//! injects crashes (partial write then everything fails), silent bit
//! flips, and failing writes/fsyncs, driving the crash-point
//! differential proptests at the bottom of this file.

use crate::engine::StorageEngine;
use crate::persist;
use bytes::{Buf, BufMut, BytesMut};
use soct_model::{Interner, PredId, Schema, SymbolId, MAX_ARITY};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// Record kind: a batch of tuple inserts/deletes.
const REC_OPS: u8 = 1;
/// Record kind: newly interned constants `(id, name)`.
const REC_SYMBOLS: u8 = 2;
/// Record kind: newly declared predicates `(id, name, arity)`.
const REC_PREDICATES: u8 = 3;

/// Bytes of record framing before the payload (`u32` length + `u64`
/// checksum).
const REC_HEADER: usize = 12;

/// Segment rotation threshold (bytes). Rotation bounds the size of any
/// single file replay reads; checkpoints are what actually reclaim
/// space.
const DEFAULT_ROTATE_BYTES: u64 = 8 << 20;

/// Under [`SyncPolicy::Batch`], fsync once per this many records.
pub const BATCH_SYNC_EVERY: u64 = 32;

/// Magic prefix of a checkpoint snapshot file.
const SNAP_MAGIC: &[u8; 8] = b"SOCTSNP1";

/// FNV-1a 64-bit — the dependency-free checksum guarding every record
/// and snapshot. One flipped bit anywhere in the payload changes the
/// digest, which is all torn-tail detection needs.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// When appended records are forced to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every record — an acked write survives `kill -9`.
    Always,
    /// fsync every [`BATCH_SYNC_EVERY`] records — bounded loss window,
    /// much higher throughput.
    Batch,
    /// Never fsync on the write path (the OS flushes eventually);
    /// [`Wal::flush`] and checkpoints still sync.
    Off,
}

impl FromStr for SyncPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(SyncPolicy::Always),
            "batch" => Ok(SyncPolicy::Batch),
            "off" => Ok(SyncPolicy::Off),
            other => Err(format!("wal-sync expects always|batch|off, got `{other}`")),
        }
    }
}

impl fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SyncPolicy::Always => "always",
            SyncPolicy::Batch => "batch",
            SyncPolicy::Off => "off",
        })
    }
}

/// One logged tuple write, self-contained for replay: the table name
/// and arity ride along so recovery can recreate tables without any
/// out-of-band catalog.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalEntry {
    /// `true` = insert, `false` = delete (first match).
    pub insert: bool,
    /// Dense predicate slot the row belongs to.
    pub pred: PredId,
    /// Table name (for on-the-fly table creation during replay).
    pub name: String,
    /// The packed row; its length is the arity.
    pub row: Vec<u64>,
}

/// The write-path file I/O surface, injectable for fault testing. The
/// implementation owns at most one open segment at a time;
/// [`WalIo::open_append`] switches to (creating if needed) a new one.
pub trait WalIo: Send + Sync {
    /// Opens `path` for appending, creating it if absent. Replaces the
    /// previously open segment.
    fn open_append(&mut self, path: &Path) -> io::Result<()>;
    /// Appends bytes to the open segment.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Forces the open segment to stable storage.
    fn sync(&mut self) -> io::Result<()>;
    /// Atomically replaces `path` with `bytes` (write temp, fsync,
    /// rename).
    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Removes a file; a missing file is not an error.
    fn remove_file(&mut self, path: &Path) -> io::Result<()>;
}

/// Production [`WalIo`]: plain `File` appends, `sync_data` fsyncs, and
/// temp+rename whole-file writes.
#[derive(Debug, Default)]
pub struct RealIo {
    file: Option<File>,
}

impl RealIo {
    /// A fresh I/O backend with no open segment.
    pub fn new() -> Self {
        RealIo::default()
    }
}

impl WalIo for RealIo {
    fn open_append(&mut self, path: &Path) -> io::Result<()> {
        self.file = Some(OpenOptions::new().create(true).append(true).open(path)?);
        Ok(())
    }

    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let file = self
            .file
            .as_mut()
            .ok_or_else(|| io::Error::other("no open segment"))?;
        file.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        let file = self
            .file
            .as_mut()
            .ok_or_else(|| io::Error::other("no open segment"))?;
        file.sync_data()
    }

    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)
    }

    fn remove_file(&mut self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

/// One injected failure mode for [`FaultyIo`]. Faults target segment
/// appends and fsyncs — the write path the ack contract depends on.
#[derive(Clone, Copy, Debug)]
pub enum Fault {
    /// Crash mid-append: once cumulative appended bytes would pass
    /// `byte`, write only the prefix up to it, return an error, and
    /// fail every later operation — a partial write followed by
    /// `kill -9`.
    TruncateAt {
        /// Global append offset (bytes across all appends) of the cut.
        byte: u64,
    },
    /// Silent media corruption: flip bit `bit` of the byte at global
    /// append offset `byte`, reporting success.
    FlipBit {
        /// Global append offset of the corrupted byte.
        byte: u64,
        /// Which bit (0–7) to flip.
        bit: u8,
    },
    /// Every `k`-th append call fails cleanly (nothing written).
    FailWriteEvery {
        /// Period of the failure (1 = every write fails).
        k: u64,
    },
    /// Every `k`-th fsync fails (the appended bytes stay in the file).
    FailSyncEvery {
        /// Period of the failure.
        k: u64,
    },
}

/// A [`WalIo`] that injects one [`Fault`] into otherwise real file
/// I/O, so recovery reads genuine on-disk state left behind by the
/// failure.
#[derive(Debug)]
pub struct FaultyIo {
    inner: RealIo,
    fault: Fault,
    appended: u64,
    writes: u64,
    syncs: u64,
    dead: bool,
}

impl FaultyIo {
    /// Wraps real file I/O with the given fault.
    pub fn new(fault: Fault) -> Self {
        FaultyIo {
            inner: RealIo::new(),
            fault,
            appended: 0,
            writes: 0,
            syncs: 0,
            dead: true, // set false on first open_append
        }
    }

    /// Whether a crash-style fault has fired (all operations fail).
    pub fn crashed(&self) -> bool {
        self.dead && self.writes > 0
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.dead && self.writes + self.syncs > 0 {
            return Err(io::Error::other("injected crash: process is gone"));
        }
        Ok(())
    }
}

impl WalIo for FaultyIo {
    fn open_append(&mut self, path: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.dead = false;
        self.inner.open_append(path)
    }

    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::other("injected crash: process is gone"));
        }
        self.writes += 1;
        match self.fault {
            Fault::TruncateAt { byte } => {
                if self.appended + bytes.len() as u64 > byte {
                    let keep = byte.saturating_sub(self.appended) as usize;
                    let _ = self.inner.append(&bytes[..keep]);
                    self.dead = true;
                    return Err(io::Error::other("injected crash during append"));
                }
                self.appended += bytes.len() as u64;
                self.inner.append(bytes)
            }
            Fault::FlipBit { byte, bit } => {
                let start = self.appended;
                self.appended += bytes.len() as u64;
                if (start..self.appended).contains(&byte) {
                    let mut corrupt = bytes.to_vec();
                    corrupt[(byte - start) as usize] ^= 1 << (bit % 8);
                    self.inner.append(&corrupt)
                } else {
                    self.inner.append(bytes)
                }
            }
            Fault::FailWriteEvery { k } => {
                if k > 0 && self.writes % k == 0 {
                    return Err(io::Error::other("injected write failure"));
                }
                self.appended += bytes.len() as u64;
                self.inner.append(bytes)
            }
            Fault::FailSyncEvery { .. } => {
                self.appended += bytes.len() as u64;
                self.inner.append(bytes)
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::other("injected crash: process is gone"));
        }
        self.syncs += 1;
        if let Fault::FailSyncEvery { k } = self.fault {
            if k > 0 && self.syncs % k == 0 {
                return Err(io::Error::other("injected fsync failure"));
            }
        }
        self.inner.sync()
    }

    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::other("injected crash: process is gone"));
        }
        self.inner.write_file(path, bytes)
    }

    fn remove_file(&mut self, path: &Path) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::other("injected crash: process is gone"));
        }
        self.inner.remove_file(path)
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:010}.soctwal"))
}

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq:010}.soctdb"))
}

/// Parses `prefix-<seq>.<suffix>` file names back to sequence numbers.
fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// Sorted (segments, snapshots) sequence numbers present in `dir`.
fn list_dir(dir: &Path) -> io::Result<(Vec<u64>, Vec<u64>)> {
    let mut segs = Vec::new();
    let mut snaps = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(s) = parse_seq(name, "wal-", ".soctwal") {
            segs.push(s);
        } else if let Some(s) = parse_seq(name, "snapshot-", ".soctdb") {
            snaps.push(s);
        }
    }
    segs.sort_unstable();
    snaps.sort_unstable();
    Ok((segs, snaps))
}

/// Frames a payload as one record: length, checksum, payload.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(REC_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Reads the record at the head of `bytes`. `Ok((payload, consumed))`
/// on a checksum-valid record; `None` on a torn/corrupt head (too
/// short, implausible length, or checksum mismatch).
fn read_record(bytes: &[u8]) -> Option<(&[u8], usize)> {
    if bytes.len() < REC_HEADER {
        return None;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let sum = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    if len == 0 || len > bytes.len() - REC_HEADER {
        return None;
    }
    let payload = &bytes[REC_HEADER..REC_HEADER + len];
    if fnv1a64(payload) != sum {
        return None;
    }
    Some((payload, REC_HEADER + len))
}

fn encode_ops(entries: &[WalEntry]) -> Vec<u8> {
    let mut out = BytesMut::new();
    out.put_u8(REC_OPS);
    out.put_u32_le(entries.len() as u32);
    for e in entries {
        out.put_u8(u8::from(!e.insert));
        out.put_u32_le(e.pred.0);
        out.put_u16_le(e.name.len() as u16);
        out.put_slice(e.name.as_bytes());
        out.put_u16_le(e.row.len() as u16);
        for &v in &e.row {
            out.put_u64_le(v);
        }
    }
    out.to_vec()
}

fn encode_symbols(syms: &[(u32, &str)]) -> Vec<u8> {
    let mut out = BytesMut::new();
    out.put_u8(REC_SYMBOLS);
    out.put_u32_le(syms.len() as u32);
    for (id, name) in syms {
        out.put_u32_le(*id);
        out.put_u16_le(name.len() as u16);
        out.put_slice(name.as_bytes());
    }
    out.to_vec()
}

fn encode_predicates(preds: &[(u32, &str, usize)]) -> Vec<u8> {
    let mut out = BytesMut::new();
    out.put_u8(REC_PREDICATES);
    out.put_u32_le(preds.len() as u32);
    for (id, name, arity) in preds {
        out.put_u32_le(*id);
        out.put_u16_le(name.len() as u16);
        out.put_slice(name.as_bytes());
        out.put_u16_le(*arity as u16);
    }
    out.to_vec()
}

fn inv(m: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, m.to_string())
}

fn take_str(data: &mut &[u8]) -> io::Result<String> {
    if data.remaining() < 2 {
        return Err(inv("truncated string length"));
    }
    let len = data.get_u16_le() as usize;
    if data.remaining() < len {
        return Err(inv("truncated string"));
    }
    let s = std::str::from_utf8(&data[..len])
        .map_err(|_| inv("string not UTF-8"))?
        .to_string();
    data.advance(len);
    Ok(s)
}

/// Decodes and applies one checksum-valid record payload onto the
/// recovering state. Errors here mean the record decodes to something
/// logically inconsistent with the state built so far (e.g. a
/// vocabulary id out of order) — detected corruption, reported as
/// `Err`, never a panic.
fn apply_payload(
    mut data: &[u8],
    engine: &mut StorageEngine,
    schema: &mut Schema,
    symbols: &mut Interner,
) -> io::Result<()> {
    if data.is_empty() {
        return Err(inv("empty record payload"));
    }
    let kind = data.get_u8();
    match kind {
        REC_OPS => {
            if data.remaining() < 4 {
                return Err(inv("truncated op count"));
            }
            let count = data.get_u32_le();
            for _ in 0..count {
                if data.remaining() < 5 {
                    return Err(inv("truncated op header"));
                }
                let tag = data.get_u8();
                let pred = PredId(data.get_u32_le());
                let name = take_str(&mut data)?;
                if data.remaining() < 2 {
                    return Err(inv("truncated arity"));
                }
                let arity = data.get_u16_le() as usize;
                if arity == 0 || arity > MAX_ARITY {
                    return Err(inv("implausible arity"));
                }
                if data.remaining() < arity * 8 {
                    return Err(inv("truncated row"));
                }
                let mut row = [0u64; MAX_ARITY];
                for slot in row.iter_mut().take(arity) {
                    *slot = data.get_u64_le();
                }
                engine.create_table(pred, &name, arity);
                if engine.table(pred).map(crate::table::Table::arity) != Some(arity) {
                    return Err(inv("replayed arity disagrees with existing table"));
                }
                match tag {
                    0 => engine.insert_packed(pred, &row[..arity]),
                    1 => {
                        // A miss replays exactly as it applied originally
                        // (deletes are logged before the engine decides).
                        engine.delete_packed(pred, &row[..arity]);
                    }
                    _ => return Err(inv("unknown op tag")),
                }
            }
        }
        REC_SYMBOLS => {
            if data.remaining() < 4 {
                return Err(inv("truncated symbol count"));
            }
            let count = data.get_u32_le();
            for _ in 0..count {
                if data.remaining() < 4 {
                    return Err(inv("truncated symbol id"));
                }
                let id = data.get_u32_le();
                let name = take_str(&mut data)?;
                if symbols.intern(&name).0 != id {
                    return Err(inv("symbol record out of order"));
                }
            }
        }
        REC_PREDICATES => {
            if data.remaining() < 4 {
                return Err(inv("truncated predicate count"));
            }
            let count = data.get_u32_le();
            for _ in 0..count {
                if data.remaining() < 4 {
                    return Err(inv("truncated predicate id"));
                }
                let id = data.get_u32_le();
                let name = take_str(&mut data)?;
                if data.remaining() < 2 {
                    return Err(inv("truncated predicate arity"));
                }
                let arity = data.get_u16_le() as usize;
                let got = schema
                    .add_predicate(&name, arity)
                    .map_err(|e| inv(&format!("predicate record invalid: {e}")))?;
                if got.0 != id {
                    return Err(inv("predicate record out of order"));
                }
            }
        }
        _ => return Err(inv("unknown record kind")),
    }
    if data.remaining() > 0 {
        return Err(inv("trailing bytes in record payload"));
    }
    Ok(())
}

/// Serialises a checkpoint: the engine image in the `persist` format
/// plus the ordered vocabulary (constants, then predicates), the whole
/// body guarded by one checksum.
fn encode_snapshot(engine: &StorageEngine, schema: &Schema, symbols: &Interner) -> Vec<u8> {
    let mut body = BytesMut::new();
    let image = persist::to_bytes(engine);
    body.put_u32_le(image.len() as u32);
    body.put_slice(&image);
    body.put_u32_le(symbols.len() as u32);
    for i in 0..symbols.len() {
        let name = symbols.resolve(SymbolId(i as u32));
        body.put_u16_le(name.len() as u16);
        body.put_slice(name.as_bytes());
    }
    body.put_u32_le(schema.len() as u32);
    for p in schema.predicates() {
        let name = schema.name(p);
        body.put_u16_le(name.len() as u16);
        body.put_slice(name.as_bytes());
        body.put_u16_le(schema.arity(p) as u16);
    }
    let mut out = Vec::with_capacity(16 + body.len());
    out.extend_from_slice(SNAP_MAGIC);
    out.extend_from_slice(&fnv1a64(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

fn load_snapshot(path: &Path) -> io::Result<(StorageEngine, Schema, Interner)> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 16 || &bytes[..8] != SNAP_MAGIC {
        return Err(inv("bad snapshot magic"));
    }
    let sum = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let mut body = &bytes[16..];
    if fnv1a64(body) != sum {
        return Err(inv("snapshot checksum mismatch"));
    }
    if body.remaining() < 4 {
        return Err(inv("truncated snapshot"));
    }
    let image_len = body.get_u32_le() as usize;
    if body.remaining() < image_len {
        return Err(inv("truncated engine image"));
    }
    let engine = persist::from_bytes(&body[..image_len])?;
    body.advance(image_len);
    if body.remaining() < 4 {
        return Err(inv("truncated symbol section"));
    }
    let sym_count = body.get_u32_le();
    let mut symbols = Interner::new();
    for i in 0..sym_count {
        let name = take_str(&mut body)?;
        if symbols.intern(&name).0 != i {
            return Err(inv("snapshot symbols out of order"));
        }
    }
    if body.remaining() < 4 {
        return Err(inv("truncated predicate section"));
    }
    let pred_count = body.get_u32_le();
    let mut schema = Schema::new();
    for i in 0..pred_count {
        let name = take_str(&mut body)?;
        if body.remaining() < 2 {
            return Err(inv("truncated predicate arity"));
        }
        let arity = body.get_u16_le() as usize;
        let got = schema
            .add_predicate(&name, arity)
            .map_err(|e| inv(&format!("snapshot predicate invalid: {e}")))?;
        if got.0 != i {
            return Err(inv("snapshot predicates out of order"));
        }
    }
    if body.remaining() > 0 {
        return Err(inv("trailing bytes in snapshot"));
    }
    Ok((engine, schema, symbols))
}

/// What recovery found and did; surfaced on `/db/stats` and in logs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence of the snapshot recovery started from, if any.
    pub snapshot_seq: Option<u64>,
    /// Snapshot files that failed to parse and were skipped.
    pub corrupt_snapshots: u64,
    /// Segments visited during replay.
    pub segments_replayed: u64,
    /// Checksum-valid records replayed.
    pub replayed_records: u64,
    /// Torn tails truncated at the first bad checksum (0 or 1).
    pub torn_truncations: u64,
}

/// A recovered durable database: the engine (shape tracking enabled),
/// the vocabulary it was written with, the open [`Wal`] continuing the
/// log, and what recovery observed.
pub struct DurableDb {
    /// The recovered engine, shape tracking already enabled.
    pub engine: StorageEngine,
    /// Predicate vocabulary, dense ids identical to the writing process.
    pub schema: Schema,
    /// Constant vocabulary, dense ids identical to the writing process.
    pub symbols: Interner,
    /// The log, positioned to append after the recovered state.
    pub wal: Wal,
    /// What recovery found (snapshot used, records replayed, torn tail).
    pub report: RecoveryReport,
}

impl fmt::Debug for DurableDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableDb")
            .field("engine", &self.engine)
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

/// The write-ahead log: an open segment plus rotation/checkpoint
/// bookkeeping. Obtained from [`open_durable`]; single-writer by
/// construction (`&mut self` everywhere).
pub struct Wal {
    dir: PathBuf,
    io: Box<dyn WalIo>,
    policy: SyncPolicy,
    seq: u64,
    seg_bytes: u64,
    rotate_bytes: u64,
    /// Records appended since the last fsync.
    pending: u64,
    /// Bytes appended since the last checkpoint.
    since_checkpoint: u64,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("policy", &self.policy)
            .field("seq", &self.seq)
            .field("seg_bytes", &self.seg_bytes)
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// The configured sync policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Current segment sequence number.
    pub fn segment_seq(&self) -> u64 {
        self.seq
    }

    /// Bytes appended since the last checkpoint — the replay debt a
    /// restart would pay. Callers checkpoint when this grows large.
    pub fn bytes_since_checkpoint(&self) -> u64 {
        self.since_checkpoint
    }

    /// Overrides the segment rotation threshold (tests use tiny values
    /// to force multi-segment replay).
    pub fn set_rotate_bytes(&mut self, bytes: u64) {
        self.rotate_bytes = bytes.max(1);
    }

    fn sync_now(&mut self) -> io::Result<()> {
        self.io.sync()?;
        self.pending = 0;
        soct_obs::global().wal_fsyncs.inc();
        Ok(())
    }

    fn append_record(&mut self, payload: &[u8]) -> io::Result<()> {
        let rec = frame(payload);
        self.io.append(&rec)?;
        self.seg_bytes += rec.len() as u64;
        self.since_checkpoint += rec.len() as u64;
        self.pending += 1;
        soct_obs::global().wal_appends.inc();
        match self.policy {
            SyncPolicy::Always => self.sync_now()?,
            SyncPolicy::Batch => {
                if self.pending >= BATCH_SYNC_EVERY {
                    self.sync_now()?;
                }
            }
            SyncPolicy::Off => {}
        }
        if self.seg_bytes >= self.rotate_bytes {
            self.roll()?;
        }
        Ok(())
    }

    /// Rotates to a fresh segment (flushing the old one first unless
    /// the policy is `off`).
    fn roll(&mut self) -> io::Result<()> {
        if self.pending > 0 && self.policy != SyncPolicy::Off {
            self.sync_now()?;
        }
        self.seq += 1;
        self.io.open_append(&segment_path(&self.dir, self.seq))?;
        self.seg_bytes = 0;
        Ok(())
    }

    /// Appends one batch of tuple writes as a single record, honouring
    /// the sync policy. `Ok` means the batch is as durable as the
    /// policy promises — only then may the caller apply it to the
    /// engine and acknowledge the client.
    pub fn append_ops(&mut self, entries: &[WalEntry]) -> io::Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        self.append_record(&encode_ops(entries))
    }

    /// Logs newly interned constants `(dense id, name)`. Ids must be
    /// appended in interning order.
    pub fn append_symbols(&mut self, syms: &[(u32, &str)]) -> io::Result<()> {
        if syms.is_empty() {
            return Ok(());
        }
        self.append_record(&encode_symbols(syms))
    }

    /// Logs newly declared predicates `(dense id, name, arity)`.
    pub fn append_predicates(&mut self, preds: &[(u32, &str, usize)]) -> io::Result<()> {
        if preds.is_empty() {
            return Ok(());
        }
        self.append_record(&encode_predicates(preds))
    }

    /// Forces everything appended so far to stable storage, regardless
    /// of policy. Clean-shutdown durability for `batch`/`off`.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.pending > 0 {
            self.sync_now()?;
        }
        Ok(())
    }

    /// Takes a checkpoint: rolls to a fresh segment, writes a snapshot
    /// of the current state atomically, then deletes the segments and
    /// snapshots the new image supersedes. If the snapshot write fails
    /// the old snapshot and all segments survive, so recovery is never
    /// worse off for having tried.
    pub fn checkpoint(
        &mut self,
        engine: &StorageEngine,
        schema: &Schema,
        symbols: &Interner,
    ) -> io::Result<()> {
        if self.pending > 0 {
            self.sync_now()?;
        }
        self.seq += 1;
        self.io.open_append(&segment_path(&self.dir, self.seq))?;
        self.seg_bytes = 0;
        self.pending = 0;
        let snap = encode_snapshot(engine, schema, symbols);
        self.io
            .write_file(&snapshot_path(&self.dir, self.seq), &snap)?;
        // The snapshot is durable: everything older is garbage now.
        let (segs, snaps) = list_dir(&self.dir)?;
        for s in segs.into_iter().filter(|&s| s < self.seq) {
            self.io.remove_file(&segment_path(&self.dir, s))?;
        }
        for s in snaps.into_iter().filter(|&s| s < self.seq) {
            self.io.remove_file(&snapshot_path(&self.dir, s))?;
        }
        self.since_checkpoint = 0;
        soct_obs::global().wal_checkpoints.inc();
        soct_obs::log_debug!("storage", "event=wal_checkpoint seq={}", self.seq);
        Ok(())
    }
}

/// Opens (or creates) a durable database directory: loads the newest
/// parseable snapshot, replays the log — truncating a torn tail at the
/// first bad checksum — enables shape tracking, and returns the
/// recovered state with an open [`Wal`].
///
/// The recovered catalog and fingerprints are bit-identical to those
/// of an engine that applied the same acknowledged writes and never
/// crashed (the differential proptests below hold this).
pub fn open_durable(
    dir: impl AsRef<Path>,
    policy: SyncPolicy,
    mut io: Box<dyn WalIo>,
) -> io::Result<DurableDb> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let (segs, snaps) = list_dir(dir)?;

    let mut engine = StorageEngine::new();
    let mut schema = Schema::new();
    let mut symbols = Interner::new();
    let mut report = RecoveryReport::default();
    let mut base_seq = 0u64;
    for &s in snaps.iter().rev() {
        match load_snapshot(&snapshot_path(dir, s)) {
            Ok((e, sc, sy)) => {
                engine = e;
                schema = sc;
                symbols = sy;
                base_seq = s;
                report.snapshot_seq = Some(s);
                break;
            }
            Err(e) => {
                report.corrupt_snapshots += 1;
                soct_obs::log_warn!("storage", "event=wal_snapshot_corrupt seq={s} error={e}");
            }
        }
    }

    let mut open_seq = base_seq.max(1);
    let mut seg_bytes = 0u64;
    let live_segs: Vec<u64> = segs.iter().copied().filter(|&s| s >= base_seq).collect();
    'segs: for (i, &s) in live_segs.iter().enumerate() {
        report.segments_replayed += 1;
        open_seq = s;
        let path = segment_path(dir, s);
        let bytes = std::fs::read(&path)?;
        let mut off = 0usize;
        while off < bytes.len() {
            match read_record(&bytes[off..]) {
                Some((payload, consumed)) => {
                    apply_payload(payload, &mut engine, &mut schema, &mut symbols)?;
                    report.replayed_records += 1;
                    soct_obs::global().wal_replayed_records.inc();
                    off += consumed;
                }
                None => {
                    // Torn tail: drop it and everything after — later
                    // bytes were never acknowledged as durable.
                    OpenOptions::new()
                        .write(true)
                        .open(&path)?
                        .set_len(off as u64)?;
                    report.torn_truncations += 1;
                    soct_obs::global().wal_torn_truncations.inc();
                    soct_obs::log_warn!("storage", "event=wal_torn_tail seq={s} valid_bytes={off}");
                    for &later in &live_segs[i + 1..] {
                        let _ = std::fs::remove_file(segment_path(dir, later));
                    }
                    seg_bytes = off as u64;
                    break 'segs;
                }
            }
        }
        seg_bytes = bytes.len() as u64;
    }

    io.open_append(&segment_path(dir, open_seq))?;
    engine.enable_shape_tracking();
    soct_obs::log_info!(
        "storage",
        "event=wal_recovered seq={open_seq} records={} torn={} snapshot={:?}",
        report.replayed_records,
        report.torn_truncations,
        report.snapshot_seq
    );
    Ok(DurableDb {
        engine,
        schema,
        symbols,
        wal: Wal {
            dir: dir.to_path_buf(),
            io,
            policy,
            seq: open_seq,
            seg_bytes,
            rotate_bytes: DEFAULT_ROTATE_BYTES,
            pending: 0,
            since_checkpoint: seg_bytes,
        },
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TupleSource;
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    use soct_model::{ConstId, Term};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Fresh per-test directory; unique across the test binary.
    fn test_dir(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "soct_wal_{}_{}_{}",
            name,
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn k(i: u32) -> u64 {
        Term::Const(ConstId(i)).pack()
    }

    fn ins(pred: u32, name: &str, row: &[u64]) -> WalEntry {
        WalEntry {
            insert: true,
            pred: PredId(pred),
            name: name.to_string(),
            row: row.to_vec(),
        }
    }

    fn del(pred: u32, name: &str, row: &[u64]) -> WalEntry {
        WalEntry {
            insert: false,
            ..ins(pred, name, row)
        }
    }

    /// Applies entries the way the serve tier does after a successful
    /// append: create the table, then insert/delete.
    fn apply(engine: &mut StorageEngine, entries: &[WalEntry]) {
        for e in entries {
            engine.create_table(e.pred, &e.name, e.row.len());
            if e.insert {
                engine.insert_packed(e.pred, &e.row);
            } else {
                engine.delete_packed(e.pred, &e.row);
            }
        }
    }

    /// The state an engine that never crashed would hold after the
    /// given batches, tracking enabled.
    fn expected_engine(batches: &[Vec<WalEntry>]) -> StorageEngine {
        let mut e = StorageEngine::new();
        for b in batches {
            apply(&mut e, b);
        }
        e.enable_shape_tracking();
        e
    }

    /// Bit-identical state: same serialised tables, same maintained
    /// fingerprints.
    fn assert_same_state(got: &StorageEngine, want: &StorageEngine) {
        assert_eq!(persist::to_bytes(got), persist::to_bytes(want));
        assert_eq!(got.shape_fingerprint(), want.shape_fingerprint());
        assert_eq!(got.predicate_fingerprint(), want.predicate_fingerprint());
    }

    fn reopen(dir: &Path) -> DurableDb {
        open_durable(dir, SyncPolicy::Always, Box::new(RealIo::new())).unwrap()
    }

    #[test]
    fn empty_dir_opens_empty() {
        let dir = test_dir("empty");
        let d = reopen(&dir);
        assert_eq!(d.engine.total_rows(), 0);
        assert_eq!(d.schema.len(), 0);
        assert_eq!(d.symbols.len(), 0);
        assert_eq!(d.report, RecoveryReport::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_reopen_replays_everything() {
        let dir = test_dir("basic");
        let batches = vec![
            vec![ins(0, "r", &[k(1), k(2)]), ins(0, "r", &[k(2), k(2)])],
            vec![ins(1, "s", &[k(7)]), del(0, "r", &[k(1), k(2)])],
            vec![del(0, "r", &[k(9), k(9)])], // miss: replays as a miss
        ];
        {
            let mut d = reopen(&dir);
            d.wal.append_symbols(&[(0, "alpha"), (1, "beta")]).unwrap();
            d.wal
                .append_predicates(&[(0, "r", 2), (1, "s", 1)])
                .unwrap();
            for b in &batches {
                d.wal.append_ops(b).unwrap();
                apply(&mut d.engine, b);
            }
        }
        let d = reopen(&dir);
        assert_same_state(&d.engine, &expected_engine(&batches));
        assert_eq!(d.symbols.resolve(SymbolId(1)), "beta");
        assert_eq!(d.schema.name(PredId(1)), "s");
        assert_eq!(d.schema.arity(PredId(0)), 2);
        assert_eq!(d.report.replayed_records, 5);
        assert_eq!(d.report.torn_truncations, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_log_stays_usable() {
        let dir = test_dir("torn");
        let b1 = vec![ins(0, "r", &[k(1), k(2)])];
        let b2 = vec![ins(0, "r", &[k(3), k(4)])];
        {
            let mut d = reopen(&dir);
            d.wal.append_ops(&b1).unwrap();
            d.wal.append_ops(&b2).unwrap();
        }
        // Chop the file mid-record: keep the first record and 5 bytes
        // of the second, then append garbage after the cut too.
        let seg = segment_path(&dir, 1);
        let bytes = std::fs::read(&seg).unwrap();
        let first_len = REC_HEADER + encode_ops(&b1).len();
        let mut cut = bytes[..first_len + 5].to_vec();
        cut.extend_from_slice(&[0xAB; 3]);
        std::fs::write(&seg, &cut).unwrap();

        let mut d = reopen(&dir);
        assert_same_state(&d.engine, &expected_engine(std::slice::from_ref(&b1)));
        assert_eq!(d.report.torn_truncations, 1);
        assert_eq!(d.report.replayed_records, 1);
        // Physically truncated to the valid prefix.
        assert_eq!(std::fs::metadata(&seg).unwrap().len() as usize, first_len);

        // The log keeps working: append after recovery, reopen again.
        d.wal.append_ops(&b2).unwrap();
        apply(&mut d.engine, &b2);
        let d2 = reopen(&dir);
        assert_same_state(&d2.engine, &expected_engine(&[b1, b2]));
        assert_eq!(d2.report.torn_truncations, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_in_the_middle_is_detected_not_panicking() {
        let dir = test_dir("flip");
        let batches: Vec<Vec<WalEntry>> = (0..5)
            .map(|i| vec![ins(0, "r", &[k(i), k(i + 1)])])
            .collect();
        {
            let mut d = reopen(&dir);
            for b in &batches {
                d.wal.append_ops(b).unwrap();
            }
        }
        // Flip one bit inside the third record's payload.
        let seg = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&seg).unwrap();
        let rec_len = REC_HEADER + encode_ops(&batches[0]).len();
        bytes[2 * rec_len + REC_HEADER + 3] ^= 0x10;
        std::fs::write(&seg, &bytes).unwrap();

        let d = reopen(&dir);
        assert_same_state(&d.engine, &expected_engine(&batches[..2]));
        assert_eq!(d.report.torn_truncations, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_compacts_and_preserves_vocabulary() {
        let dir = test_dir("ckpt");
        let batches: Vec<Vec<WalEntry>> = (0..10)
            .map(|i| vec![ins(0, "r", &[k(i % 3), k(i)])])
            .collect();
        {
            let mut d = reopen(&dir);
            // Mutate the vocabulary first, then log the delta — the
            // order the serve tier uses; checkpoint snapshots the
            // in-memory state, so the two must agree.
            d.symbols.intern("c0");
            d.symbols.intern("c1");
            d.schema.add_predicate("r", 2).unwrap();
            d.wal.append_symbols(&[(0, "c0"), (1, "c1")]).unwrap();
            d.wal.append_predicates(&[(0, "r", 2)]).unwrap();
            for b in &batches {
                d.wal.append_ops(b).unwrap();
                apply(&mut d.engine, b);
            }
            assert!(d.wal.bytes_since_checkpoint() > 0);
            d.wal.checkpoint(&d.engine, &d.schema, &d.symbols).unwrap();
            assert_eq!(d.wal.bytes_since_checkpoint(), 0);
        }
        // Old segment gone, snapshot + fresh segment present.
        let (segs, snaps) = list_dir(&dir).unwrap();
        assert_eq!(segs, vec![2]);
        assert_eq!(snaps, vec![2]);

        let d = reopen(&dir);
        assert_eq!(d.report.snapshot_seq, Some(2));
        assert_eq!(d.report.replayed_records, 0, "snapshot carries it all");
        assert_same_state(&d.engine, &expected_engine(&batches));
        assert_eq!(d.symbols.len(), 2);
        assert_eq!(d.schema.len(), 1);
        assert_eq!(d.schema.name(PredId(0)), "r");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writes_after_checkpoint_replay_on_top_of_the_snapshot() {
        let dir = test_dir("ckpt_tail");
        let before = vec![ins(0, "r", &[k(1), k(1)])];
        let after = vec![ins(1, "s", &[k(2)]), del(0, "r", &[k(1), k(1)])];
        {
            let mut d = reopen(&dir);
            d.wal.append_ops(&before).unwrap();
            apply(&mut d.engine, &before);
            d.wal.checkpoint(&d.engine, &d.schema, &d.symbols).unwrap();
            d.wal.append_ops(&after).unwrap();
            apply(&mut d.engine, &after);
        }
        let d = reopen(&dir);
        assert_eq!(d.report.snapshot_seq, Some(2));
        assert_eq!(d.report.replayed_records, 1);
        assert_same_state(&d.engine, &expected_engine(&[before, after]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_replays_across_segments() {
        let dir = test_dir("rotate");
        let batches: Vec<Vec<WalEntry>> = (0..40)
            .map(|i| vec![ins(0, "rel", &[k(i), k(i * 2)])])
            .collect();
        {
            let mut d = reopen(&dir);
            d.wal.set_rotate_bytes(64); // force a roll almost every record
            for b in &batches {
                d.wal.append_ops(b).unwrap();
                apply(&mut d.engine, b);
            }
        }
        let (segs, _) = list_dir(&dir).unwrap();
        assert!(segs.len() > 3, "expected many segments, got {segs:?}");
        let d = reopen(&dir);
        assert_eq!(d.report.replayed_records, 40);
        assert!(d.report.segments_replayed > 3);
        assert_same_state(&d.engine, &expected_engine(&batches));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_falls_back_without_panicking() {
        let dir = test_dir("snapcorrupt");
        let b = vec![ins(0, "r", &[k(1), k(2)])];
        {
            let mut d = reopen(&dir);
            d.wal.append_ops(&b).unwrap();
            apply(&mut d.engine, &b);
            d.wal.checkpoint(&d.engine, &d.schema, &d.symbols).unwrap();
        }
        // Corrupt the snapshot body; the checkpoint deleted the old
        // segments, so recovery falls back to an empty base and replays
        // the (empty) current segment: detected, degraded, no panic.
        let snap = snapshot_path(&dir, 2);
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();
        let d = reopen(&dir);
        assert_eq!(d.report.corrupt_snapshots, 1);
        assert_eq!(d.report.snapshot_seq, None);
        assert_eq!(d.engine.total_rows(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// [`RealIo`] plus a shared fsync counter, so policy tests count
    /// *this* log's syncs without racing the process-global metrics.
    struct CountingIo {
        inner: RealIo,
        syncs: std::sync::Arc<AtomicU64>,
    }

    impl WalIo for CountingIo {
        fn open_append(&mut self, path: &Path) -> io::Result<()> {
            self.inner.open_append(path)
        }
        fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
            self.inner.append(bytes)
        }
        fn sync(&mut self) -> io::Result<()> {
            self.syncs.fetch_add(1, Ordering::Relaxed);
            self.inner.sync()
        }
        fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
            self.inner.write_file(path, bytes)
        }
        fn remove_file(&mut self, path: &Path) -> io::Result<()> {
            self.inner.remove_file(path)
        }
    }

    #[test]
    fn sync_policies_fsync_when_promised() {
        for (policy, appends, want_syncs) in [
            (SyncPolicy::Always, 5u64, 5u64),
            (SyncPolicy::Batch, BATCH_SYNC_EVERY + 3, 1),
            (SyncPolicy::Off, 5, 0),
        ] {
            let dir = test_dir("policy");
            let syncs = std::sync::Arc::new(AtomicU64::new(0));
            let io = CountingIo {
                inner: RealIo::new(),
                syncs: syncs.clone(),
            };
            let mut d = open_durable(&dir, policy, Box::new(io)).unwrap();
            for i in 0..appends {
                d.wal
                    .append_ops(&[ins(0, "r", &[k(i as u32), k(0)])])
                    .unwrap();
            }
            assert_eq!(syncs.load(Ordering::Relaxed), want_syncs, "{policy}");
            // flush() forces durability for every policy.
            d.wal.flush().unwrap();
            if policy != SyncPolicy::Always {
                assert_eq!(syncs.load(Ordering::Relaxed), want_syncs + 1, "{policy}");
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn failed_append_is_not_on_disk() {
        let dir = test_dir("failwrite");
        let mut d = open_durable(
            &dir,
            SyncPolicy::Always,
            Box::new(FaultyIo::new(Fault::FailWriteEvery { k: 2 })),
        )
        .unwrap();
        let mut acked = Vec::new();
        for i in 0..6u32 {
            let b = vec![ins(0, "r", &[k(i), k(i)])];
            if d.wal.append_ops(&b).is_ok() {
                apply(&mut d.engine, &b);
                acked.push(b);
            }
        }
        assert_eq!(acked.len(), 3, "every 2nd append failed");
        drop(d);
        let r = reopen(&dir);
        assert_same_state(&r.engine, &expected_engine(&acked));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_fsync_blocks_the_ack_but_state_stays_a_prefix() {
        let dir = test_dir("failsync");
        let mut d = open_durable(
            &dir,
            SyncPolicy::Always,
            Box::new(FaultyIo::new(Fault::FailSyncEvery { k: 3 })),
        )
        .unwrap();
        let mut attempted = Vec::new();
        let mut acked = 0usize;
        for i in 0..7u32 {
            let b = vec![ins(0, "r", &[k(i), k(i + 1)])];
            if d.wal.append_ops(&b).is_ok() {
                acked += 1;
            }
            attempted.push(b);
        }
        assert!(acked < attempted.len());
        drop(d);
        // The appends all landed even where the fsync failed: recovery
        // sees the full attempted stream — a superset of the acked
        // writes, never a divergence.
        let r = reopen(&dir);
        assert_same_state(&r.engine, &expected_engine(&attempted));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Random batches over a few tables: small constants so deletes hit
    /// sometimes, mixed arities, occasional new predicates.
    fn random_batches(rng: &mut StdRng) -> Vec<Vec<WalEntry>> {
        let preds: [(u32, &str, usize); 4] =
            [(0, "p0", 2), (1, "p1", 1), (2, "p2", 3), (5, "sparse", 2)];
        let n_batches = rng.random_range(1usize..16);
        (0..n_batches)
            .map(|_| {
                let n = rng.random_range(1usize..6);
                (0..n)
                    .map(|_| {
                        let (id, name, arity) = preds[rng.random_range(0usize..preds.len())];
                        let row: Vec<u64> =
                            (0..arity).map(|_| k(rng.random_range(0u32..6))).collect();
                        if rng.random_range(0u32..4) == 0 {
                            del(id, name, &row)
                        } else {
                            ins(id, name, &row)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Framed size of one ops batch on disk.
    fn batch_bytes(b: &[WalEntry]) -> usize {
        REC_HEADER + encode_ops(b).len()
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(40))]

        /// The tentpole differential: crash (partial write, then every
        /// later operation fails) at an arbitrary byte of a random
        /// write stream under `sync=always`. Recovery must equal an
        /// engine that applied exactly the acknowledged batches and
        /// never crashed — tables, catalog, and fingerprints
        /// bit-identical — with the torn tail truncated, never a panic.
        #[test]
        fn crash_recovers_exactly_the_acked_prefix(seed in proptest::any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let batches = random_batches(&mut rng);
            let total: usize = batches.iter().map(|b| batch_bytes(b)).sum();
            // Sometimes past the end: then nothing crashes at all.
            let cut = rng.random_range(0u64..(total as u64 + 40));
            let dir = test_dir(&format!("crash{seed}"));

            let mut d = open_durable(
                &dir,
                SyncPolicy::Always,
                Box::new(FaultyIo::new(Fault::TruncateAt { byte: cut })),
            ).unwrap();
            let mut acked: Vec<Vec<WalEntry>> = Vec::new();
            for b in &batches {
                match d.wal.append_ops(b) {
                    Ok(()) => {
                        apply(&mut d.engine, b);
                        acked.push(b.clone());
                    }
                    // Crash: the process is gone from here on.
                    Err(_) => break,
                }
            }
            let live_state = persist::to_bytes(&d.engine);
            drop(d);

            let r = reopen(&dir);
            let want = expected_engine(&acked);
            // Recovered state == exactly the acknowledged prefix…
            proptest::prop_assert_eq!(persist::to_bytes(&r.engine), persist::to_bytes(&want));
            // …which is also what the live engine held at crash time.
            proptest::prop_assert_eq!(persist::to_bytes(&want), live_state);
            proptest::prop_assert_eq!(r.engine.shape_fingerprint(), want.shape_fingerprint());
            proptest::prop_assert_eq!(
                r.engine.predicate_fingerprint(),
                want.predicate_fingerprint()
            );
            // A mid-record cut leaves a torn tail; a cut on a record
            // boundary (or past the end) leaves none.
            proptest::prop_assert!(r.report.torn_truncations <= 1);
            let _ = std::fs::remove_dir_all(&dir);
        }

        /// A silently flipped bit anywhere in the stream: recovery
        /// detects it at the checksum, truncates there, and lands on
        /// exactly the batches wholly before the corruption.
        #[test]
        fn bit_flip_recovers_the_prefix_before_the_corruption(seed in proptest::any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let batches = random_batches(&mut rng);
            let sizes: Vec<usize> = batches.iter().map(|b| batch_bytes(b)).collect();
            let total: usize = sizes.iter().sum();
            let byte = rng.random_range(0u64..total as u64);
            let bit = rng.random_range(0u8..8);
            let dir = test_dir(&format!("flipprop{seed}"));

            let mut d = open_durable(
                &dir,
                SyncPolicy::Always,
                Box::new(FaultyIo::new(Fault::FlipBit { byte, bit })),
            ).unwrap();
            for b in &batches {
                // Silent corruption: every append reports success.
                d.wal.append_ops(b).unwrap();
            }
            drop(d);

            // Batches wholly before the flipped byte survive.
            let mut end = 0usize;
            let mut intact = 0usize;
            for s in &sizes {
                if (end + s) as u64 <= byte {
                    end += s;
                    intact += 1;
                } else {
                    break;
                }
            }
            let r = reopen(&dir);
            let want = expected_engine(&batches[..intact]);
            proptest::prop_assert_eq!(persist::to_bytes(&r.engine), persist::to_bytes(&want));
            proptest::prop_assert_eq!(r.report.torn_truncations, 1);
            proptest::prop_assert_eq!(r.report.replayed_records as usize, intact);
            let _ = std::fs::remove_dir_all(&dir);
        }

        /// Crash at an arbitrary point in a stream that also rotates
        /// segments and checkpoints mid-way: multi-file recovery obeys
        /// the same acked-prefix contract.
        #[test]
        fn crash_with_rotation_and_checkpoints_recovers_acked(seed in proptest::any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let batches = random_batches(&mut rng);
            let total: usize = batches.iter().map(|b| batch_bytes(b)).sum();
            let cut = rng.random_range(0u64..(total as u64 + 40));
            let ckpt_every = rng.random_range(2usize..6);
            let dir = test_dir(&format!("crashrot{seed}"));

            let mut d = open_durable(
                &dir,
                SyncPolicy::Always,
                Box::new(FaultyIo::new(Fault::TruncateAt { byte: cut })),
            ).unwrap();
            d.wal.set_rotate_bytes(96);
            let mut acked: Vec<Vec<WalEntry>> = Vec::new();
            for (i, b) in batches.iter().enumerate() {
                match d.wal.append_ops(b) {
                    Ok(()) => {
                        apply(&mut d.engine, b);
                        acked.push(b.clone());
                    }
                    Err(_) => break,
                }
                if (i + 1) % ckpt_every == 0
                    && d.wal.checkpoint(&d.engine, &d.schema, &d.symbols).is_err()
                {
                    // Crash during the checkpoint itself: stop writing.
                    break;
                }
            }
            drop(d);

            let r = reopen(&dir);
            let want = expected_engine(&acked);
            proptest::prop_assert_eq!(persist::to_bytes(&r.engine), persist::to_bytes(&want));
            proptest::prop_assert_eq!(r.engine.shape_fingerprint(), want.shape_fingerprint());
            proptest::prop_assert_eq!(
                r.engine.predicate_fingerprint(),
                want.predicate_fingerprint()
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
