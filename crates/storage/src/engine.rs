//! The storage engine and its catalog, plus the [`TupleSource`] abstraction
//! the termination algorithms consume.
//!
//! The paper stores every database in PostgreSQL and touches it through
//! exactly three operations (§5.3, §5.4):
//! 1. the *catalog query* — list the non-empty relations without reading
//!    data;
//! 2. *shape EXISTS queries* — Boolean scans with equality/disequality
//!    column conditions;
//! 3. *full scans* — the in-memory `FindShapes` loads each relation.
//!
//! [`TupleSource`] captures those three operations; the engine, the
//! first-k-rows views of §8.1 ([`crate::view::LimitView`]), and plain
//! in-memory instances ([`InstanceSource`]) all implement it, so the
//! checkers in `soct-core` are storage-agnostic — mirroring the paper's
//! remark that the FindShapes backend can be swapped freely (§10).

use crate::query::{self, ColumnCondition};
use crate::shape_catalog::ShapeCatalog;
use crate::table::Table;
use soct_model::fingerprint::{predicate_element_hash, shape_element_hash, SetFingerprint};
use soct_model::{Fingerprint, Instance, PredId, Rgs, Term, MAX_ARITY};
use std::sync::atomic::{AtomicU64, Ordering};

/// Row-level access used by the termination checkers and generators.
pub trait TupleSource {
    /// The catalog query: predicates with at least one tuple, sorted.
    fn non_empty_predicates(&self) -> Vec<PredId>;
    /// Arity of a stored relation.
    fn arity_of(&self, pred: PredId) -> usize;
    /// Number of tuples visible for `pred`.
    fn row_count(&self, pred: PredId) -> u64;
    /// Scans the visible tuples of `pred` (packed terms); early exit on
    /// `false`. Returns `false` if the callback stopped the scan.
    fn scan(&self, pred: PredId, f: &mut dyn FnMut(&[u64]) -> bool) -> bool;
    /// `EXISTS(SELECT * FROM pred WHERE conds)` over the visible tuples.
    fn exists_where(&self, pred: PredId, conds: &[ColumnCondition]) -> bool;
    /// Total tuples across relations.
    fn total_rows(&self) -> u64 {
        self.non_empty_predicates()
            .into_iter()
            .map(|p| self.row_count(p))
            .sum()
    }
}

/// The db-dependent cache-key fingerprints, maintained in O(1) per write:
/// the distinct shape set (Linear) and the non-empty predicate set
/// (simple-linear / general). Elements enter and leave the accumulators
/// only on distinct-set transitions (shape multiplicity 0 ↔ 1, relation
/// row count 0 ↔ 1), so shape-preserving writes leave both bits unchanged.
#[derive(Debug, Clone, Copy)]
struct LiveFingerprints {
    shapes: SetFingerprint,
    preds: SetFingerprint,
}

/// An embedded, writable relational store.
#[derive(Debug, Default)]
pub struct StorageEngine {
    tables: Vec<Option<Table>>,
    /// EXISTS queries answered (the `abl-apriori` ablation metric).
    exists_queries: AtomicU64,
    /// Optional incrementally-maintained shape catalog (§10 future work);
    /// enabled with [`StorageEngine::enable_shape_tracking`]. Invariant:
    /// `Some` iff `live_fp` is `Some`.
    shape_catalog: Option<ShapeCatalog>,
    /// Incrementally-maintained db fingerprints; paired with the catalog.
    live_fp: Option<LiveFingerprints>,
    /// Full catalog rebuilds forced by detected desyncs.
    catalog_rebuilds: u64,
}

impl StorageEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates (or re-opens) the table for `pred`.
    pub fn create_table(&mut self, pred: PredId, name: &str, arity: usize) {
        let idx = pred.index();
        if idx >= self.tables.len() {
            self.tables.resize_with(idx + 1, || None);
        }
        if self.tables[idx].is_none() {
            self.tables[idx] = Some(Table::new(name, arity));
        }
    }

    /// The table of `pred`, if created.
    pub fn table(&self, pred: PredId) -> Option<&Table> {
        self.tables.get(pred.index()).and_then(Option::as_ref)
    }

    fn table_mut(&mut self, pred: PredId) -> &mut Table {
        self.tables
            .get_mut(pred.index())
            .and_then(Option::as_mut)
            .expect("table not created")
    }

    /// Inserts one tuple of terms. The table must exist.
    pub fn insert(&mut self, pred: PredId, terms: &[Term]) {
        if self.shape_catalog.is_some() {
            // Safe by the MAX_ARITY contract `Schema::add_predicate`
            // enforces at declaration time.
            let mut row = [0u64; MAX_ARITY];
            for (i, t) in terms.iter().enumerate() {
                row[i] = t.pack();
            }
            self.insert_packed(pred, &row[..terms.len()]);
        } else {
            self.table_mut(pred).insert_terms(terms);
            soct_obs::global().db_inserts.inc();
        }
    }

    /// Inserts one pre-packed tuple. The table must exist.
    pub fn insert_packed(&mut self, pred: PredId, row: &[u64]) {
        let table = self
            .tables
            .get_mut(pred.index())
            .and_then(Option::as_mut)
            .expect("table not created");
        let was_empty = table.is_empty();
        table.insert_packed(row);
        soct_obs::global().db_inserts.inc();
        if let Some(cat) = self.shape_catalog.as_mut() {
            let new_shape = cat.on_insert(pred, row);
            if new_shape {
                soct_obs::global().db_shape_updates.inc();
            }
            let table = self.tables[pred.index()].as_ref().unwrap();
            if let Some(fp) = self.live_fp.as_mut() {
                if new_shape {
                    fp.shapes
                        .add(shape_element_hash(table.name(), &Rgs::of_row(row)));
                }
                if was_empty {
                    fp.preds
                        .add(predicate_element_hash(table.name(), table.arity()));
                }
                if new_shape || was_empty {
                    soct_obs::global().db_fingerprint_updates.inc();
                }
            }
        }
    }

    /// Deletes one tuple of terms (first match). Returns whether a row was
    /// removed. The catalog and fingerprints stay in sync because the
    /// notification fires only for rows that actually left the store.
    pub fn delete(&mut self, pred: PredId, terms: &[Term]) -> bool {
        // Safe by the MAX_ARITY contract `Schema::add_predicate` enforces.
        let mut row = [0u64; MAX_ARITY];
        for (i, t) in terms.iter().enumerate() {
            row[i] = t.pack();
        }
        self.delete_packed(pred, &row[..terms.len()])
    }

    /// Deletes one pre-packed tuple (first match; swap-remove inside the
    /// page arena, so it is O(scan) to find and O(1) to remove). Returns
    /// whether a row was removed; a missing table, arity mismatch, or
    /// absent tuple is a clean `false`, never a desync. If the catalog
    /// nevertheless reports a shape it cannot reconcile, tracking is
    /// rebuilt from a full scan on the spot ([`StorageEngine::catalog_rebuilds`]
    /// counts these) — the catalog is never left silently wrong.
    pub fn delete_packed(&mut self, pred: PredId, row: &[u64]) -> bool {
        let Some(table) = self.tables.get_mut(pred.index()).and_then(Option::as_mut) else {
            return false;
        };
        if row.len() != table.arity() || !table.delete_first_match(row) {
            return false;
        }
        soct_obs::global().db_deletes.inc();
        if self.shape_catalog.is_some() {
            let table = self.tables[pred.index()].as_ref().unwrap();
            let now_empty = table.is_empty();
            let cat = self.shape_catalog.as_mut().unwrap();
            match cat.on_delete(pred, row) {
                Some(shape_vanished) => {
                    if shape_vanished {
                        soct_obs::global().db_shape_updates.inc();
                    }
                    if let Some(fp) = self.live_fp.as_mut() {
                        if shape_vanished {
                            fp.shapes
                                .remove(shape_element_hash(table.name(), &Rgs::of_row(row)));
                        }
                        if now_empty {
                            fp.preds
                                .remove(predicate_element_hash(table.name(), table.arity()));
                        }
                        if shape_vanished || now_empty {
                            soct_obs::global().db_fingerprint_updates.inc();
                        }
                    }
                }
                None => self.rebuild_tracking(),
            }
        }
        true
    }

    /// Turns on the materialised shape catalog (§10 future work). Existing
    /// rows are scanned once; every later insert and delete maintains the
    /// catalog — and the live db fingerprints — incrementally, collapsing
    /// `FindShapes` to a constant-time catalog read and cache revalidation
    /// to a fingerprint comparison.
    pub fn enable_shape_tracking(&mut self) {
        if self.shape_catalog.is_none() {
            let cat = ShapeCatalog::build(self);
            self.live_fp = Some(self.build_fingerprints(&cat));
            self.shape_catalog = Some(cat);
        }
    }

    /// Recomputes both fingerprint accumulators from a catalog + the table
    /// directory — the rebuild-from-scratch form the incremental path must
    /// stay bit-identical to.
    fn build_fingerprints(&self, cat: &ShapeCatalog) -> LiveFingerprints {
        let mut shapes = SetFingerprint::shapes();
        for sh in cat.shapes() {
            let name = self.table(sh.pred).map_or("", Table::name);
            shapes.add(shape_element_hash(name, &sh.rgs));
        }
        let mut preds = SetFingerprint::predicates();
        for (_, t) in self.tables() {
            if !t.is_empty() {
                preds.add(predicate_element_hash(t.name(), t.arity()));
            }
        }
        LiveFingerprints { shapes, preds }
    }

    /// Recovery path for a detected catalog desync: one full scan rebuilds
    /// catalog and fingerprints, restoring the in-sync invariant.
    fn rebuild_tracking(&mut self) {
        self.catalog_rebuilds += 1;
        soct_obs::global().db_catalog_rebuilds.inc();
        let cat = ShapeCatalog::build(self);
        self.live_fp = Some(self.build_fingerprints(&cat));
        self.shape_catalog = Some(cat);
    }

    /// The materialised shape catalog, if tracking is enabled.
    pub fn shape_catalog(&self) -> Option<&ShapeCatalog> {
        self.shape_catalog.as_ref()
    }

    /// The live shape-set fingerprint — the db-dependent cache key for
    /// linear rulesets — if tracking is enabled. Bit-identical to
    /// `fingerprint_shapes` over the current shape set.
    pub fn shape_fingerprint(&self) -> Option<Fingerprint> {
        self.live_fp.as_ref().map(|f| f.shapes.finish())
    }

    /// The live non-empty-predicate fingerprint — the db-dependent cache
    /// key for simple-linear and general rulesets — if tracking is enabled.
    /// Bit-identical to `fingerprint_predicates` over the current non-empty
    /// relations.
    pub fn predicate_fingerprint(&self) -> Option<Fingerprint> {
        self.live_fp.as_ref().map(|f| f.preds.finish())
    }

    /// Number of full catalog rebuilds forced by detected desyncs (0 when
    /// every write went through the engine API).
    pub fn catalog_rebuilds(&self) -> u64 {
        self.catalog_rebuilds
    }

    /// Bulk-loads an instance (tables are created on the fly, named after
    /// the schema).
    pub fn load_instance(&mut self, schema: &soct_model::Schema, instance: &Instance) {
        for a in instance.atoms() {
            self.create_table(a.pred, schema.name(a.pred), a.arity());
            self.insert(a.pred, &a.terms);
        }
    }

    /// Number of EXISTS queries served so far.
    pub fn exists_query_count(&self) -> u64 {
        self.exists_queries.load(Ordering::Relaxed)
    }

    /// All created tables with their predicates.
    pub fn tables(&self) -> impl Iterator<Item = (PredId, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (PredId(i as u32), t)))
    }

    pub(crate) fn tables_mut_for_load(&mut self) -> &mut Vec<Option<Table>> {
        &mut self.tables
    }

    /// Opens (or creates) a durable database directory with the default
    /// production I/O and the strictest sync policy: the last snapshot
    /// is loaded, the write-ahead log replayed (torn tail truncated at
    /// the first bad checksum), and catalog + fingerprints rebuilt
    /// bit-identical to an engine that never crashed. See
    /// [`crate::wal::open_durable`] for the injectable-I/O form.
    pub fn open_durable(
        dir: impl AsRef<std::path::Path>,
    ) -> std::io::Result<crate::wal::DurableDb> {
        crate::wal::open_durable(
            dir,
            crate::wal::SyncPolicy::Always,
            Box::new(crate::wal::RealIo::new()),
        )
    }
}

impl TupleSource for StorageEngine {
    fn non_empty_predicates(&self) -> Vec<PredId> {
        // Catalog metadata only: no data pages are touched (§5.3 step 1).
        self.tables()
            .filter(|(_, t)| !t.is_empty())
            .map(|(p, _)| p)
            .collect()
    }

    fn arity_of(&self, pred: PredId) -> usize {
        self.table(pred).map(Table::arity).unwrap_or(0)
    }

    fn row_count(&self, pred: PredId) -> u64 {
        self.table(pred).map(Table::row_count).unwrap_or(0)
    }

    fn scan(&self, pred: PredId, f: &mut dyn FnMut(&[u64]) -> bool) -> bool {
        match self.table(pred) {
            Some(t) => t.for_each_row(f),
            None => true,
        }
    }

    fn exists_where(&self, pred: PredId, conds: &[ColumnCondition]) -> bool {
        self.exists_queries.fetch_add(1, Ordering::Relaxed);
        self.table(pred)
            .is_some_and(|t| query::exists(t, conds, u64::MAX))
    }
}

/// [`TupleSource`] over a plain in-memory [`Instance`] — the storage-free
/// path used by unit tests and small examples.
pub struct InstanceSource<'a> {
    instance: &'a Instance,
    schema: &'a soct_model::Schema,
}

impl<'a> InstanceSource<'a> {
    pub fn new(schema: &'a soct_model::Schema, instance: &'a Instance) -> Self {
        InstanceSource { instance, schema }
    }
}

impl TupleSource for InstanceSource<'_> {
    fn non_empty_predicates(&self) -> Vec<PredId> {
        self.instance.non_empty_predicates()
    }

    fn arity_of(&self, pred: PredId) -> usize {
        self.schema.arity(pred)
    }

    fn row_count(&self, pred: PredId) -> u64 {
        self.instance.atoms_of(pred).len() as u64
    }

    fn scan(&self, pred: PredId, f: &mut dyn FnMut(&[u64]) -> bool) -> bool {
        // Safe by the MAX_ARITY contract `Schema::add_predicate` enforces.
        let mut row = [0u64; MAX_ARITY];
        for &idx in self.instance.atoms_of(pred) {
            let atom = self.instance.atom(idx);
            for (i, t) in atom.terms.iter().enumerate() {
                row[i] = t.pack();
            }
            if !f(&row[..atom.arity()]) {
                return false;
            }
        }
        true
    }

    fn exists_where(&self, pred: PredId, conds: &[ColumnCondition]) -> bool {
        let mut found = false;
        self.scan(pred, &mut |row| {
            if query::eval_all(conds, row) {
                found = true;
                false
            } else {
                true
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::{Atom, ConstId, Schema};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    #[test]
    fn create_insert_scan() {
        let mut e = StorageEngine::new();
        let p = PredId(0);
        e.create_table(p, "r", 2);
        e.insert(p, &[c(1), c(2)]);
        e.insert(p, &[c(3), c(3)]);
        assert_eq!(e.row_count(p), 2);
        let mut rows = Vec::new();
        e.scan(p, &mut |row| {
            rows.push(row.to_vec());
            true
        });
        assert_eq!(rows.len(), 2);
        assert_eq!(Term::unpack(rows[0][0]), Some(c(1)));
    }

    #[test]
    fn catalog_lists_only_non_empty() {
        let mut e = StorageEngine::new();
        e.create_table(PredId(0), "r", 2);
        e.create_table(PredId(3), "s", 1);
        e.insert(PredId(3), &[c(0)]);
        assert_eq!(e.non_empty_predicates(), vec![PredId(3)]);
    }

    #[test]
    fn exists_queries_are_counted() {
        let mut e = StorageEngine::new();
        e.create_table(PredId(0), "r", 2);
        e.insert(PredId(0), &[c(1), c(1)]);
        assert!(e.exists_where(PredId(0), &[ColumnCondition::Eq(0, 1)]));
        assert!(!e.exists_where(PredId(0), &[ColumnCondition::Ne(0, 1)]));
        assert_eq!(e.exists_query_count(), 2);
    }

    #[test]
    fn delete_removes_one_witness() {
        let mut e = StorageEngine::new();
        let p = PredId(0);
        e.create_table(p, "r", 2);
        e.insert(p, &[c(1), c(2)]);
        e.insert(p, &[c(1), c(2)]);
        assert!(e.delete(p, &[c(1), c(2)]));
        assert_eq!(e.row_count(p), 1, "duplicates go one at a time");
        assert!(e.delete(p, &[c(1), c(2)]));
        assert!(!e.delete(p, &[c(1), c(2)]), "gone");
        assert!(!e.delete(PredId(9), &[c(1)]), "missing table is a miss");
        assert!(!e.delete(p, &[c(1)]), "arity mismatch is a miss");
    }

    #[test]
    fn live_fingerprints_track_distinct_sets() {
        use soct_model::{fingerprint_predicates, fingerprint_shapes, Schema, Shape};
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 2).unwrap();
        let s = schema.add_predicate("s", 2).unwrap();
        let mut e = StorageEngine::new();
        e.create_table(r, "r", 2);
        e.create_table(s, "s", 2);
        e.insert(r, &[c(1), c(2)]);
        e.enable_shape_tracking();
        let fp0 = e.shape_fingerprint().unwrap();
        let pfp0 = e.predicate_fingerprint().unwrap();
        // A shape-preserving insert changes nothing.
        e.insert(r, &[c(8), c(9)]);
        assert_eq!(e.shape_fingerprint().unwrap(), fp0);
        assert_eq!(e.predicate_fingerprint().unwrap(), pfp0);
        // A new shape moves the shape fp but not the predicate fp.
        e.insert(r, &[c(3), c(3)]);
        let fp1 = e.shape_fingerprint().unwrap();
        assert_ne!(fp1, fp0);
        assert_eq!(e.predicate_fingerprint().unwrap(), pfp0);
        // Populating a fresh relation moves both.
        e.insert(s, &[c(4), c(5)]);
        assert_ne!(e.predicate_fingerprint().unwrap(), pfp0);
        // Deleting back to the original state restores both bit-exactly.
        assert!(e.delete(s, &[c(4), c(5)]));
        assert!(e.delete(r, &[c(3), c(3)]));
        assert_eq!(e.shape_fingerprint().unwrap(), fp0);
        assert_eq!(e.predicate_fingerprint().unwrap(), pfp0);
        // And both maintained fps equal the rebuild-from-scratch forms.
        assert_eq!(
            fp0,
            fingerprint_shapes(
                &schema,
                &[Shape {
                    pred: r,
                    rgs: soct_model::Rgs::identity(2)
                }]
            )
        );
        assert_eq!(pfp0, fingerprint_predicates(&schema, &[r]));
        assert_eq!(e.catalog_rebuilds(), 0);
    }

    #[test]
    fn load_instance_round_trips() {
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 2).unwrap();
        let mut inst = Instance::new();
        inst.insert(Atom::new(&schema, r, vec![c(0), c(1)]).unwrap());
        inst.insert(Atom::new(&schema, r, vec![c(1), c(1)]).unwrap());
        let mut e = StorageEngine::new();
        e.load_instance(&schema, &inst);
        assert_eq!(e.row_count(r), 2);
        assert_eq!(e.total_rows(), 2);
        assert_eq!(e.table(r).unwrap().name(), "r");
    }

    #[test]
    fn instance_source_agrees_with_engine() {
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 3).unwrap();
        let mut inst = Instance::new();
        inst.insert(Atom::new(&schema, r, vec![c(0), c(0), c(1)]).unwrap());
        let mut e = StorageEngine::new();
        e.load_instance(&schema, &inst);
        let src = InstanceSource::new(&schema, &inst);
        let conds = [ColumnCondition::Eq(0, 1), ColumnCondition::Ne(0, 2)];
        assert_eq!(
            src.exists_where(r, &conds),
            TupleSource::exists_where(&e, r, &conds)
        );
        assert_eq!(src.row_count(r), e.row_count(r));
        assert_eq!(src.non_empty_predicates(), e.non_empty_predicates());
    }
}
