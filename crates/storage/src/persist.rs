//! Binary persistence for storage engines.
//!
//! Format (little endian):
//! ```text
//! magic "SOCTDB1\0"
//! u32 table_count
//! per table:
//!   u32 pred_id,  u16 name_len, name bytes (UTF-8),  u16 arity,
//!   u32 page_count,  per page: u32 byte_len, raw page bytes
//! ```
//! Databases in the experiments are generated once and re-read by many runs
//! (the paper's `D★` is built once, §8.1); persistence makes that cheap.

use crate::engine::StorageEngine;
use crate::page::Page;
use crate::table::Table;
use bytes::{Buf, BufMut, BytesMut};
use soct_model::PredId;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 8] = b"SOCTDB1\0";

/// Highest predicate slot `from_bytes` accepts. Predicate ids are dense
/// interner indices in practice; a corrupt header with a huge id would
/// otherwise drive a `resize_with` allocation of that many table slots
/// and abort the process instead of returning `Err`.
const MAX_PRED_SLOT: usize = 1 << 22;

/// Serialises the engine to bytes.
pub fn to_bytes(engine: &StorageEngine) -> Vec<u8> {
    let tables: Vec<(PredId, &Table)> = engine.tables().collect();
    let mut out = BytesMut::new();
    out.put_slice(MAGIC);
    out.put_u32_le(tables.len() as u32);
    for (pred, table) in tables {
        out.put_u32_le(pred.0);
        let name = table.name().as_bytes();
        out.put_u16_le(name.len() as u16);
        out.put_slice(name);
        out.put_u16_le(table.arity() as u16);
        out.put_u32_le(table.pages().len() as u32);
        for page in table.pages() {
            out.put_u32_le(page.bytes().len() as u32);
            out.put_slice(page.bytes());
        }
    }
    out.to_vec()
}

/// Deserialises an engine from bytes.
pub fn from_bytes(mut data: &[u8]) -> io::Result<StorageEngine> {
    let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    if data.len() < 12 || &data[..8] != MAGIC {
        return Err(err("bad magic"));
    }
    data.advance(8);
    let table_count = data.get_u32_le() as usize;
    // Every table needs ≥ 12 header bytes, so a count the remaining data
    // cannot possibly hold is corruption — reject before trusting it.
    if table_count > data.remaining() / 12 {
        return Err(err("implausible table count"));
    }
    let mut engine = StorageEngine::new();
    for _ in 0..table_count {
        if data.remaining() < 6 {
            return Err(err("truncated table header"));
        }
        let pred = PredId(data.get_u32_le());
        let name_len = data.get_u16_le() as usize;
        if data.remaining() < name_len {
            return Err(err("truncated name"));
        }
        let name = std::str::from_utf8(&data[..name_len])
            .map_err(|_| err("name not UTF-8"))?
            .to_string();
        data.advance(name_len);
        if data.remaining() < 6 {
            return Err(err("truncated table header"));
        }
        let arity = data.get_u16_le() as usize;
        if arity == 0 {
            return Err(err("zero arity"));
        }
        let page_count = data.get_u32_le() as usize;
        // Each page carries a 4-byte length header; don't size the vec
        // from a count the data cannot back.
        if page_count > data.remaining() / 4 {
            return Err(err("implausible page count"));
        }
        let mut pages = Vec::with_capacity(page_count);
        for _ in 0..page_count {
            if data.remaining() < 4 {
                return Err(err("truncated page header"));
            }
            let len = data.get_u32_le() as usize;
            if data.remaining() < len || len % (arity * 8) != 0 {
                return Err(err("corrupt page"));
            }
            pages.push(Page::from_bytes(arity, &data[..len]));
            data.advance(len);
        }
        let table = Table::from_pages(name, arity, pages);
        let slot = pred.index();
        if slot > MAX_PRED_SLOT {
            return Err(err("implausible predicate id"));
        }
        let tables = engine.tables_mut_for_load();
        if slot >= tables.len() {
            tables.resize_with(slot + 1, || None);
        }
        tables[slot] = Some(table);
    }
    Ok(engine)
}

/// Writes the engine to a file.
pub fn save(engine: &StorageEngine, path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, to_bytes(engine))
}

/// Reads an engine from a file.
pub fn load(path: impl AsRef<Path>) -> io::Result<StorageEngine> {
    from_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TupleSource;
    use soct_model::{ConstId, Term};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    fn sample() -> StorageEngine {
        let mut e = StorageEngine::new();
        e.create_table(PredId(0), "r", 2);
        e.create_table(PredId(2), "s", 3);
        for i in 0..2000 {
            e.insert(PredId(0), &[c(i), c(i + 1)]);
        }
        e.insert(PredId(2), &[c(1), c(1), c(2)]);
        e
    }

    #[test]
    fn round_trip_preserves_rows() {
        let e = sample();
        let bytes = to_bytes(&e);
        let e2 = from_bytes(&bytes).unwrap();
        assert_eq!(e2.row_count(PredId(0)), 2000);
        assert_eq!(e2.row_count(PredId(2)), 1);
        assert_eq!(e2.table(PredId(0)).unwrap().name(), "r");
        assert_eq!(e2.arity_of(PredId(2)), 3);
        // Spot-check data content.
        let mut last = Vec::new();
        e2.scan(PredId(0), &mut |row| {
            last = row.to_vec();
            true
        });
        assert_eq!(Term::unpack(last[1]), Some(c(2000)));
    }

    #[test]
    fn corrupt_data_is_rejected() {
        assert!(from_bytes(b"garbage").is_err());
        let mut bytes = to_bytes(&sample());
        bytes[3] = b'X';
        assert!(from_bytes(&bytes).is_err());
        // Truncation.
        let good = to_bytes(&sample());
        assert!(from_bytes(&good[..good.len() / 2]).is_err());
    }

    #[test]
    fn corrupt_headers_are_rejected_not_panics() {
        // Magic alone, or magic plus a count promising tables that never
        // arrive: every truncation point must yield Err, never a panic.
        assert!(from_bytes(MAGIC).is_err());
        let mut claims_five = MAGIC.to_vec();
        claims_five.extend_from_slice(&5u32.to_le_bytes());
        assert!(from_bytes(&claims_five).is_err());
        // A table header cut off inside the name, the arity, and the page
        // length field respectively.
        let good = to_bytes(&sample());
        for cut in [13, 14, 15, 16, 17, 18, 19, 20, 21] {
            assert!(from_bytes(&good[..cut]).is_err(), "cut at {cut} bytes");
        }
        // A name length pointing past the end of the buffer.
        let mut bad_name_len = good.clone();
        bad_name_len[16] = 0xFF;
        bad_name_len[17] = 0xFF;
        assert!(from_bytes(&bad_name_len).is_err());
        // Counts and ids the data cannot back must be rejected before any
        // allocation is sized from them (a flipped high byte would
        // otherwise abort the process, not return Err).
        let table = |pred: u32, pages: u32| {
            let mut b = MAGIC.to_vec();
            b.extend_from_slice(&1u32.to_le_bytes());
            b.extend_from_slice(&pred.to_le_bytes());
            b.extend_from_slice(&1u16.to_le_bytes());
            b.push(b'r');
            b.extend_from_slice(&1u16.to_le_bytes());
            b.extend_from_slice(&pages.to_le_bytes());
            b
        };
        assert!(from_bytes(&table(u32::MAX, 0)).is_err(), "huge pred id");
        assert!(from_bytes(&table(0, u32::MAX)).is_err(), "huge page count");
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(48))]

        /// `to_bytes`/`from_bytes` round-trips an arbitrary engine
        /// bit-identically: same serialised bytes, same tables (names,
        /// arities, row data), and the same derived shape catalog.
        #[test]
        fn round_trip_is_bit_identical(seed in proptest::any::<u64>()) {
            use rand::{RngExt, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut engine = StorageEngine::new();
            let n_tables = rng.random_range(0usize..5);
            for t in 0..n_tables {
                // Sparse, unordered predicate ids exercise the slot map.
                let pred = PredId((t * 3 + rng.random_range(0u32..3) as usize) as u32);
                let arity = rng.random_range(1usize..=4);
                let name_len = rng.random_range(1usize..8);
                let name: String = (0..name_len)
                    .map(|_| (b'a' + rng.random_range(0u8..26)) as char)
                    .collect();
                engine.create_table(pred, &name, arity);
                // Enough rows to spill across pages sometimes.
                for _ in 0..rng.random_range(0usize..600) {
                    let row: Vec<Term> = (0..arity)
                        .map(|_| c(rng.random_range(0u32..50)))
                        .collect();
                    engine.insert(pred, &row);
                }
            }

            let bytes = to_bytes(&engine);
            let mut restored = from_bytes(&bytes).expect("round trip must parse");
            // Bit-identical re-serialisation.
            proptest::prop_assert_eq!(to_bytes(&restored), bytes);
            // Tables and data agree.
            let orig: Vec<(PredId, String, usize, u64)> = engine
                .tables()
                .map(|(p, t)| (p, t.name().to_string(), t.arity(), t.row_count()))
                .collect();
            let back: Vec<(PredId, String, usize, u64)> = restored
                .tables()
                .map(|(p, t)| (p, t.name().to_string(), t.arity(), t.row_count()))
                .collect();
            proptest::prop_assert_eq!(&orig, &back);
            for (pred, _, _, _) in &orig {
                let mut rows_a = Vec::new();
                engine.scan(*pred, &mut |r| { rows_a.push(r.to_vec()); true });
                let mut rows_b = Vec::new();
                restored.scan(*pred, &mut |r| { rows_b.push(r.to_vec()); true });
                proptest::prop_assert_eq!(&rows_a, &rows_b);
            }
            // The shape catalog is derived state: building it on both
            // sides from scratch must agree exactly.
            engine.enable_shape_tracking();
            restored.enable_shape_tracking();
            proptest::prop_assert_eq!(
                engine.shape_catalog().unwrap().shapes(),
                restored.shape_catalog().unwrap().shapes()
            );
        }

        /// Arbitrary mutations of a valid image either parse to the same
        /// bytes or fail cleanly — `from_bytes` never panics.
        #[test]
        fn corrupted_bytes_never_panic(seed in proptest::any::<u64>()) {
            use rand::{RngExt, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let good = to_bytes(&sample());
            let mut bytes = good.clone();
            match rng.random_range(0u8..3) {
                // Truncate at a random point.
                0 => bytes.truncate(rng.random_range(0usize..bytes.len())),
                // Flip one random byte.
                1 => {
                    let i = rng.random_range(0usize..bytes.len());
                    bytes[i] ^= 1 << rng.random_range(0u8..8);
                }
                // Append garbage (ignored by the current format).
                _ => bytes.extend_from_slice(&[0xAB; 7]),
            }
            if let Ok(engine) = from_bytes(&bytes) {
                // A surviving image must still round-trip cleanly.
                proptest::prop_assert!(from_bytes(&to_bytes(&engine)).is_ok());
            } // Err: clean rejection is the expected path.
        }
    }

    #[test]
    fn wal_checkpoint_round_trips_the_persist_image() {
        use crate::wal::{open_durable, RealIo, SyncPolicy, WalEntry};
        let dir = std::env::temp_dir().join(format!("soct_persist_wal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let want = sample();
        {
            let mut d = open_durable(&dir, SyncPolicy::Batch, Box::new(RealIo::new())).unwrap();
            for (pred, table) in want.tables() {
                let mut rows = Vec::new();
                want.scan(pred, &mut |r| {
                    rows.push(r.to_vec());
                    true
                });
                for row in rows {
                    let e = WalEntry {
                        insert: true,
                        pred,
                        name: table.name().to_string(),
                        row,
                    };
                    d.wal.append_ops(std::slice::from_ref(&e)).unwrap();
                    d.engine.create_table(pred, &e.name, e.row.len());
                    d.engine.insert_packed(pred, &e.row);
                }
            }
            // The checkpoint snapshot embeds the persist-format image.
            d.wal.checkpoint(&d.engine, &d.schema, &d.symbols).unwrap();
            assert_eq!(to_bytes(&d.engine), to_bytes(&want));
        }
        let r =
            crate::wal::open_durable(&dir, SyncPolicy::Always, Box::new(RealIo::new())).unwrap();
        assert_eq!(r.report.replayed_records, 0, "snapshot carries it all");
        assert_eq!(to_bytes(&r.engine), to_bytes(&want));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("soct_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.soct");
        let e = sample();
        save(&e, &path).unwrap();
        let e2 = load(&path).unwrap();
        assert_eq!(e2.total_rows(), e.total_rows());
        std::fs::remove_file(&path).ok();
    }
}
