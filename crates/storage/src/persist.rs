//! Binary persistence for storage engines.
//!
//! Format (little endian):
//! ```text
//! magic "SOCTDB1\0"
//! u32 table_count
//! per table:
//!   u32 pred_id,  u16 name_len, name bytes (UTF-8),  u16 arity,
//!   u32 page_count,  per page: u32 byte_len, raw page bytes
//! ```
//! Databases in the experiments are generated once and re-read by many runs
//! (the paper's `D★` is built once, §8.1); persistence makes that cheap.

use crate::engine::StorageEngine;
use crate::page::Page;
use crate::table::Table;
use bytes::{Buf, BufMut, BytesMut};
use soct_model::PredId;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 8] = b"SOCTDB1\0";

/// Serialises the engine to bytes.
pub fn to_bytes(engine: &StorageEngine) -> Vec<u8> {
    let tables: Vec<(PredId, &Table)> = engine.tables().collect();
    let mut out = BytesMut::new();
    out.put_slice(MAGIC);
    out.put_u32_le(tables.len() as u32);
    for (pred, table) in tables {
        out.put_u32_le(pred.0);
        let name = table.name().as_bytes();
        out.put_u16_le(name.len() as u16);
        out.put_slice(name);
        out.put_u16_le(table.arity() as u16);
        out.put_u32_le(table.pages().len() as u32);
        for page in table.pages() {
            out.put_u32_le(page.bytes().len() as u32);
            out.put_slice(page.bytes());
        }
    }
    out.to_vec()
}

/// Deserialises an engine from bytes.
pub fn from_bytes(mut data: &[u8]) -> io::Result<StorageEngine> {
    let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    if data.len() < 12 || &data[..8] != MAGIC {
        return Err(err("bad magic"));
    }
    data.advance(8);
    let table_count = data.get_u32_le() as usize;
    let mut engine = StorageEngine::new();
    for _ in 0..table_count {
        if data.remaining() < 4 {
            return Err(err("truncated table header"));
        }
        let pred = PredId(data.get_u32_le());
        let name_len = data.get_u16_le() as usize;
        if data.remaining() < name_len {
            return Err(err("truncated name"));
        }
        let name = std::str::from_utf8(&data[..name_len])
            .map_err(|_| err("name not UTF-8"))?
            .to_string();
        data.advance(name_len);
        let arity = data.get_u16_le() as usize;
        if arity == 0 {
            return Err(err("zero arity"));
        }
        let page_count = data.get_u32_le() as usize;
        let mut pages = Vec::with_capacity(page_count);
        for _ in 0..page_count {
            if data.remaining() < 4 {
                return Err(err("truncated page header"));
            }
            let len = data.get_u32_le() as usize;
            if data.remaining() < len || len % (arity * 8) != 0 {
                return Err(err("corrupt page"));
            }
            pages.push(Page::from_bytes(arity, &data[..len]));
            data.advance(len);
        }
        let table = Table::from_pages(name, arity, pages);
        let slot = pred.index();
        let tables = engine.tables_mut_for_load();
        if slot >= tables.len() {
            tables.resize_with(slot + 1, || None);
        }
        tables[slot] = Some(table);
    }
    Ok(engine)
}

/// Writes the engine to a file.
pub fn save(engine: &StorageEngine, path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, to_bytes(engine))
}

/// Reads an engine from a file.
pub fn load(path: impl AsRef<Path>) -> io::Result<StorageEngine> {
    from_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TupleSource;
    use soct_model::{ConstId, Term};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    fn sample() -> StorageEngine {
        let mut e = StorageEngine::new();
        e.create_table(PredId(0), "r", 2);
        e.create_table(PredId(2), "s", 3);
        for i in 0..2000 {
            e.insert(PredId(0), &[c(i), c(i + 1)]);
        }
        e.insert(PredId(2), &[c(1), c(1), c(2)]);
        e
    }

    #[test]
    fn round_trip_preserves_rows() {
        let e = sample();
        let bytes = to_bytes(&e);
        let e2 = from_bytes(&bytes).unwrap();
        assert_eq!(e2.row_count(PredId(0)), 2000);
        assert_eq!(e2.row_count(PredId(2)), 1);
        assert_eq!(e2.table(PredId(0)).unwrap().name(), "r");
        assert_eq!(e2.arity_of(PredId(2)), 3);
        // Spot-check data content.
        let mut last = Vec::new();
        e2.scan(PredId(0), &mut |row| {
            last = row.to_vec();
            true
        });
        assert_eq!(Term::unpack(last[1]), Some(c(2000)));
    }

    #[test]
    fn corrupt_data_is_rejected() {
        assert!(from_bytes(b"garbage").is_err());
        let mut bytes = to_bytes(&sample());
        bytes[3] = b'X';
        assert!(from_bytes(&bytes).is_err());
        // Truncation.
        let good = to_bytes(&sample());
        assert!(from_bytes(&good[..good.len() / 2]).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("soct_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.soct");
        let e = sample();
        save(&e, &path).unwrap();
        let e2 = load(&path).unwrap();
        assert_eq!(e2.total_rows(), e.total_rows());
        std::fs::remove_file(&path).ok();
    }
}
