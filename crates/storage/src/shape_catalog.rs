//! Materialised, incrementally-maintained shape catalogs — the §10 future
//! work of the paper, implemented:
//!
//! > "An interesting direction is to materialize and incrementally keep
//! > updated the shapes in a database, which will improve the performance
//! > of the db-dependent component."
//!
//! The catalog keeps, per relation, the multiset of tuple shapes. Updating
//! it costs O(arity²) per insert (one RGS computation), after which
//! `FindShapes` becomes a constant-time catalog read — the db-dependent
//! component of `IsChaseFinite[L]` collapses to nothing. Counts (not just
//! membership) are kept so deletions can be supported by decrementing.

use crate::engine::TupleSource;
use soct_model::fxhash::FxHashMap;
use soct_model::{PredId, Rgs, Shape};

/// A multiset of shapes per relation.
///
/// The catalog is *provably in sync* with its source as long as every write
/// flows through [`ShapeCatalog::on_insert`] / [`ShapeCatalog::on_delete`]
/// with rows that actually entered or left the store — the contract
/// `StorageEngine` upholds by checking row existence before notifying.
/// A delete for a shape the catalog never saw cannot be reconciled locally;
/// it marks the catalog **dirty** ([`ShapeCatalog::is_dirty`]) and callers
/// must rebuild with [`ShapeCatalog::build`] before trusting
/// [`ShapeCatalog::shapes`] again — there is no silent-wrong-shapes state.
#[derive(Default, Debug, Clone)]
pub struct ShapeCatalog {
    per_pred: FxHashMap<PredId, FxHashMap<Rgs, u64>>,
    tuples_seen: u64,
    dirty: bool,
}

impl ShapeCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a catalog from an existing source by one full scan (the
    /// offline computation §9.3 suggests when both online strategies are
    /// too slow).
    pub fn build(src: &dyn TupleSource) -> Self {
        let mut cat = ShapeCatalog::new();
        for pred in src.non_empty_predicates() {
            src.scan(pred, &mut |row| {
                cat.on_insert(pred, row);
                true
            });
        }
        cat
    }

    /// Registers one inserted tuple. Returns `true` when the tuple's shape
    /// is *new* to its relation (multiplicity 0 → 1) — the distinct-set
    /// transition that changes the shape-set fingerprint.
    #[inline]
    pub fn on_insert(&mut self, pred: PredId, row: &[u64]) -> bool {
        let rgs = Rgs::of_row(row);
        let count = self
            .per_pred
            .entry(pred)
            .or_default()
            .entry(rgs)
            .or_insert(0);
        *count += 1;
        self.tuples_seen += 1;
        *count == 1
    }

    /// Registers one deleted tuple.
    ///
    /// Returns `Some(true)` when the last witness of the shape left
    /// (multiplicity 1 → 0 — the transition that changes the shape-set
    /// fingerprint), `Some(false)` when witnesses remain, and `None` when
    /// the shape was not present at all. `None` means the catalog and its
    /// source have diverged: the catalog marks itself dirty and every shape
    /// query is suspect until a rebuild (see the type-level contract).
    pub fn on_delete(&mut self, pred: PredId, row: &[u64]) -> Option<bool> {
        let rgs = Rgs::of_row(row);
        let Some(count) = self.per_pred.get_mut(&pred).and_then(|m| m.get_mut(&rgs)) else {
            self.dirty = true;
            return None;
        };
        *count -= 1;
        let vanished = *count == 0;
        if vanished {
            let shapes = self.per_pred.get_mut(&pred).unwrap();
            shapes.remove(&rgs);
            if shapes.is_empty() {
                self.per_pred.remove(&pred);
            }
        }
        self.tuples_seen -= 1;
        Some(vanished)
    }

    /// True once a delete could not be reconciled: shape queries may
    /// under-report until the catalog is rebuilt from its source.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// The distinct shapes, sorted — same contract as `FindShapes`.
    pub fn shapes(&self) -> Vec<Shape> {
        let mut out: Vec<Shape> = self
            .per_pred
            .iter()
            .flat_map(|(&pred, shapes)| {
                shapes.keys().map(move |rgs| Shape {
                    pred,
                    rgs: rgs.clone(),
                })
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Shapes of one relation, sorted.
    pub fn shapes_of(&self, pred: PredId) -> Vec<Rgs> {
        let mut out: Vec<Rgs> = self
            .per_pred
            .get(&pred)
            .map(|m| m.keys().cloned().collect())
            .unwrap_or_default();
        out.sort_unstable();
        out
    }

    /// Multiplicity of a shape.
    pub fn count(&self, pred: PredId, rgs: &Rgs) -> u64 {
        self.per_pred
            .get(&pred)
            .and_then(|m| m.get(rgs))
            .copied()
            .unwrap_or(0)
    }

    /// Number of distinct shapes across relations.
    pub fn num_shapes(&self) -> usize {
        self.per_pred.values().map(FxHashMap::len).sum()
    }

    /// Tuples accounted for.
    pub fn tuples_seen(&self) -> u64 {
        self.tuples_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StorageEngine;
    use soct_model::{ConstId, Term};

    fn c(i: u32) -> u64 {
        Term::Const(ConstId(i)).pack()
    }

    #[test]
    fn incremental_matches_bulk_build() {
        let mut engine = StorageEngine::new();
        let p = PredId(0);
        engine.create_table(p, "r", 3);
        let rows: Vec<[u64; 3]> = vec![
            [c(1), c(1), c(2)],
            [c(3), c(4), c(5)],
            [c(6), c(6), c(6)],
            [c(7), c(7), c(8)],
        ];
        let mut incremental = ShapeCatalog::new();
        for row in &rows {
            engine.insert_packed(p, row);
            incremental.on_insert(p, row);
        }
        let bulk = ShapeCatalog::build(&engine);
        assert_eq!(incremental.shapes(), bulk.shapes());
        assert_eq!(incremental.num_shapes(), 3);
        assert_eq!(incremental.count(p, &Rgs::canonicalize(&[1, 1, 2])), 2);
    }

    #[test]
    fn deletion_decrements_and_removes() {
        let p = PredId(0);
        let mut cat = ShapeCatalog::new();
        assert!(cat.on_insert(p, &[c(1), c(1)]), "first witness of shape");
        assert!(!cat.on_insert(p, &[c(2), c(2)]), "shape already present");
        assert_eq!(cat.num_shapes(), 1);
        assert_eq!(cat.on_delete(p, &[c(1), c(1)]), Some(false));
        assert_eq!(cat.num_shapes(), 1, "one witness left");
        assert_eq!(cat.on_delete(p, &[c(2), c(2)]), Some(true));
        assert_eq!(cat.num_shapes(), 0);
        assert!(!cat.is_dirty());
        assert_eq!(cat.on_delete(p, &[c(3), c(3)]), None, "desync detected");
        assert!(cat.is_dirty(), "desync leaves a visible mark");
        assert_eq!(cat.tuples_seen(), 0);
    }

    #[test]
    fn matches_findshapes_contract() {
        // Sorted output with the same Shape ordering as shape_query.
        let mut engine = StorageEngine::new();
        let p = PredId(2);
        engine.create_table(p, "s", 2);
        engine.insert_packed(p, &[c(1), c(2)]);
        engine.insert_packed(p, &[c(3), c(3)]);
        let cat = ShapeCatalog::build(&engine);
        let (via_queries, _) = crate::shape_query::find_shapes_apriori(&engine, p);
        assert_eq!(cat.shapes_of(p), via_queries);
    }
}
