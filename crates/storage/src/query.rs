//! Column conditions and the Boolean EXISTS queries of §5.4.
//!
//! The in-database `FindShapes` translates every shape into a query
//!
//! ```sql
//! SELECT CASE WHEN EXISTS
//!   (SELECT * FROM R WHERE Equality_Conditions AND Disequality_Conditions)
//! THEN 1 ELSE 0 END
//! ```
//!
//! Our engine evaluates the inner `EXISTS` as an early-exit sequential scan,
//! which is also what a row-store without a suitable index does; the SQL
//! rendering is kept for logs and tests.

use crate::table::Table;
use std::fmt;

/// A column-to-column comparison, 0-based.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ColumnCondition {
    /// `a{i} = a{j}`
    Eq(u16, u16),
    /// `a{i} != a{j}`
    Ne(u16, u16),
}

impl ColumnCondition {
    /// Evaluates the condition on a row of packed values.
    #[inline]
    pub fn eval(&self, row: &[u64]) -> bool {
        match *self {
            ColumnCondition::Eq(i, j) => row[i as usize] == row[j as usize],
            ColumnCondition::Ne(i, j) => row[i as usize] != row[j as usize],
        }
    }
}

impl fmt::Display for ColumnCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ColumnCondition::Eq(i, j) => write!(f, "a{}=a{}", i + 1, j + 1),
            ColumnCondition::Ne(i, j) => write!(f, "a{}!=a{}", i + 1, j + 1),
        }
    }
}

/// Evaluates all conditions on a row.
#[inline]
pub fn eval_all(conds: &[ColumnCondition], row: &[u64]) -> bool {
    conds.iter().all(|c| c.eval(row))
}

/// `EXISTS (SELECT * FROM table WHERE conds)` over at most `limit` rows
/// (`u64::MAX` = whole table), with early exit on the first witness.
pub fn exists(table: &Table, conds: &[ColumnCondition], limit: u64) -> bool {
    let mut found = false;
    table.for_each_row_limited(limit, &mut |row| {
        if eval_all(conds, row) {
            found = true;
            false // stop scanning
        } else {
            true
        }
    });
    found
}

/// `SELECT COUNT(*) FROM table WHERE conds` over at most `limit` rows.
pub fn count(table: &Table, conds: &[ColumnCondition], limit: u64) -> u64 {
    let mut n = 0u64;
    table.for_each_row_limited(limit, &mut |row| {
        if eval_all(conds, row) {
            n += 1;
        }
        true
    });
    n
}

/// Renders the §5.4 query for logging (`SELECT CASE WHEN EXISTS …`).
pub fn render_exists_sql(table: &Table, conds: &[ColumnCondition]) -> String {
    let mut out = String::from("SELECT CASE WHEN EXISTS (SELECT * FROM ");
    out.push_str(table.name());
    if !conds.is_empty() {
        out.push_str(" WHERE ");
        for (i, c) in conds.iter().enumerate() {
            if i > 0 {
                out.push_str(" AND ");
            }
            out.push_str(&c.to_string());
        }
    }
    out.push_str(") THEN 1 ELSE 0 END");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("R", 3);
        t.insert_packed(&[1, 1, 2]);
        t.insert_packed(&[3, 4, 5]);
        t.insert_packed(&[6, 6, 6]);
        t
    }

    #[test]
    fn eq_and_ne_evaluate() {
        let c_eq = ColumnCondition::Eq(0, 1);
        let c_ne = ColumnCondition::Ne(1, 2);
        assert!(c_eq.eval(&[1, 1, 2]));
        assert!(!c_eq.eval(&[1, 2, 2]));
        assert!(c_ne.eval(&[1, 1, 2]));
        assert!(!c_ne.eval(&[1, 2, 2]));
    }

    #[test]
    fn exists_early_exits() {
        let t = table();
        // Shape (1,1,2): a1=a2 AND a2!=a3.
        assert!(exists(
            &t,
            &[ColumnCondition::Eq(0, 1), ColumnCondition::Ne(1, 2)],
            u64::MAX
        ));
        // Shape (1,1,1): a1=a2=a3.
        assert!(exists(
            &t,
            &[ColumnCondition::Eq(0, 1), ColumnCondition::Eq(1, 2)],
            u64::MAX
        ));
        // Shape (1,2,1): no witness.
        assert!(!exists(
            &t,
            &[ColumnCondition::Ne(0, 1), ColumnCondition::Eq(0, 2),],
            u64::MAX
        ));
    }

    #[test]
    fn limit_restricts_the_view() {
        let t = table();
        // (1,1,1) only appears in row 3; a 2-row view misses it.
        let conds = [ColumnCondition::Eq(0, 1), ColumnCondition::Eq(1, 2)];
        assert!(!exists(&t, &conds, 2));
        assert!(exists(&t, &conds, 3));
    }

    #[test]
    fn count_matches() {
        let t = table();
        assert_eq!(count(&t, &[ColumnCondition::Eq(0, 1)], u64::MAX), 2);
        assert_eq!(count(&t, &[], u64::MAX), 3);
    }

    #[test]
    fn sql_rendering_matches_paper_example() {
        let t = table();
        let sql = render_exists_sql(&t, &[ColumnCondition::Eq(0, 1), ColumnCondition::Ne(1, 2)]);
        assert_eq!(
            sql,
            "SELECT CASE WHEN EXISTS (SELECT * FROM R WHERE a1=a2 AND a2!=a3) THEN 1 ELSE 0 END"
        );
    }
}
