//! Fixed-size pages of fixed-width rows.
//!
//! The storage engine plays the role PostgreSQL plays in the paper (§6, §9):
//! it holds the generated databases and answers the three queries the
//! termination algorithms need (catalog listing, shape EXISTS queries, full
//! scans). Rows are tuples of packed terms ([`soct_model::Term::pack`]), so
//! a row is `arity × 8` bytes; pages are 8 KiB buffers allocated with
//! [`bytes::BytesMut`], giving scans good locality without pointer chasing.

use bytes::{BufMut, BytesMut};

/// Page capacity in bytes.
pub const PAGE_SIZE: usize = 8192;

/// One page: a byte buffer holding complete rows of a single table.
#[derive(Debug, Clone)]
pub struct Page {
    buf: BytesMut,
    rows: u32,
    row_width: usize,
}

impl Page {
    /// Creates an empty page for rows of `arity` columns.
    pub fn new(arity: usize) -> Self {
        let row_width = arity * 8;
        assert!(
            row_width > 0 && row_width <= PAGE_SIZE,
            "arity out of range"
        );
        Page {
            buf: BytesMut::with_capacity(PAGE_SIZE - PAGE_SIZE % row_width),
            rows: 0,
            row_width,
        }
    }

    /// Rows a page of this row width can hold.
    #[inline]
    pub fn capacity_rows(&self) -> usize {
        PAGE_SIZE / self.row_width
    }

    /// Rows currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows as usize
    }

    /// True when no row fits anymore.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity_rows()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Appends a row of packed terms. Panics if full or width mismatch.
    pub fn push_row(&mut self, row: &[u64]) {
        assert!(!self.is_full(), "page overflow");
        assert_eq!(row.len() * 8, self.row_width, "row width mismatch");
        for &v in row {
            self.buf.put_u64_le(v);
        }
        self.rows += 1;
    }

    /// Decodes row `i` into `out` (length = arity).
    #[inline]
    pub fn read_row(&self, i: usize, out: &mut [u64]) {
        debug_assert!(i < self.len());
        debug_assert_eq!(out.len() * 8, self.row_width);
        let base = i * self.row_width;
        let bytes = &self.buf[base..base + self.row_width];
        for (j, chunk) in bytes.chunks_exact(8).enumerate() {
            out[j] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
    }

    /// Visits every row with a reusable decode buffer; stops early when the
    /// callback returns `false`. Returns `false` on early exit.
    pub fn for_each_row(&self, scratch: &mut [u64], f: &mut dyn FnMut(&[u64]) -> bool) -> bool {
        for i in 0..self.len() {
            self.read_row(i, scratch);
            if !f(scratch) {
                return false;
            }
        }
        true
    }

    /// Overwrites row `i` in place (same width). Panics on out-of-range.
    pub fn overwrite_row(&mut self, i: usize, row: &[u64]) {
        assert!(i < self.len(), "row index out of range");
        assert_eq!(row.len() * 8, self.row_width, "row width mismatch");
        let base = i * self.row_width;
        for (j, &v) in row.iter().enumerate() {
            let at = base + j * 8;
            self.buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Removes the last row (the O(1) half of a table-level swap-remove).
    /// Panics if empty.
    pub fn pop_row(&mut self) {
        assert!(!self.is_empty(), "pop from empty page");
        self.rows -= 1;
        self.buf.truncate(self.rows as usize * self.row_width);
    }

    /// Raw page bytes (for persistence).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Rebuilds a page from raw bytes (for persistence).
    pub fn from_bytes(arity: usize, data: &[u8]) -> Self {
        let row_width = arity * 8;
        assert_eq!(data.len() % row_width, 0, "corrupt page");
        let mut buf = BytesMut::with_capacity(data.len());
        buf.extend_from_slice(data);
        Page {
            rows: (data.len() / row_width) as u32,
            buf,
            row_width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_round_trip() {
        let mut p = Page::new(3);
        p.push_row(&[1, 2, 3]);
        p.push_row(&[4, 5, 6]);
        let mut out = [0u64; 3];
        p.read_row(0, &mut out);
        assert_eq!(out, [1, 2, 3]);
        p.read_row(1, &mut out);
        assert_eq!(out, [4, 5, 6]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn capacity_math() {
        let p = Page::new(1);
        assert_eq!(p.capacity_rows(), PAGE_SIZE / 8);
        let p5 = Page::new(5);
        assert_eq!(p5.capacity_rows(), PAGE_SIZE / 40);
    }

    #[test]
    fn fills_up_exactly() {
        let mut p = Page::new(4);
        let cap = p.capacity_rows();
        for i in 0..cap {
            p.push_row(&[i as u64; 4]);
        }
        assert!(p.is_full());
        let mut out = [0u64; 4];
        p.read_row(cap - 1, &mut out);
        assert_eq!(out[0], (cap - 1) as u64);
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn overflow_panics() {
        let mut p = Page::new(1024); // 8192-byte rows: exactly one per page
        p.push_row(&vec![0u64; 1024]);
        p.push_row(&vec![0u64; 1024]);
    }

    #[test]
    fn early_exit_scan() {
        let mut p = Page::new(1);
        for i in 0..10 {
            p.push_row(&[i]);
        }
        let mut seen = 0;
        let mut scratch = [0u64; 1];
        let complete = p.for_each_row(&mut scratch, &mut |row| {
            seen += 1;
            row[0] < 4
        });
        assert!(!complete);
        // Rows 0..=3 return true; row 4 returns false and stops the scan.
        assert_eq!(seen, 5);
    }

    #[test]
    fn overwrite_and_pop() {
        let mut p = Page::new(2);
        p.push_row(&[1, 2]);
        p.push_row(&[3, 4]);
        p.push_row(&[5, 6]);
        p.overwrite_row(0, &[5, 6]);
        p.pop_row();
        assert_eq!(p.len(), 2);
        let mut out = [0u64; 2];
        p.read_row(0, &mut out);
        assert_eq!(out, [5, 6]);
        p.read_row(1, &mut out);
        assert_eq!(out, [3, 4]);
        // Popped space is reusable: the page accepts a fresh row again.
        p.push_row(&[7, 8]);
        p.read_row(2, &mut out);
        assert_eq!(out, [7, 8]);
    }

    #[test]
    fn bytes_round_trip() {
        let mut p = Page::new(2);
        p.push_row(&[7, 8]);
        p.push_row(&[9, 10]);
        let q = Page::from_bytes(2, p.bytes());
        assert_eq!(q.len(), 2);
        let mut out = [0u64; 2];
        q.read_row(1, &mut out);
        assert_eq!(out, [9, 10]);
    }
}
