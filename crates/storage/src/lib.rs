//! # soct-storage
//!
//! The embedded relational storage engine standing in for the PostgreSQL
//! instance of the paper's testbed (§6, §9): paged fixed-width tables over
//! `bytes` buffers, a catalog answering the non-empty-relations query
//! without touching data (§5.3), early-exit EXISTS queries with
//! equality/disequality column conditions, Apriori-pruned shape discovery
//! over the partition lattice (§5.4), first-k-rows views (the `D^s_Σ`
//! virtual databases of §8.1), and binary persistence.
//!
//! The [`TupleSource`] trait is the narrow interface the termination
//! checkers consume; engines, views, and plain instances all implement it.
//!
//! Durability lives in [`wal`]: a checksummed, segment-rotated
//! write-ahead log with checkpointing into the [`persist`] snapshot
//! format, crash recovery via [`StorageEngine::open_durable`], and a
//! fault-injection harness ([`wal::FaultyIo`]) proving the
//! acked-prefix recovery contract.

pub mod engine;
pub mod page;
pub mod persist;
pub mod query;
pub mod shape_catalog;
pub mod shape_query;
pub mod table;
pub mod view;
pub mod wal;

pub use engine::{InstanceSource, StorageEngine, TupleSource};
pub use page::{Page, PAGE_SIZE};
pub use query::{render_exists_sql, ColumnCondition};
pub use shape_catalog::ShapeCatalog;
pub use shape_query::{
    find_shapes_apriori, find_shapes_exhaustive, shape_conditions, shape_eq_conditions,
    ShapeQueryStats,
};
pub use table::Table;
pub use view::LimitView;
pub use wal::{
    open_durable, DurableDb, Fault, FaultyIo, RealIo, RecoveryReport, SyncPolicy, Wal, WalEntry,
    WalIo,
};
