//! A byte-level lexer for the rule/fact format.
//!
//! Parsing time (`t-parse`) is one of the quantities the paper measures for
//! sets of up to one million TGDs (§7), so the lexer avoids allocation:
//! identifiers are returned as slices of the input.

use crate::error::{ParseError, ParseErrorKind};

/// A lexical token. Identifier payloads borrow from the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token<'a> {
    /// Bare identifier: predicate, constant, or variable, depending on the
    /// leading character (`A–Z`/`_`/`?` ⇒ variable).
    Ident(&'a str),
    /// Quoted constant (quotes stripped).
    Quoted(&'a str),
    LParen,
    RParen,
    Comma,
    Period,
    /// `->` (body on the left).
    Arrow,
    /// `:-` (head on the left, Datalog orientation).
    ColonDash,
    Eof,
}

impl Token<'_> {
    /// Human-readable rendering for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => (*s).to_string(),
            Token::Quoted(s) => format!("'{s}'"),
            Token::LParen => "(".into(),
            Token::RParen => ")".into(),
            Token::Comma => ",".into(),
            Token::Period => ".".into(),
            Token::Arrow => "->".into(),
            Token::ColonDash => ":-".into(),
            Token::Eof => "end of input".into(),
        }
    }
}

/// Streaming lexer over a source string.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
        }
    }

    /// Current 1-based line.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// Current 1-based column.
    pub fn column(&self) -> u32 {
        (self.pos - self.line_start) as u32 + 1
    }

    fn error(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(self.line, self.column(), kind)
    }

    fn bump_line(&mut self) {
        self.line += 1;
        self.line_start = self.pos;
    }

    fn skip_trivia(&mut self) {
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\n' => {
                    self.pos += 1;
                    self.bump_line();
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'%' | b'#' => {
                    // Line comment.
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    /// Produces the next token.
    pub fn next_token(&mut self) -> Result<Token<'a>, ParseError> {
        self.skip_trivia();
        if self.pos >= self.src.len() {
            return Ok(Token::Eof);
        }
        let b = self.src[self.pos];
        match b {
            b'(' => {
                self.pos += 1;
                Ok(Token::LParen)
            }
            b')' => {
                self.pos += 1;
                Ok(Token::RParen)
            }
            b',' => {
                self.pos += 1;
                Ok(Token::Comma)
            }
            b'.' => {
                self.pos += 1;
                Ok(Token::Period)
            }
            b'-' => {
                if self.src.get(self.pos + 1) == Some(&b'>') {
                    self.pos += 2;
                    Ok(Token::Arrow)
                } else {
                    Err(self.error(ParseErrorKind::UnexpectedChar('-')))
                }
            }
            b':' => {
                if self.src.get(self.pos + 1) == Some(&b'-') {
                    self.pos += 2;
                    Ok(Token::ColonDash)
                } else {
                    Err(self.error(ParseErrorKind::UnexpectedChar(':')))
                }
            }
            b'\'' | b'"' => {
                let quote = b;
                let start = self.pos + 1;
                let mut end = start;
                while end < self.src.len() && self.src[end] != quote {
                    if self.src[end] == b'\n' {
                        return Err(self.error(ParseErrorKind::UnterminatedQuote));
                    }
                    end += 1;
                }
                if end >= self.src.len() {
                    return Err(self.error(ParseErrorKind::UnterminatedQuote));
                }
                self.pos = end + 1;
                // Safety of from_utf8: we sliced between ASCII quote bytes of
                // a valid UTF-8 string, so the slice is valid UTF-8.
                Ok(Token::Quoted(
                    std::str::from_utf8(&self.src[start..end]).expect("input was valid UTF-8"),
                ))
            }
            c if is_ident_start(c) => {
                let start = self.pos;
                let mut end = self.pos + 1;
                while end < self.src.len() && is_ident_continue(self.src[end]) {
                    end += 1;
                }
                self.pos = end;
                Ok(Token::Ident(
                    std::str::from_utf8(&self.src[start..end]).expect("input was valid UTF-8"),
                ))
            }
            other => Err(self.error(ParseErrorKind::UnexpectedChar(other as char))),
        }
    }
}

#[inline]
fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'?'
}

#[inline]
fn is_ident_continue(b: u8) -> bool {
    // `#` continues identifiers so that derived shape-predicate names like
    // `r#1_2` round-trip; a `#` can still *start* a comment because comments
    // are recognised in trivia position, never mid-identifier.
    b.is_ascii_alphanumeric() || b == b'_' || b == b'#'
}

/// True if an identifier names a variable (`A–Z`, `_`, or `?` prefix).
pub fn is_variable_name(s: &str) -> bool {
    matches!(s.as_bytes().first(), Some(c) if c.is_ascii_uppercase() || *c == b'_' || *c == b'?')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_all(src: &str) -> Vec<String> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        loop {
            let t = lx.next_token().unwrap();
            if t == Token::Eof {
                break;
            }
            out.push(t.describe());
        }
        out
    }

    #[test]
    fn lexes_rule_syntax() {
        let toks = lex_all("r(X, y) -> s(y, Z).");
        assert_eq!(
            toks,
            vec!["r", "(", "X", ",", "y", ")", "->", "s", "(", "y", ",", "Z", ")", "."]
        );
    }

    #[test]
    fn lexes_datalog_orientation() {
        let toks = lex_all("s(Y) :- r(X, Y).");
        assert_eq!(toks[..2], ["s".to_string(), "(".to_string()]);
        assert!(toks.contains(&":-".to_string()));
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let toks = lex_all("% a comment\n  r(a). # another\nr(b).");
        assert_eq!(toks.len(), 10);
    }

    #[test]
    fn quoted_constants() {
        let toks = lex_all("r('hello world', \"two\").");
        assert_eq!(toks[2], "'hello world'");
        assert_eq!(toks[4], "'two'");
    }

    #[test]
    fn unterminated_quote_errors() {
        let mut lx = Lexer::new("r('oops");
        lx.next_token().unwrap();
        lx.next_token().unwrap();
        assert!(lx.next_token().is_err());
    }

    #[test]
    fn line_tracking() {
        let mut lx = Lexer::new("r(a).\n s(b).");
        for _ in 0..5 {
            lx.next_token().unwrap();
        }
        assert_eq!(lx.line(), 1);
        lx.next_token().unwrap();
        assert_eq!(lx.line(), 2);
    }

    #[test]
    fn variable_name_classification() {
        assert!(is_variable_name("X"));
        assert!(is_variable_name("_y"));
        assert!(is_variable_name("?z"));
        assert!(!is_variable_name("x"));
        assert!(!is_variable_name("1a"));
    }

    #[test]
    fn bad_characters_error_with_position() {
        let mut lx = Lexer::new("r(a)!");
        for _ in 0..4 {
            lx.next_token().unwrap();
        }
        let err = lx.next_token().unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.column, 5);
    }
}
