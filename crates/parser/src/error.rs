//! Parse errors with source positions.

use soct_model::ModelError;
use std::fmt;

/// A parse (or validation) error, with 1-based line/column when it comes
/// from the text itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: u32,
    pub column: u32,
    pub kind: ParseErrorKind,
}

/// What went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// An unexpected byte in the input.
    UnexpectedChar(char),
    /// A token other than the expected one.
    Expected {
        expected: &'static str,
        found: String,
    },
    /// Unterminated quoted constant.
    UnterminatedQuote,
    /// A rule used a variable in a fact or vice versa.
    Model(ModelError),
    /// Input ended mid-statement.
    UnexpectedEof,
}

impl ParseError {
    pub(crate) fn new(line: u32, column: u32, kind: ParseErrorKind) -> Self {
        ParseError { line, column, kind }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: ", self.line, self.column)?;
        match &self.kind {
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            ParseErrorKind::Expected { expected, found } => {
                write!(f, "expected {expected}, found `{found}`")
            }
            ParseErrorKind::UnterminatedQuote => write!(f, "unterminated quoted constant"),
            ParseErrorKind::Model(e) => write!(f, "{e}"),
            ParseErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
        }
    }
}

impl std::error::Error for ParseError {}
