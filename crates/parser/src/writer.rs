//! Serialising programs back to the text format.
//!
//! The writer and [`crate::parser`] round-trip: parsing the output of
//! `write_program` reproduces the same TGDs and facts (variables are
//! renumbered in first-occurrence order, which the parser mirrors).

use soct_model::{Atom, Database, FxHashMap, Interner, Schema, Term, Tgd, VarId};
use std::fmt::Write as _;

/// Writes one term. Variables render as `V{n}` with per-rule dense
/// renumbering supplied by `vars`; constants resolve through the interner,
/// quoted when necessary.
fn write_term(out: &mut String, t: Term, consts: &Interner, vars: &mut FxHashMap<VarId, u32>) {
    match t {
        Term::Var(v) => {
            let next = vars.len() as u32;
            let n = *vars.entry(v).or_insert(next);
            let _ = write!(out, "V{n}");
        }
        Term::Const(c) => {
            let name = consts
                .try_resolve(c.symbol())
                .unwrap_or("<unknown-constant>");
            if needs_quoting(name) {
                // The format has no escapes, so pick whichever quote the
                // name doesn't contain. A name containing both quote
                // characters is inexpressible; panic rather than emit
                // output that silently re-parses as different data.
                let quote = if name.contains('\'') { '"' } else { '\'' };
                assert!(
                    !name.contains(quote),
                    "constant {name:?} contains both quote characters and \
                     cannot be written in the escape-free text format"
                );
                let _ = write!(out, "{quote}{name}{quote}");
            } else {
                out.push_str(name);
            }
        }
        Term::Null(n) => {
            // Nulls serialise as fresh constants; they cannot round-trip as
            // nulls (the format has no null literal), matching the usual
            // practice of exporting chase results.
            let _ = write!(out, "null_{}", n.0);
        }
    }
}

fn needs_quoting(name: &str) -> bool {
    name.is_empty()
        || name
            .bytes()
            .any(|b| !(b.is_ascii_alphanumeric() || b == b'_' || b == b'#'))
        || matches!(name.as_bytes()[0], b'A'..=b'Z' | b'_' | b'?')
}

fn write_atom(
    out: &mut String,
    atom: &Atom,
    schema: &Schema,
    consts: &Interner,
    vars: &mut FxHashMap<VarId, u32>,
) {
    out.push_str(schema.name(atom.pred));
    out.push('(');
    for (i, &t) in atom.terms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_term(out, t, consts, vars);
    }
    out.push(')');
}

/// Renders one TGD as `body -> head.`.
pub fn write_tgd(out: &mut String, tgd: &Tgd, schema: &Schema, consts: &Interner) {
    let mut vars = FxHashMap::default();
    for (i, a) in tgd.body().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_atom(out, a, schema, consts, &mut vars);
    }
    out.push_str(" -> ");
    for (i, a) in tgd.head().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_atom(out, a, schema, consts, &mut vars);
    }
    out.push_str(".\n");
}

/// Renders a set of TGDs.
pub fn write_tgds(tgds: &[Tgd], schema: &Schema, consts: &Interner) -> String {
    let mut out = String::with_capacity(tgds.len() * 32);
    for t in tgds {
        write_tgd(&mut out, t, schema, consts);
    }
    out
}

/// Renders a database, one fact per line.
pub fn write_facts(db: &Database, schema: &Schema, consts: &Interner) -> String {
    let mut out = String::with_capacity(db.len() * 24);
    let mut vars = FxHashMap::default();
    for a in db.atoms() {
        write_atom(&mut out, a, schema, consts, &mut vars);
        out.push_str(".\n");
    }
    out
}

/// Renders rules followed by facts.
pub fn write_program(tgds: &[Tgd], db: &Database, schema: &Schema, consts: &Interner) -> String {
    let mut out = write_tgds(tgds, schema, consts);
    out.push_str(&write_facts(db, schema, consts));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::Program;

    fn round_trip(src: &str) -> Program {
        let p = Program::parse(src).unwrap();
        let text = write_program(&p.tgds, &p.database, &p.schema, &p.consts);
        Program::parse(&text).unwrap()
    }

    #[test]
    fn rules_round_trip() {
        let src = "r(X, Y) -> s(Y, Z).\nr(X, X) -> r(Z, X).\nr(X, Y), s(Y, W) -> t(X).\n";
        let a = Program::parse(src).unwrap();
        let b = round_trip(src);
        assert_eq!(a.tgds, b.tgds);
    }

    #[test]
    fn facts_round_trip() {
        let src = "r(a, b).\nr('white space', c12).\n";
        let a = Program::parse(src).unwrap();
        let b = round_trip(src);
        assert_eq!(a.database.len(), b.database.len());
        for atom in a.database.atoms() {
            // Compare by rendered form (constant ids depend on interner order).
            let mut va = FxHashMap::default();
            let mut sa = String::new();
            write_atom(&mut sa, atom, &a.schema, &a.consts, &mut va);
            let found = b.database.atoms().iter().any(|other| {
                let mut vb = FxHashMap::default();
                let mut sb = String::new();
                write_atom(&mut sb, other, &b.schema, &b.consts, &mut vb);
                sa == sb
            });
            assert!(found, "{sa} missing after round trip");
        }
    }

    #[test]
    fn quoting_kicks_in_for_awkward_names() {
        assert!(needs_quoting(""));
        assert!(needs_quoting("has space"));
        assert!(needs_quoting("Upper"));
        assert!(!needs_quoting("plain_123"));
    }

    #[test]
    fn variables_renumber_in_first_occurrence_order() {
        let p = Program::parse("q(B, A) -> q(A, B).").unwrap();
        let text = write_tgds(&p.tgds, &p.schema, &p.consts);
        assert_eq!(text, "q(V0,V1) -> q(V1,V0).\n");
    }
}
