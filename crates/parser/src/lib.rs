//! # soct-parser
//!
//! Text format for existential-rule programs: a fast byte-level lexer, a
//! recursive-descent parser, and a writer that round-trips. The format is
//! DLGP-flavoured: `body -> head.` (or Datalog-oriented `head :- body.`),
//! facts `r(a,b).`, implicit existential quantification of head-only
//! variables, `%`/`#` line comments.
//!
//! Parsing speed matters: `t-parse` is one of the time parameters the paper
//! reports for rule sets of up to one million TGDs (§7).

pub mod error;
pub mod lexer;
pub mod parser;
pub mod writer;

pub use error::{ParseError, ParseErrorKind};
pub use parser::{parse_facts, parse_into, parse_tgds, Program};
pub use writer::{write_facts, write_program, write_tgd, write_tgds};
