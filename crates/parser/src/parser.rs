//! Recursive-descent parser for programs of TGDs and facts.
//!
//! Grammar (statements end with `.`):
//!
//! ```text
//! program   := statement*
//! statement := rule | fact
//! rule      := conj "->" conj "."          (body -> head)
//!            | conj ":-" conj "."          (head :- body)
//! conj      := atom ("," atom)*
//! atom      := ident "(" term ("," term)* ")"
//! fact      := atom "."                    (all arguments constant)
//! term      := variable | constant
//! ```
//!
//! Identifiers starting with an uppercase letter, `_`, or `?` are variables;
//! everything else (including quoted strings and numbers) is a constant.
//! Head-only variables are existentially quantified (implicit `∃`, as in the
//! DLGP format used by existential-rule tools).

use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::{is_variable_name, Lexer, Token};
use soct_model::{Atom, ConstId, Database, FxHashMap, Interner, Schema, Term, Tgd, VarId};

/// A parsed program: rules plus a database of facts, over a shared schema
/// and constant interner.
#[derive(Debug, Default)]
pub struct Program {
    pub schema: Schema,
    pub consts: Interner,
    pub tgds: Vec<Tgd>,
    pub database: Database,
}

impl Program {
    /// Parses a complete program from text.
    pub fn parse(text: &str) -> Result<Program, ParseError> {
        let mut p = Program::default();
        parse_into(
            text,
            &mut p.schema,
            &mut p.consts,
            &mut p.tgds,
            &mut p.database,
        )?;
        Ok(p)
    }
}

/// Parses `text`, accumulating into existing schema/interner/rule/fact
/// collections (so several files can share one vocabulary).
pub fn parse_into(
    text: &str,
    schema: &mut Schema,
    consts: &mut Interner,
    tgds: &mut Vec<Tgd>,
    database: &mut Database,
) -> Result<(), ParseError> {
    let mut parser = Parser {
        lexer: Lexer::new(text),
        lookahead: None,
        schema,
        consts,
    };
    loop {
        if parser.peek()? == Token::Eof {
            return Ok(());
        }
        parser.statement(tgds, database)?;
    }
}

/// Parses a set of TGDs only; facts are rejected.
pub fn parse_tgds(
    text: &str,
    schema: &mut Schema,
    consts: &mut Interner,
) -> Result<Vec<Tgd>, ParseError> {
    let mut tgds = Vec::new();
    let mut db = Database::new();
    parse_into(text, schema, consts, &mut tgds, &mut db)?;
    if !db.is_empty() {
        return Err(ParseError::new(
            0,
            0,
            ParseErrorKind::Expected {
                expected: "rules only",
                found: "a fact".to_string(),
            },
        ));
    }
    Ok(tgds)
}

/// Parses a database of facts only; rules are rejected.
pub fn parse_facts(
    text: &str,
    schema: &mut Schema,
    consts: &mut Interner,
) -> Result<Database, ParseError> {
    let mut tgds = Vec::new();
    let mut db = Database::new();
    parse_into(text, schema, consts, &mut tgds, &mut db)?;
    if !tgds.is_empty() {
        return Err(ParseError::new(
            0,
            0,
            ParseErrorKind::Expected {
                expected: "facts only",
                found: "a rule".to_string(),
            },
        ));
    }
    Ok(db)
}

struct Parser<'a, 'v> {
    lexer: Lexer<'a>,
    lookahead: Option<Token<'a>>,
    schema: &'v mut Schema,
    consts: &'v mut Interner,
}

/// A pre-validation atom: terms may still be raw variable names.
struct RawAtom {
    pred: soct_model::PredId,
    terms: Vec<RawTerm>,
}

enum RawTerm {
    Var(u32),
    Const(ConstId),
}

impl<'a> Parser<'a, '_> {
    fn peek(&mut self) -> Result<Token<'a>, ParseError> {
        if self.lookahead.is_none() {
            self.lookahead = Some(self.lexer.next_token()?);
        }
        Ok(self.lookahead.unwrap())
    }

    fn advance(&mut self) -> Result<Token<'a>, ParseError> {
        match self.lookahead.take() {
            Some(t) => Ok(t),
            None => self.lexer.next_token(),
        }
    }

    fn error(&self, expected: &'static str, found: Token<'_>) -> ParseError {
        ParseError::new(
            self.lexer.line(),
            self.lexer.column(),
            ParseErrorKind::Expected {
                expected,
                found: found.describe(),
            },
        )
    }

    fn expect(&mut self, want: Token<'static>, what: &'static str) -> Result<(), ParseError> {
        let got = self.advance()?;
        if got == want {
            Ok(())
        } else {
            Err(self.error(what, got))
        }
    }

    fn model_err(&self, e: soct_model::ModelError) -> ParseError {
        ParseError::new(
            self.lexer.line(),
            self.lexer.column(),
            ParseErrorKind::Model(e),
        )
    }

    /// Parses one statement (rule or fact) into the output collections.
    fn statement(&mut self, tgds: &mut Vec<Tgd>, db: &mut Database) -> Result<(), ParseError> {
        // Variables are scoped per statement: name → dense id.
        let mut vars: FxHashMap<&'a str, u32> = FxHashMap::default();
        let first = self.conjunction(&mut vars)?;
        match self.advance()? {
            Token::Period => {
                // A conjunction of facts.
                for atom in first {
                    db.insert(self.ground(atom)?);
                }
                Ok(())
            }
            Token::Arrow => {
                let head = self.conjunction(&mut vars)?;
                self.expect(Token::Period, "`.`")?;
                tgds.push(self.rule(first, head)?);
                Ok(())
            }
            Token::ColonDash => {
                let body = self.conjunction(&mut vars)?;
                self.expect(Token::Period, "`.`")?;
                tgds.push(self.rule(body, first)?);
                Ok(())
            }
            other => Err(self.error("`.`, `->` or `:-`", other)),
        }
    }

    fn rule(&self, body: Vec<RawAtom>, head: Vec<RawAtom>) -> Result<Tgd, ParseError> {
        let lift = |atoms: Vec<RawAtom>| -> Vec<Atom> {
            atoms
                .into_iter()
                .map(|a| {
                    Atom::new_unchecked(
                        a.pred,
                        a.terms
                            .into_iter()
                            .map(|t| match t {
                                RawTerm::Var(v) => Term::Var(VarId(v)),
                                RawTerm::Const(c) => Term::Const(c),
                            })
                            .collect(),
                    )
                })
                .collect()
        };
        Tgd::new(lift(body), lift(head)).map_err(|e| self.model_err(e))
    }

    fn ground(&self, atom: RawAtom) -> Result<Atom, ParseError> {
        let mut terms = Vec::with_capacity(atom.terms.len());
        for t in atom.terms {
            match t {
                RawTerm::Const(c) => terms.push(Term::Const(c)),
                RawTerm::Var(_) => {
                    return Err(self.model_err(soct_model::ModelError::VariableInFact))
                }
            }
        }
        Ok(Atom::new_unchecked(atom.pred, terms))
    }

    fn conjunction(
        &mut self,
        vars: &mut FxHashMap<&'a str, u32>,
    ) -> Result<Vec<RawAtom>, ParseError> {
        let mut atoms = vec![self.atom(vars)?];
        while self.peek()? == Token::Comma {
            self.advance()?;
            atoms.push(self.atom(vars)?);
        }
        Ok(atoms)
    }

    fn atom(&mut self, vars: &mut FxHashMap<&'a str, u32>) -> Result<RawAtom, ParseError> {
        let name = match self.advance()? {
            Token::Ident(s) => s,
            other => return Err(self.error("a predicate name", other)),
        };
        self.expect(Token::LParen, "`(`")?;
        let mut terms = Vec::new();
        loop {
            let t = self.advance()?;
            let term = match t {
                Token::Ident(s) if is_variable_name(s) => {
                    let next = vars.len() as u32;
                    RawTerm::Var(*vars.entry(s).or_insert(next))
                }
                Token::Ident(s) => RawTerm::Const(ConstId::from_symbol(self.consts.intern(s))),
                Token::Quoted(s) => RawTerm::Const(ConstId::from_symbol(self.consts.intern(s))),
                other => return Err(self.error("a term", other)),
            };
            terms.push(term);
            match self.advance()? {
                Token::Comma => continue,
                Token::RParen => break,
                other => return Err(self.error("`,` or `)`", other)),
            }
        }
        let pred = self
            .schema
            .add_predicate(name, terms.len())
            .map_err(|e| self.model_err(e))?;
        Ok(RawAtom { pred, terms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::TgdClass;

    #[test]
    fn parses_rules_and_facts() {
        let p = Program::parse(
            "% the running example of §3\n\
             r(a, b).\n\
             r(X, Y) -> r(Y, Z).\n",
        )
        .unwrap();
        assert_eq!(p.tgds.len(), 1);
        assert_eq!(p.database.len(), 1);
        let tgd = &p.tgds[0];
        assert!(tgd.is_simple_linear());
        assert_eq!(tgd.frontier().len(), 1);
        assert_eq!(tgd.existential().len(), 1);
    }

    #[test]
    fn datalog_orientation_swaps_body_and_head() {
        // The two spellings are alpha-equivalent; the writer renumbers
        // variables in body-first order, so the rendered forms coincide.
        let a = Program::parse("s(Y, Z) :- r(X, Y).").unwrap();
        let b = Program::parse("r(X, Y) -> s(Y, Z).").unwrap();
        let ra = crate::writer::write_tgds(&a.tgds, &a.schema, &a.consts);
        let rb = crate::writer::write_tgds(&b.tgds, &b.schema, &b.consts);
        assert_eq!(ra, rb);
    }

    #[test]
    fn variables_scoped_per_rule() {
        let p = Program::parse("r(X) -> s(X).\nr(X) -> t(X).").unwrap();
        assert_eq!(p.tgds[0].frontier(), p.tgds[1].frontier());
    }

    #[test]
    fn multi_atom_conjunctions() {
        let p = Program::parse("r(X, Y), s(Y) -> t(X), u(X, Y).").unwrap();
        let tgd = &p.tgds[0];
        assert_eq!(tgd.body().len(), 2);
        assert_eq!(tgd.head().len(), 2);
        assert_eq!(tgd.class(), TgdClass::General);
    }

    #[test]
    fn fact_conjunction_inserts_all() {
        let p = Program::parse("r(a, b), r(b, c).").unwrap();
        assert_eq!(p.database.len(), 2);
    }

    #[test]
    fn repeated_body_variable_is_linear() {
        let p = Program::parse("r(X, X) -> r(Z, X).").unwrap();
        assert_eq!(p.tgds[0].class(), TgdClass::Linear);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let err = Program::parse("r(a, b).\nr(a).").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Model(_)), "{err}");
    }

    #[test]
    fn variables_in_facts_are_rejected() {
        let err = Program::parse("r(X, b).").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Model(soct_model::ModelError::VariableInFact)
        ));
    }

    #[test]
    fn parse_tgds_rejects_facts_and_vice_versa() {
        let mut s = Schema::new();
        let mut c = Interner::new();
        assert!(parse_tgds("r(a).", &mut s, &mut c).is_err());
        let mut s2 = Schema::new();
        let mut c2 = Interner::new();
        assert!(parse_facts("r(X) -> s(X).", &mut s2, &mut c2).is_err());
        let mut s3 = Schema::new();
        let mut c3 = Interner::new();
        assert_eq!(
            parse_facts("r(a). r(b).", &mut s3, &mut c3).unwrap().len(),
            2
        );
    }

    #[test]
    fn quoted_and_numeric_constants() {
        let p = Program::parse("r('hello world', 42).").unwrap();
        assert_eq!(p.database.len(), 1);
        assert_eq!(p.consts.len(), 2);
        assert!(p.consts.get("hello world").is_some());
        assert!(p.consts.get("42").is_some());
    }

    #[test]
    fn error_positions_are_reported() {
        let err = Program::parse("r(a)\ns(b).").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn shared_vocabulary_across_calls() {
        let mut schema = Schema::new();
        let mut consts = Interner::new();
        let tgds = parse_tgds("r(X, Y) -> s(Y).", &mut schema, &mut consts).unwrap();
        let db = parse_facts("r(a, b).", &mut schema, &mut consts).unwrap();
        assert_eq!(tgds.len(), 1);
        assert_eq!(db.len(), 1);
        assert_eq!(schema.len(), 2);
        // The fact and the rule body share the predicate id.
        assert_eq!(db.atoms()[0].pred, tgds[0].body()[0].pred);
    }
}
