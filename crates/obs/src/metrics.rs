//! Metric primitives (counter / gauge / log₂ histogram), the
//! process-global metric set, and the Prometheus text renderer.
//!
//! The [`Histogram`] here is the serve tier's original log₂ latency
//! histogram, promoted to the shared crate so every layer records
//! through one implementation: 28 buckets where bucket *b* covers
//! `[2^b, 2^(b+1))` µs (~134 s and up saturate the last), lock-free
//! recording, quantiles reconstructed as the upper bound of the bucket
//! where the cumulative count crosses the rank.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A monotone counter (relaxed atomic increments).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count of the log₂ histogram.
pub const HIST_BUCKETS: usize = 28;

/// A log₂-bucketed latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    max_us: AtomicU64,
    sum_us: AtomicU64,
}

/// A point-in-time copy of a [`Histogram`], for consistent rendering.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket *b* covers `[2^b, 2^(b+1))` µs).
    pub counts: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded values, µs.
    pub sum_us: u64,
    /// Largest recorded value, µs.
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// Quantile `q` in `[0,1]`, reconstructed as the upper bound of the
    /// bucket where the cumulative count crosses the rank (the exact
    /// maximum when the rank lands past every bucket boundary).
    pub fn quantile_us(&self, q: f64) -> u64 {
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (b + 1);
            }
        }
        self.max_us
    }
}

impl Histogram {
    /// A zeroed histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            max_us: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Records one sample (µs). Lock-free; three relaxed atomic ops.
    pub fn record_us(&self, us: u64) {
        let b = (63 - us.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total samples recorded so far.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Copies the current state for rendering.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; HIST_BUCKETS];
        for (out, b) in counts.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: counts.iter().sum(),
            counts,
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

// ── Prometheus text exposition ─────────────────────────────────────────

/// An incrementally-built Prometheus text exposition body
/// (`text/plain; version=0.0.4`): `# HELP` / `# TYPE` headers followed
/// by sample lines. Callers keep family names disjoint; the format has
/// no nesting, so one builder renders metrics gathered from any number
/// of layers.
#[derive(Debug, Default)]
pub struct PromText {
    buf: String,
}

fn write_labels(buf: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    buf.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        let _ = write!(
            buf,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    buf.push('}');
}

impl PromText {
    /// An empty exposition body.
    pub fn new() -> Self {
        PromText::default()
    }

    /// Writes the `# HELP` / `# TYPE` header of a family.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.buf, "# HELP {name} {help}");
        let _ = writeln!(self.buf, "# TYPE {name} {kind}");
    }

    /// Writes one sample line.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.buf.push_str(name);
        write_labels(&mut self.buf, labels);
        let _ = writeln!(self.buf, " {value}");
    }

    /// A single-sample counter family.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, "counter", help);
        self.sample(name, &[], value);
    }

    /// A single-sample gauge family.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, "gauge", help);
        self.sample(name, &[], value);
    }

    /// One labelled series of a histogram family: cumulative
    /// `name_bucket{…,le=…}` lines (bucket *b* reports `le` = its
    /// exclusive upper bound `2^(b+1)` µs, the same value `/stats`
    /// quantiles report), then `name_sum` and `name_count`. The caller
    /// writes the family [`PromText::header`] once before the first
    /// series.
    pub fn histogram_series(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
    ) {
        let mut cumulative = 0u64;
        let with_le = |le: &str, v: u64, buf: &mut String| {
            let _ = write!(buf, "{name}_bucket");
            let mut all: Vec<(&str, &str)> = labels.to_vec();
            all.push(("le", le));
            write_labels(buf, &all);
            let _ = writeln!(buf, " {v}");
        };
        for (b, &c) in snap.counts.iter().enumerate() {
            cumulative += c;
            // Skip interior all-zero prefixes? No: Prometheus clients
            // expect the full ladder; 28 lines per series is fine.
            let le = (1u128 << (b + 1)).to_string();
            with_le(&le, cumulative, &mut self.buf);
        }
        with_le("+Inf", snap.count, &mut self.buf);
        let _ = write!(self.buf, "{name}_sum");
        write_labels(&mut self.buf, labels);
        let _ = writeln!(self.buf, " {}", snap.sum_us);
        let _ = write!(self.buf, "{name}_count");
        write_labels(&mut self.buf, labels);
        let _ = writeln!(self.buf, " {}", snap.count);
    }

    /// The rendered exposition body.
    pub fn finish(self) -> String {
        self.buf
    }
}

// ── The process-global metric set ──────────────────────────────────────

/// The checker phases recorded into `soct_core_phase_us{phase=…}` — the
/// paper's breakdown (§7–§8) plus the cache-aware request phases.
pub const PHASE_NAMES: [&str; 8] = [
    "parse",
    "shapes",
    "graph",
    "comp",
    "supports",
    "fingerprint",
    "lookup",
    "check",
];

/// Process-wide metrics for the layers that have no per-server object
/// to hang counters off (the chase engine, the checker pipeline, the
/// storage write path). Per-server state — the serve admission counters
/// and latency histograms, the verdict-cache counters — stays on its
/// owning object and is rendered into the same `/metrics` body by the
/// serve tier.
#[derive(Debug, Default)]
pub struct GlobalMetrics {
    /// Chase rounds completed (`soct_chase_rounds_total`).
    pub chase_rounds: Counter,
    /// Triggers enumerated across rounds (`soct_chase_triggers_total`).
    pub chase_triggers: Counter,
    /// Tuples derived (head atoms written) (`soct_chase_tuples_total`).
    pub chase_tuples: Counter,
    /// Witness-table dedup hits: triggers seen before and skipped
    /// (`soct_chase_dedup_hits_total`).
    pub chase_dedup_hits: Counter,
    /// Parallel enumeration tasks dispatched to the worker pool
    /// (`soct_chase_parallel_tasks_total`).
    pub chase_parallel_tasks: Counter,
    /// Storage-engine tuple inserts (`soct_db_inserts_total`).
    pub db_inserts: Counter,
    /// Storage-engine tuple deletes that removed a row
    /// (`soct_db_deletes_total`).
    pub db_deletes: Counter,
    /// Incremental shape-catalog updates: distinct-shape transitions
    /// applied on a write (`soct_db_shape_updates_total`).
    pub db_shape_updates: Counter,
    /// Incremental db-fingerprint accumulator updates
    /// (`soct_db_fingerprint_updates_total`).
    pub db_fingerprint_updates: Counter,
    /// Full catalog rebuilds forced by detected desyncs
    /// (`soct_db_catalog_rebuilds_total`).
    pub db_catalog_rebuilds: Counter,
    /// Verdict-cache snapshots persisted to disk
    /// (`soct_cache_persists_total`).
    pub cache_persists: Counter,
    /// WAL records appended (`soct_wal_appends_total`).
    pub wal_appends: Counter,
    /// WAL fsyncs issued by the sync policy (`soct_wal_fsyncs_total`).
    pub wal_fsyncs: Counter,
    /// WAL records replayed during recovery
    /// (`soct_wal_replayed_records_total`).
    pub wal_replayed_records: Counter,
    /// Torn WAL tails truncated at the first bad checksum during
    /// recovery (`soct_wal_torn_truncations_total`).
    pub wal_torn_truncations: Counter,
    /// WAL checkpoints taken (`soct_wal_checkpoints_total`).
    pub wal_checkpoints: Counter,
    phases: [Histogram; PHASE_NAMES.len()],
}

impl GlobalMetrics {
    /// Records one checker-phase duration into
    /// `soct_core_phase_us{phase=name}`. Unknown names are dropped (the
    /// phase list is fixed; see [`PHASE_NAMES`]).
    pub fn record_phase_us(&self, name: &str, us: u64) {
        if let Some(i) = PHASE_NAMES.iter().position(|p| *p == name) {
            self.phases[i].record_us(us);
        }
    }

    /// The phase histogram for `name`, if it is a known phase.
    pub fn phase(&self, name: &str) -> Option<&Histogram> {
        PHASE_NAMES
            .iter()
            .position(|p| *p == name)
            .map(|i| &self.phases[i])
    }

    /// Renders every global family into `out`.
    pub fn render_into(&self, out: &mut PromText) {
        for (name, help, c) in [
            (
                "soct_chase_rounds_total",
                "Chase rounds completed",
                &self.chase_rounds,
            ),
            (
                "soct_chase_triggers_total",
                "Triggers enumerated by the chase engine",
                &self.chase_triggers,
            ),
            (
                "soct_chase_tuples_total",
                "Tuples derived by the chase engine",
                &self.chase_tuples,
            ),
            (
                "soct_chase_dedup_hits_total",
                "Witness-table dedup hits (previously seen triggers skipped)",
                &self.chase_dedup_hits,
            ),
            (
                "soct_chase_parallel_tasks_total",
                "Parallel trigger-enumeration tasks dispatched",
                &self.chase_parallel_tasks,
            ),
            (
                "soct_db_inserts_total",
                "Storage-engine tuple inserts",
                &self.db_inserts,
            ),
            (
                "soct_db_deletes_total",
                "Storage-engine tuple deletes that removed a row",
                &self.db_deletes,
            ),
            (
                "soct_db_shape_updates_total",
                "Incremental shape-catalog distinct-set transitions",
                &self.db_shape_updates,
            ),
            (
                "soct_db_fingerprint_updates_total",
                "Incremental live db-fingerprint accumulator updates",
                &self.db_fingerprint_updates,
            ),
            (
                "soct_db_catalog_rebuilds_total",
                "Full shape-catalog rebuilds forced by detected desyncs",
                &self.db_catalog_rebuilds,
            ),
            (
                "soct_cache_persists_total",
                "Verdict-cache snapshots persisted to disk",
                &self.cache_persists,
            ),
            (
                "soct_wal_appends_total",
                "Write-ahead-log records appended",
                &self.wal_appends,
            ),
            (
                "soct_wal_fsyncs_total",
                "Write-ahead-log fsyncs issued by the sync policy",
                &self.wal_fsyncs,
            ),
            (
                "soct_wal_replayed_records_total",
                "Write-ahead-log records replayed during recovery",
                &self.wal_replayed_records,
            ),
            (
                "soct_wal_torn_truncations_total",
                "Torn WAL tails truncated at the first bad checksum",
                &self.wal_torn_truncations,
            ),
            (
                "soct_wal_checkpoints_total",
                "Write-ahead-log checkpoints taken",
                &self.wal_checkpoints,
            ),
        ] {
            out.counter(name, help, c.get());
        }
        out.header(
            "soct_core_phase_us",
            "histogram",
            "Checker phase latency (µs) by paper phase",
        );
        for (i, name) in PHASE_NAMES.iter().enumerate() {
            let snap = self.phases[i].snapshot();
            if snap.count > 0 {
                out.histogram_series("soct_core_phase_us", &[("phase", name)], &snap);
            }
        }
    }
}

/// The process-global metric set.
pub fn global() -> &'static GlobalMetrics {
    static GLOBAL: OnceLock<GlobalMetrics> = OnceLock::new();
    GLOBAL.get_or_init(GlobalMetrics::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_quantiles_and_sum() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record_us(100); // bucket [64,128)
        }
        for _ in 0..10 {
            h.record_us(10_000); // bucket [8192,16384)
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum_us, 90 * 100 + 10 * 10_000);
        assert_eq!(s.max_us, 10_000);
        assert!((100..=128).contains(&s.quantile_us(0.50)));
        assert!((10_000..=16_384).contains(&s.quantile_us(0.99)));
        // Zero saturates into the first bucket, huge values into the last.
        h.record_us(0);
        h.record_us(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.counts[HIST_BUCKETS - 1], 1);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let mut p = PromText::new();
        p.counter("soct_test_total", "help text", 3);
        p.gauge("soct_test_depth", "queue depth", 2);
        let h = Histogram::new();
        h.record_us(100);
        p.header("soct_test_us", "histogram", "latency");
        p.histogram_series("soct_test_us", &[("endpoint", "check")], &h.snapshot());
        let text = p.finish();
        assert!(text.contains("# HELP soct_test_total help text\n"));
        assert!(text.contains("# TYPE soct_test_total counter\n"));
        assert!(text.contains("soct_test_total 3\n"));
        assert!(text.contains("soct_test_depth 2\n"));
        assert!(text.contains("soct_test_us_bucket{endpoint=\"check\",le=\"128\"} 1\n"));
        assert!(text.contains("soct_test_us_bucket{endpoint=\"check\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("soct_test_us_sum{endpoint=\"check\"} 100\n"));
        assert!(text.contains("soct_test_us_count{endpoint=\"check\"} 1\n"));
        // Bucket counts are cumulative: every bucket past [64,128) also
        // reports the sample.
        assert!(text.contains("soct_test_us_bucket{endpoint=\"check\",le=\"256\"} 1\n"));
        // The ladder starts empty below the sample's bucket.
        assert!(text.contains("soct_test_us_bucket{endpoint=\"check\",le=\"64\"} 0\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut p = PromText::new();
        p.header("soct_x_total", "counter", "h");
        p.sample("soct_x_total", &[("k", "a\"b\\c")], 1);
        assert!(p.finish().contains("soct_x_total{k=\"a\\\"b\\\\c\"} 1\n"));
    }

    #[test]
    fn global_phase_histograms_accept_known_phases_only() {
        let g = GlobalMetrics::default();
        g.record_phase_us("shapes", 50);
        g.record_phase_us("nonsense", 50);
        assert_eq!(g.phase("shapes").unwrap().count(), 1);
        assert!(g.phase("nonsense").is_none());
        let mut p = PromText::new();
        g.render_into(&mut p);
        let text = p.finish();
        assert!(text.contains("soct_chase_rounds_total 0\n"));
        assert!(text.contains("soct_core_phase_us_bucket{phase=\"shapes\",le=\"64\"} 1\n"));
    }
}
