//! The leveled `SOCT_LOG` structured logger: `key=value` lines on
//! stderr, filtered before format arguments are evaluated.
//!
//! `SOCT_LOG` holds a default level (`off`, `error`, `warn`, `info`,
//! `debug`, `trace`) and optional per-target overrides, comma-separated:
//! `SOCT_LOG=warn,serve=debug` logs `serve` at `debug` and everything
//! else at `warn`. Unset or unparsable means `off` — production runs
//! pay one atomic-ish lookup per call site and nothing else.
//!
//! Call sites use the [`log_error!`](crate::log_error) /
//! [`log_warn!`](crate::log_warn) / [`log_info!`](crate::log_info) /
//! [`log_debug!`](crate::log_debug) / [`log_trace!`](crate::log_trace)
//! macros, which check [`enabled`] before touching their arguments:
//!
//! ```
//! soct_obs::log_info!("serve", "event=accept fd={} conns={}", 7, 12);
//! ```

use std::sync::OnceLock;

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The system misbehaved.
    Error,
    /// Something surprising but survivable (sheds, refusals).
    Warn,
    /// Lifecycle events (connections, jobs, persistence).
    Info,
    /// Per-request detail.
    Debug,
    /// Everything.
    Trace,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn parse(s: &str) -> Option<Option<Level>> {
        match s {
            "off" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }
}

#[derive(Debug, Default)]
struct Filter {
    /// `None` = off.
    default: Option<Level>,
    /// Per-target overrides (`serve=debug`).
    targets: Vec<(String, Option<Level>)>,
}

impl Filter {
    fn from_spec(spec: &str) -> Filter {
        let mut f = Filter::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                Some((target, level)) => {
                    if let Some(lvl) = Level::parse(level.trim()) {
                        f.targets.push((target.trim().to_string(), lvl));
                    }
                }
                None => {
                    if let Some(lvl) = Level::parse(part) {
                        f.default = lvl;
                    }
                }
            }
        }
        f
    }

    fn allows(&self, level: Level, target: &str) -> bool {
        let max = self
            .targets
            .iter()
            .find(|(t, _)| t == target)
            .map(|(_, lvl)| *lvl)
            .unwrap_or(self.default);
        max.is_some_and(|m| level <= m)
    }
}

fn filter() -> &'static Filter {
    static FILTER: OnceLock<Filter> = OnceLock::new();
    FILTER.get_or_init(|| Filter::from_spec(&std::env::var("SOCT_LOG").unwrap_or_default()))
}

/// Whether a `level` record for `target` would be emitted. The macros
/// call this before evaluating their format arguments.
pub fn enabled(level: Level, target: &str) -> bool {
    filter().allows(level, target)
}

/// Writes one structured line to stderr:
/// `soct level=<level> target=<target> <message>`. Called by the
/// macros; the filter decision has already been made.
pub fn write_line(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    eprintln!("soct level={} target={target} {args}", level.name());
}

/// Logs at an explicit [`Level`]; prefer the per-level macros.
#[macro_export]
macro_rules! obs_log {
    ($lvl:expr, $target:expr, $($arg:tt)*) => {
        if $crate::logger::enabled($lvl, $target) {
            $crate::logger::write_line($lvl, $target, format_args!($($arg)*));
        }
    };
}

/// Logs a `key=value` line at `error` level.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => { $crate::obs_log!($crate::Level::Error, $target, $($arg)*) };
}

/// Logs a `key=value` line at `warn` level.
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => { $crate::obs_log!($crate::Level::Warn, $target, $($arg)*) };
}

/// Logs a `key=value` line at `info` level.
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => { $crate::obs_log!($crate::Level::Info, $target, $($arg)*) };
}

/// Logs a `key=value` line at `debug` level.
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => { $crate::obs_log!($crate::Level::Debug, $target, $($arg)*) };
}

/// Logs a `key=value` line at `trace` level.
#[macro_export]
macro_rules! log_trace {
    ($target:expr, $($arg:tt)*) => { $crate::obs_log!($crate::Level::Trace, $target, $($arg)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_is_severity_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
    }

    #[test]
    fn filter_parses_default_and_targets() {
        let f = Filter::from_spec("warn,serve=debug,chase=off");
        assert!(f.allows(Level::Warn, "core"));
        assert!(!f.allows(Level::Info, "core"));
        assert!(f.allows(Level::Debug, "serve"));
        assert!(!f.allows(Level::Trace, "serve"));
        assert!(!f.allows(Level::Error, "chase"), "per-target off wins");
    }

    #[test]
    fn empty_and_garbage_specs_mean_off() {
        let f = Filter::from_spec("");
        assert!(!f.allows(Level::Error, "serve"));
        let f = Filter::from_spec("bananas,=,x=");
        assert!(!f.allows(Level::Error, "serve"));
    }

    #[test]
    fn off_spec_is_explicitly_off() {
        let f = Filter::from_spec("off");
        assert!(!f.allows(Level::Error, "any"));
        let f = Filter::from_spec("trace");
        assert!(f.allows(Level::Trace, "any"));
    }
}
