//! The phase accumulator: the span-derived replacement for the bespoke
//! per-checker timing plumbing. A [`Phases`] value rides through one
//! check; each [`Phases::run`] scope is timed (phases are coarse —
//! a handful per request — so always-on timing is within the overhead
//! contract), recorded into the global
//! `soct_core_phase_us{phase=…}` histogram, and emitted as a span when
//! a [`crate::TraceSession`] is active. The paper-facing structs
//! (`SlTimings`, `LTimings`, `CacheTimings` in `soct_core`) are
//! projections over the accumulated durations.

use crate::metrics;
use crate::span::span;
use std::time::{Duration, Instant};

/// Per-check phase durations, accumulated in call order.
#[derive(Debug, Default, Clone)]
pub struct Phases {
    entries: Vec<(&'static str, Duration)>,
}

impl Phases {
    /// An empty accumulator.
    pub fn new() -> Self {
        Phases::default()
    }

    /// Runs `f` as phase `name`: times it, opens a span around it, and
    /// records the duration here and in the global phase histogram.
    pub fn run<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let _span = span(name);
        let t0 = Instant::now();
        let out = f();
        self.record(name, t0.elapsed());
        out
    }

    /// Records an externally measured duration for phase `name` (used
    /// when the timed region spans an API boundary).
    pub fn record(&mut self, name: &'static str, d: Duration) {
        self.entries.push((name, d));
        metrics::global().record_phase_us(name, d.as_micros() as u64);
    }

    /// Total duration accumulated under `name` (zero if never run).
    pub fn duration(&self, name: &str) -> Duration {
        self.entries
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, d)| *d)
            .sum()
    }

    /// The recorded `(phase, duration)` pairs, in call order.
    pub fn entries(&self) -> &[(&'static str, Duration)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_accumulates_and_projects() {
        let mut p = Phases::new();
        let v = p.run("graph", || {
            std::thread::sleep(Duration::from_millis(1));
            42
        });
        assert_eq!(v, 42);
        p.record("graph", Duration::from_millis(2));
        p.record("comp", Duration::from_micros(5));
        assert!(p.duration("graph") >= Duration::from_millis(3));
        assert_eq!(p.duration("comp"), Duration::from_micros(5));
        assert_eq!(p.duration("never"), Duration::ZERO);
        assert_eq!(p.entries().len(), 3);
    }

    #[test]
    fn run_feeds_the_global_phase_histogram() {
        let before = metrics::global().phase("supports").unwrap().count();
        let mut p = Phases::new();
        p.run("supports", || ());
        let after = metrics::global().phase("supports").unwrap().count();
        assert!(after > before);
    }
}
