//! The span layer: nested, named timing scopes that cost one relaxed
//! atomic load when no collector is installed, and record
//! Chrome-trace-compatible events when a [`TraceSession`] is active.
//!
//! Sessions are process-global and serialized: [`TraceSession::start`]
//! takes a global lock, so two concurrent sessions (e.g. parallel
//! tests) queue instead of mixing their records. Spans opened on *any*
//! thread while a session is active are collected — the chase engine's
//! worker threads land in the same trace as the driver, distinguished
//! by their `tid`.

use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Fast-path flag: is any collector installed?
static TRACE_ON: AtomicBool = AtomicBool::new(false);

/// Serializes sessions (held for the whole session lifetime).
static SESSION_LOCK: Mutex<()> = Mutex::new(());

struct CollectorState {
    epoch: Instant,
    records: Vec<SpanRecord>,
}

fn collector() -> &'static Mutex<Option<CollectorState>> {
    static COLLECTOR: OnceLock<Mutex<Option<CollectorState>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(None))
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static TID: Cell<u32> = const { Cell::new(u32::MAX) };
}

fn thread_id() -> u32 {
    TID.with(|t| {
        if t.get() == u32::MAX {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// One finished span, in session-relative microseconds.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Static span name (the taxonomy in `docs/ARCHITECTURE.md`).
    pub name: &'static str,
    /// Start, µs since the session began.
    pub ts_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Small per-thread id (0 is the first thread that opened a span).
    pub tid: u32,
    /// Nesting depth on its thread (0 = top level).
    pub depth: u32,
}

/// An open span; records itself on drop when a session is active.
/// Created by [`span`].
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; drop ends it"]
pub struct Span {
    start: Option<Instant>,
    name: &'static str,
}

/// Opens a span. Inert (no clock read, no allocation) unless a
/// [`TraceSession`] is active.
pub fn span(name: &'static str) -> Span {
    if !TRACE_ON.load(Ordering::Relaxed) {
        return Span { start: None, name };
    }
    DEPTH.with(|d| d.set(d.get() + 1));
    Span {
        start: Some(Instant::now()),
        name,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_us = start.elapsed().as_micros() as u64;
        let depth = DEPTH.with(|d| {
            let v = d.get().saturating_sub(1);
            d.set(v);
            v
        });
        let mut guard = collector().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(state) = guard.as_mut() {
            let ts_us = start.duration_since(state.epoch).as_micros() as u64;
            state.records.push(SpanRecord {
                name: self.name,
                ts_us,
                dur_us,
                tid: thread_id(),
                depth,
            });
        }
    }
}

/// An exclusive span-collection window. While it lives, every [`span`]
/// on every thread is timed and recorded; [`TraceSession::finish`]
/// returns the records (ordered by span *completion* time — children
/// before parents; reconstruct nesting from `ts_us`/`dur_us`/`depth`).
#[derive(Debug)]
pub struct TraceSession {
    _guard: MutexGuard<'static, ()>,
}

impl TraceSession {
    /// Installs the collector, blocking while another session is live.
    pub fn start() -> TraceSession {
        let guard = SESSION_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        *collector().lock().unwrap_or_else(|e| e.into_inner()) = Some(CollectorState {
            epoch: Instant::now(),
            records: Vec::new(),
        });
        TRACE_ON.store(true, Ordering::SeqCst);
        TraceSession { _guard: guard }
    }

    /// Stops collecting and returns the finished spans.
    pub fn finish(self) -> Vec<SpanRecord> {
        TRACE_ON.store(false, Ordering::SeqCst);
        collector()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .map(|s| s.records)
            .unwrap_or_default()
        // `self` drops here: the Drop impl finds the collector already
        // gone and only releases the session lock.
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        TRACE_ON.store(false, Ordering::SeqCst);
        let _ = collector().lock().unwrap_or_else(|e| e.into_inner()).take();
    }
}

/// Renders span records as Chrome trace viewer JSON (the
/// `{"traceEvents":[…]}` object format, loadable in `chrome://tracing`
/// and Perfetto): one `"ph":"X"` complete event per span.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"soct\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"depth\":{}}}}}",
            r.name.replace('\\', "\\\\").replace('"', "\\\""),
            r.ts_us,
            r.dur_us,
            r.tid,
            r.depth
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_inert_without_a_session() {
        // Hold the session lock so no concurrently-running test can have
        // a live session while we probe the disabled path.
        let _g = SESSION_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!TRACE_ON.load(Ordering::Relaxed));
        let s = span("orphan");
        assert!(s.start.is_none());
        drop(s);
    }

    #[test]
    fn sessions_collect_nested_spans_with_depth() {
        let session = TraceSession::start();
        {
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let records = session.finish();
        let names: Vec<&str> = records.iter().map(|r| r.name).collect();
        // Completion order: inner closes first.
        assert_eq!(names, vec!["inner", "outer"]);
        let inner = &records[0];
        let outer = &records[1];
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.depth, 0);
        assert!(inner.dur_us > 0 && outer.dur_us > 0);
        assert!(outer.ts_us <= inner.ts_us, "parent starts first");
        assert!(
            inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us + 1000,
            "child nests inside parent (1ms slack for clock rounding)"
        );
        assert_eq!(inner.tid, outer.tid);
    }

    #[test]
    fn finish_uninstalls_the_collector() {
        let session = TraceSession::start();
        drop(span("a"));
        let first = session.finish();
        assert_eq!(first.len(), 1);
        let session = TraceSession::start();
        let empty = session.finish();
        assert!(empty.is_empty(), "records do not leak across sessions");
    }

    #[test]
    fn chrome_json_shape() {
        let records = vec![
            SpanRecord {
                name: "check",
                ts_us: 0,
                dur_us: 10,
                tid: 0,
                depth: 0,
            },
            SpanRecord {
                name: "shapes",
                ts_us: 2,
                dur_us: 3,
                tid: 0,
                depth: 1,
            },
        ];
        let json = chrome_trace_json(&records);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"check\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":2,\"dur\":3"));
        assert!(json.contains("\"args\":{\"depth\":1}"));
    }
}
