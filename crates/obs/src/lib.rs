//! `soct_obs` — the workspace-wide observability substrate: metric
//! primitives (counters, gauges, log₂ latency histograms), a span layer
//! with Chrome-trace export, the paper-facing phase accumulator, and a
//! leveled `SOCT_LOG` key=value logger. Dependency-free, like the rest
//! of the workspace.
//!
//! Design contract (the "overhead contract" of `docs/ARCHITECTURE.md`):
//!
//! - **Counters and histograms are always on.** They are single relaxed
//!   atomic ops, incremented at round/request granularity — never inside
//!   per-tuple inner loops — so the instrumented build inside the 5%
//!   bench envelope *is* the production build.
//! - **Spans are off by default.** [`span()`] costs one relaxed atomic
//!   load when no [`TraceSession`] is installed: no clock read, no
//!   thread-local traffic, no allocation. Only an active session pays
//!   for timestamps and record collection.
//! - **Logging is off by default.** The [`log_info!`]-family macros
//!   check the parsed `SOCT_LOG` filter before touching their format
//!   arguments.
//!
//! Metric families follow the `soct_<layer>_<name>{labels}` naming
//! convention and render to Prometheus text exposition format via
//! [`PromText`]; span records render to Chrome-trace-viewer JSON
//! (loadable in `chrome://tracing` or Perfetto) via
//! [`chrome_trace_json`].
#![warn(missing_docs)]

pub mod logger;
pub mod metrics;
pub mod phase;
pub mod span;

pub use logger::Level;
pub use metrics::{global, Counter, Gauge, GlobalMetrics, Histogram, PromText};
pub use phase::Phases;
pub use span::{chrome_trace_json, span, Span, SpanRecord, TraceSession};
