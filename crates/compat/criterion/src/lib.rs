//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface the workspace's 12 bench targets use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — without registry access. Instead of criterion's statistical
//! machinery it takes `sample_size` timed samples (after a short warm-up
//! bounded by `warm_up_time`) and reports min/mean/max per benchmark in a
//! single line, which is enough to compare hot paths across PRs.

use std::fmt::Display;
use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Units of work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` after a bounded warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_deadline {
            hint_black_box(routine());
        }
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            hint_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(50),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for criterion compatibility; sampling here is driven by
    /// `sample_size` alone.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let sample_size = self.sample_size;
        let warm_up_time = self.warm_up_time;
        run_one(&id.into().id, sample_size, warm_up_time, None, f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Declares work-per-iteration for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` under `<group>/<id>`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(
            &label,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.warm_up_time,
            self.throughput,
            f,
        );
        self
    }

    /// Times `f(b, input)` under `<group>/<id>`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        warm_up_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().unwrap();
    let max = *b.samples.iter().max().unwrap();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{label:<60} mean {mean:>10.3?}  min {min:>10.3?}  max {max:>10.3?}  (n={n}){rate}",
        n = b.samples.len(),
    );
}

/// Declares a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags like `--bench`; this simple
            // harness has no CLI and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(3)
            .warm_up_time(std::time::Duration::from_millis(1))
            .measurement_time(std::time::Duration::from_millis(5));
        targets = sample_bench
    }

    criterion_group!(simple_benches, sample_bench);

    #[test]
    fn groups_run_to_completion() {
        benches();
        simple_benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("t-total", 250).to_string(), "t-total/250");
    }
}
