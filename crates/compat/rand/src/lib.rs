//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny slice of the `rand` API the generators and tests actually use:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the
//! [`RngExt::random_range`] / [`RngExt::random_bool`] conveniences over the
//! core [`Rng`] trait. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic for a given seed on every platform, which is
//! exactly what the reproducibility story of the experiments (§6) needs.

use std::ops::{Range, RangeInclusive};

/// Core random source: everything derives from `next_u64`.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Rng::next_u64`]).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically expands a 64-bit seed into a full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value; panics on an empty range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire's nearly-divisionless uniform sampling of `[0, span)`;
/// `span == 0` means the full 64-bit range.
#[inline]
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                // end - start + 1 wraps to 0 exactly on the full domain,
                // which uniform_u64 treats as "all 64 bits".
                let span = (end - start) as u64 & (<$t>::MAX as u64);
                let span = if (end - start) as u64 == u64::MAX { 0 } else { span + 1 };
                start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// `[0, span)` for spans wider than 64 bits, by masked rejection;
/// `span == 0` means the full 128-bit range.
#[inline]
fn uniform_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    if span == 0 {
        return ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    }
    if let Ok(narrow) = u64::try_from(span) {
        return uniform_u64(rng, narrow) as u128;
    }
    let shift = span.leading_zeros();
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        let x = wide >> shift;
        if x < span {
            return x;
        }
    }
}

impl SampleRange<u128> for Range<u128> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_u128(rng, self.end - self.start)
    }
}

impl SampleRange<u128> for RangeInclusive<u128> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> u128 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let span = (end - start).wrapping_add(1);
        start + uniform_u128(rng, span)
    }
}

/// Convenience methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform draw from a (half-open or inclusive) integer range.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of [0,1]");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Small, fast, and plenty for synthetic workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5u32..=5);
            assert_eq!(y, 5);
            let z = rng.random_range(0u64..u64::MAX);
            assert!(z < u64::MAX);
        }
    }

    #[test]
    fn wide_u128_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let lo = 1u128 << 70;
        let hi = (1u128 << 90) + 17;
        for _ in 0..1000 {
            let x = rng.random_range(lo..hi);
            assert!((lo..hi).contains(&x));
            let small = rng.random_range(0u128..100);
            assert!(small < 100);
        }
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut any_high = false;
        for _ in 0..64 {
            any_high |= rng.random_range(0u64..=u64::MAX) > u64::MAX / 2;
        }
        assert!(any_high);
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..1000).any(|_| rng.random_bool(0.0)));
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2500..3500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw(rng: &mut dyn Rng) -> usize {
            rng.random_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(draw(&mut rng) < 10);
        }
    }
}
