//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the slice of the API the workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), integer
//! range strategies, [`any`] for primitives, the `prop_assert*` macros,
//! and a checked-in regression-seed file compatible in spirit with
//! proptest's `proptest-regressions/` convention.
//!
//! # Regression files
//!
//! For a test file `tests/foo.rs`, seeds are read from
//! `proptest-regressions/foo.txt`, one per line:
//!
//! ```text
//! # comment
//! cc <test_name> 0x<16-hex-seed>   # optional trailing note
//! ```
//!
//! Regression seeds run before the randomized cases. Randomized cases are
//! derived deterministically from the (file, test) pair, so runs are
//! reproducible; when a case fails, the panic message names the seed to
//! add to the regression file. `PROPTEST_CASES` overrides the case count.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub use rand::Rng as RngCore;

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases per test (after regression seeds).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` randomized cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A failed test case (raised by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Attaches the generated-input description to the failure.
    pub fn with_context(self, case: &str) -> Self {
        TestCaseError {
            message: format!("{}\n    inputs: {}", self.message, case),
        }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

/// Generates one value per test case.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's combinator of the
    /// same name) — the idiom for building struct-valued strategies out
    /// of tuple strategies.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);

/// Collection strategies (the `proptest::collection` module slice the
/// workspace uses).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `Vec`s of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rand::RngExt::random_range(rng, self.len.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rand::RngExt::random_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rand::RngExt::random_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rand::Rng::next_u64(rng) & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::Rng::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

/// Unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// FNV-1a over the identifying strings: the deterministic base seed for a
/// test's randomized cases.
fn base_seed(source_file: &str, test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in source_file.bytes().chain([0]).chain(test_name.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// `tests/foo.rs` → `proptest-regressions/foo.txt` (resolved against the
/// package root, which is the cwd cargo gives test binaries).
fn regression_path(source_file: &str) -> std::path::PathBuf {
    let stem = std::path::Path::new(source_file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_string());
    std::path::PathBuf::from("proptest-regressions").join(format!("{stem}.txt"))
}

/// Parses regression seeds for `test_name` out of the regression file.
fn regression_seeds(source_file: &str, test_name: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(regression_path(source_file)) else {
        return Vec::new();
    };
    parse_regression_lines(&text, test_name)
}

/// Extracts `cc <test_name> 0x<hex>` seeds from regression-file text.
///
/// Panics on a malformed `cc` line: a checked-in seed that silently fails
/// to parse would never replay, which is exactly the false confidence the
/// regression file exists to prevent.
fn parse_regression_lines(text: &str, test_name: &str) -> Vec<u64> {
    let mut seeds = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        let mut parts = line.split_whitespace();
        if parts.next() != Some("cc") {
            continue;
        }
        let (Some(name), Some(seed)) = (parts.next(), parts.next()) else {
            panic!(
                "malformed regression line {} (want `cc <test> 0x<hex>`): {raw:?}",
                lineno + 1
            );
        };
        if name != test_name {
            continue;
        }
        let digits = seed.strip_prefix("0x").unwrap_or(seed);
        match u64::from_str_radix(digits, 16) {
            Ok(seed) => seeds.push(seed),
            Err(_) => panic!(
                "malformed regression seed on line {} (want hex u64): {raw:?}",
                lineno + 1
            ),
        }
    }
    seeds
}

/// Drives one property test: regression seeds first, then `cfg.cases`
/// deterministic pseudo-random cases. Panics (test failure) on the first
/// failing case, naming the seed to check in.
pub fn run_proptest(
    cfg: &ProptestConfig,
    source_file: &str,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cfg.cases);
    let base = base_seed(source_file, test_name);
    let regressions = regression_seeds(source_file, test_name);
    let labelled = regressions
        .iter()
        .map(|&s| ("regression", s))
        .chain((0..cases as u64).map(|i| {
            (
                "random",
                base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            )
        }));
    for (kind, seed) in labelled {
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest case failed ({kind} seed)\n  test: {test_name}\n  {msg}\n  \
                 to make this case a permanent regression test, add the line\n    \
                 cc {test_name} {seed:#018x}\n  to {path}",
                msg = e.message(),
                path = regression_path(source_file).display(),
            );
        }
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "prop_assert_eq! failed at {}:{}\n    left: {:?}\n   right: {:?}",
                        file!(), line!(), l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "prop_assert_eq! failed at {}:{}: {}\n    left: {:?}\n   right: {:?}",
                        file!(), line!(), format!($($fmt)+), l, r
                    )));
                }
            }
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "prop_assert_ne! failed at {}:{}\n    both: {:?}",
                        file!(), line!(), l
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "prop_assert_ne! failed at {}:{}: {}\n    both: {:?}",
                        file!(), line!(), format!($($fmt)+), l
                    )));
                }
            }
        }
    };
}

/// Declares property tests over generated inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(40))]
///
///     #[test]
///     fn holds(x in 0u64..100, flip in any::<bool>()) {
///         prop_assert!(x < 100 || flip);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_proptest(&__cfg, file!(), stringify!($name), |__rng| {
                    let mut __inputs: ::std::vec::Vec<::std::string::String> =
                        ::std::vec::Vec::new();
                    $(
                        let $arg = $crate::Strategy::new_value(&($strat), __rng);
                        __inputs.push(format!("{} = {:?}", stringify!($arg), &$arg));
                    )+
                    let __case: ::std::string::String = __inputs.join(", ");
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                    __result.map_err(|e| e.with_context(&__case))
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..=4, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4, "y was {}", y);
            let copy = b;
            prop_assert_eq!(b, copy); // exercises the eq macro on bools
            prop_assert_ne!(x, 99);
        }

        #[test]
        fn composite_strategies_compose(
            pair in (0u32..5, any::<bool>()).prop_map(|(n, b)| (n * 2, b)),
            xs in crate::collection::vec(1usize..4, 0..6),
        ) {
            prop_assert!(pair.0 < 10 && pair.0 % 2 == 0);
            prop_assert!(xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| (1..4).contains(&x)));
        }
    }

    #[test]
    fn deterministic_base_seed() {
        assert_eq!(
            super::base_seed("tests/a.rs", "t"),
            super::base_seed("tests/a.rs", "t")
        );
        assert_ne!(
            super::base_seed("tests/a.rs", "t"),
            super::base_seed("tests/a.rs", "u")
        );
    }

    #[test]
    fn regression_lines_parse() {
        let text = "# header comment\n\
                    cc alpha 0x0000000000000001\n\
                    cc beta 0xdeadbeefcafef00d # note\n\
                    cc alpha 002a\n\
                    not a cc line\n";
        assert_eq!(super::parse_regression_lines(text, "alpha"), vec![1, 0x2a]);
        assert_eq!(
            super::parse_regression_lines(text, "beta"),
            vec![0xdead_beef_cafe_f00d]
        );
        assert!(super::parse_regression_lines(text, "gamma").is_empty());
    }

    #[test]
    #[should_panic(expected = "malformed regression line")]
    fn truncated_cc_line_panics() {
        super::parse_regression_lines("cc alpha\n", "alpha");
    }

    #[test]
    #[should_panic(expected = "malformed regression seed")]
    fn non_hex_seed_panics() {
        super::parse_regression_lines("cc alpha 0xZZZ\n", "alpha");
    }

    #[test]
    fn regression_path_mapping() {
        assert_eq!(
            super::regression_path("tests/parser_roundtrip.rs"),
            std::path::PathBuf::from("proptest-regressions/parser_roundtrip.txt")
        );
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_seed() {
        crate::run_proptest(
            &ProptestConfig::with_cases(1),
            "tests/x.rs",
            "always_fails",
            |_| Err(TestCaseError::fail("nope")),
        );
    }
}
