//! Minimal, dependency-free stand-in for the `bytes` crate.
//!
//! The storage engine only needs a growable byte buffer with little-endian
//! put/get helpers and a consuming cursor over `&[u8]`; this module vendors
//! exactly that surface ([`BytesMut`], [`Buf`], [`BufMut`]) so the
//! workspace builds without registry access. [`BytesMut`] is a thin wrapper
//! over `Vec<u8>` — the zero-copy split/freeze machinery of the real crate
//! is not needed by the paged tables.

use std::ops::{Deref, DerefMut};

/// A growable, uniquely owned byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Bytes currently stored.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when no bytes are stored.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Allocated capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }

    /// Drops all contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Shortens the buffer to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.vec.truncate(len);
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.vec.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> Self {
        BytesMut { vec }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.vec
    }
}

/// Write-side cursor: append primitives in little-endian order.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u16`, little endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor: consume primitives from the front.
///
/// All `get_*` methods panic when fewer than the needed bytes remain,
/// matching the real crate; callers guard with [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a `u16`, little endian.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Reads a `u32`, little endian.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a `u64`, little endian.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(b"hdr");
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        assert_eq!(buf.len(), 3 + 2 + 4 + 8);

        let mut rd: &[u8] = &buf;
        assert_eq!(&rd.chunk()[..3], b"hdr");
        rd.advance(3);
        assert_eq!(rd.get_u16_le(), 0xBEEF);
        assert_eq!(rd.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn indexing_and_to_vec() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&[1, 2, 3, 4]);
        assert_eq!(&buf[1..3], &[2, 3]);
        assert_eq!(buf.to_vec(), vec![1, 2, 3, 4]);
        buf.truncate(2);
        assert_eq!(buf.len(), 2);
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut rd: &[u8] = &[1, 2];
        rd.advance(3);
    }
}
