//! The `FindShapes` procedure (§5.4): computing `shape(D)` from a tuple
//! source, with the paper's two implementations.
//!
//! - **In-memory**: stream every relation through main memory and take the
//!   shape of each tuple (the paper loads relations wholesale and splits
//!   oversized ones; our page-wise streaming is the same computation with
//!   the chunking built in — every tuple is decoded and hashed). The scan
//!   is zero-copy: each tuple's id pattern is computed straight off the
//!   borrowed page row as an inline [`Rgs`] word, with no staging buffer
//!   and no per-tuple allocation.
//! - **In-database**: never materialise tuples; issue one relaxed + one
//!   exact Boolean EXISTS query per candidate shape, Apriori-pruned over the
//!   partition lattice (`soct-storage::shape_query`).
//!
//! Which one wins depends on the database (§9.3): few tuples per relation
//! favour in-memory; few predicates of small arity favour in-database.
//!
//! Both implementations consume any [`TupleSource`] — engines, views,
//! plain instances, and (since the chase moved onto the packed columnar
//! store) chase output directly: a `soct_chase::ColumnarStore` is a
//! `TupleSource`, so `find_shapes(&chase_result.store, …)` runs with no
//! copy-out conversion to boxed atoms in between.
//!
//! Per-relation work is independent in both modes, so
//! [`find_shapes_parallel`] fans relations out over scoped worker threads
//! (the in-database mode batches its per-table query runs per worker); the
//! final shape set is sorted, so the result is identical to the sequential
//! functions regardless of the thread count.

use soct_model::{FxHashSet, PredId, Rgs, Shape};
use soct_storage::{find_shapes_apriori, ShapeQueryStats, StorageEngine, TupleSource};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which `FindShapes` implementation to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FindShapesMode {
    /// §5.4's in-memory flavour: stream and hash every tuple.
    InMemory,
    /// §5.4's in-database flavour: Apriori-pruned Boolean EXISTS queries.
    InDatabase,
}

impl std::str::FromStr for FindShapesMode {
    type Err = String;

    /// Parses the CLI/wire spellings `memory`/`mem` and `db`/`database` —
    /// the one alias table shared by the CLI flags and `?mode=` query
    /// parameters.
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "memory" | "mem" => Ok(FindShapesMode::InMemory),
            "db" | "database" => Ok(FindShapesMode::InDatabase),
            other => Err(format!("mode must be memory|db, got `{other}`")),
        }
    }
}

/// The outcome of `FindShapes`.
#[derive(Clone, Debug)]
pub struct ShapesReport {
    /// The distinct shapes of the database atoms, sorted.
    pub shapes: Vec<Shape>,
    /// Query counters (all zero for the in-memory implementation).
    pub stats: ShapeQueryStats,
    /// Tuples scanned (in-memory) — the work metric of Figure 3.
    pub tuples_scanned: u64,
}

/// `FindShapes(D)` under the chosen implementation.
pub fn find_shapes(src: &dyn TupleSource, mode: FindShapesMode) -> ShapesReport {
    match mode {
        FindShapesMode::InMemory => find_shapes_in_memory(src),
        FindShapesMode::InDatabase => find_shapes_in_database(src),
    }
}

/// `FindShapes(D)` with relations fanned out over worker threads.
///
/// `threads` follows the engine-wide convention (`0` = auto, see
/// [`soct_chase::resolve_threads`]); the source must be `Sync` because
/// workers share it read-only. The report is identical to [`find_shapes`]
/// for every thread count — shape sets are sorted and the work counters
/// are order-independent sums.
pub fn find_shapes_parallel(
    src: &(dyn TupleSource + Sync),
    mode: FindShapesMode,
    threads: usize,
) -> ShapesReport {
    let threads = soct_chase::resolve_threads(threads);
    let preds = src.non_empty_predicates();
    let workers = planned_workers(threads, preds.len(), src.total_rows());
    if workers <= 1 {
        return find_shapes(src, mode);
    }
    // Workers claim contiguous batches of relations: one atomic fetch per
    // batch, and the in-database mode issues its per-table query runs in
    // these batches too.
    let batch = preds.len().div_ceil(workers * 4).max(1);
    let cursor = AtomicUsize::new(0);
    let parts: Vec<(Vec<Shape>, ShapeQueryStats, u64)> = std::thread::scope(|scope| {
        let preds = &preds;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut shapes: Vec<Shape> = Vec::new();
                    let mut stats = ShapeQueryStats::default();
                    let mut tuples_scanned = 0u64;
                    loop {
                        let start = cursor.fetch_add(batch, Ordering::Relaxed);
                        if start >= preds.len() {
                            break;
                        }
                        for &pred in &preds[start..(start + batch).min(preds.len())] {
                            match mode {
                                FindShapesMode::InMemory => {
                                    let (seen, scanned) = relation_shapes_in_memory(src, pred);
                                    tuples_scanned += scanned;
                                    shapes.extend(seen.into_iter().map(|rgs| Shape { pred, rgs }));
                                }
                                FindShapesMode::InDatabase => {
                                    let (rgss, s) = find_shapes_apriori(src, pred);
                                    stats.merge(&s);
                                    shapes.extend(rgss.into_iter().map(|rgs| Shape { pred, rgs }));
                                }
                            }
                        }
                    }
                    (shapes, stats, tuples_scanned)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("FindShapes workers do not panic"))
            .collect()
    });
    let mut shapes = Vec::new();
    let mut stats = ShapeQueryStats::default();
    let mut tuples_scanned = 0u64;
    for (s, st, t) in parts {
        shapes.extend(s);
        stats.merge(&st);
        tuples_scanned += t;
    }
    shapes.sort_unstable();
    ShapesReport {
        shapes,
        stats,
        tuples_scanned,
    }
}

/// Rows per worker below which a parallel shape pass is not worth its
/// thread fan-out: spawning and joining costs more than scanning a few
/// thousand tuples, and unlike the chase engine's per-run pool, this
/// fan-out is paid on every call.
const PAR_MIN_ROWS: u64 = 4096;

/// Worker count for a parallel shape pass: one worker per
/// [`PAR_MIN_ROWS`] tuples, at most one per relation, capped by `threads`.
/// The row quotient is computed in `u64` and *saturated* into `usize`, so
/// a > 2^44-row source on a 32-bit target clamps instead of wrapping to a
/// tiny worker count.
fn planned_workers(threads: usize, preds: usize, total_rows: u64) -> usize {
    threads
        .min(preds)
        .min(usize::try_from(total_rows / PAR_MIN_ROWS).unwrap_or(usize::MAX))
}

/// In-memory implementation of §5.4: stream each relation's pages through
/// memory and hash every tuple's id pattern. The pattern is computed
/// directly from the borrowed row ([`Rgs::of_row`]) — the relation's pages
/// are already memory-resident in our embedded engine, so no further
/// staging copy exists and the per-tuple cost is pure scan + hash.
pub fn find_shapes_in_memory(src: &dyn TupleSource) -> ShapesReport {
    let mut shapes: Vec<Shape> = Vec::new();
    let mut tuples_scanned = 0u64;
    for pred in src.non_empty_predicates() {
        let (seen, scanned) = relation_shapes_in_memory(src, pred);
        tuples_scanned += scanned;
        shapes.extend(seen.into_iter().map(|rgs| Shape { pred, rgs }));
    }
    shapes.sort_unstable();
    ShapesReport {
        shapes,
        stats: ShapeQueryStats::default(),
        tuples_scanned,
    }
}

/// One relation's in-memory shape pass: hash every tuple straight off the
/// borrowed scan row. The unit of work [`find_shapes_parallel`]
/// distributes. Allocation-free per tuple: `Rgs::of_row` packs arities
/// ≤ 16 into an inline word on the stack, and the dedup set only grows by
/// the handful of *distinct* shapes a relation exhibits.
fn relation_shapes_in_memory(src: &dyn TupleSource, pred: PredId) -> (FxHashSet<Rgs>, u64) {
    let mut tuples_scanned = 0u64;
    let mut seen: FxHashSet<Rgs> = FxHashSet::default();
    src.scan(pred, &mut |row| {
        tuples_scanned += 1;
        seen.insert(Rgs::of_row(row));
        true
    });
    (seen, tuples_scanned)
}

/// In-database implementation: Apriori-pruned EXISTS queries per relation.
pub fn find_shapes_in_database(src: &dyn TupleSource) -> ShapesReport {
    let mut shapes: Vec<Shape> = Vec::new();
    let mut stats = ShapeQueryStats::default();
    for pred in src.non_empty_predicates() {
        let (rgss, s) = find_shapes_apriori(src, pred);
        stats.merge(&s);
        shapes.extend(rgss.into_iter().map(|rgs| Shape { pred, rgs }));
    }
    shapes.sort_unstable();
    ShapesReport {
        shapes,
        stats,
        tuples_scanned: 0,
    }
}

/// Materialised-catalog implementation (§10 future work): a constant-time
/// read of the engine's incrementally-maintained shape catalog. Returns
/// `None` when tracking was never enabled on the engine (callers should
/// fall back to one of the online modes).
pub fn find_shapes_materialized(engine: &StorageEngine) -> Option<ShapesReport> {
    let catalog = engine.shape_catalog()?;
    Some(ShapesReport {
        shapes: catalog.shapes(),
        stats: ShapeQueryStats::default(),
        tuples_scanned: 0,
    })
}

/// Shapes restricted to one predicate — convenience for tests and stats.
pub fn shapes_of_pred(report: &ShapesReport, pred: PredId) -> Vec<&Shape> {
    report.shapes.iter().filter(|s| s.pred == pred).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::{Atom, ConstId, Instance, Schema, Term};
    use soct_storage::{InstanceSource, LimitView, StorageEngine};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    fn engine() -> (Schema, StorageEngine) {
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 3).unwrap();
        let p = schema.add_predicate("p", 2).unwrap();
        let mut e = StorageEngine::new();
        e.create_table(r, "r", 3);
        e.create_table(p, "p", 2);
        e.insert(r, &[c(1), c(1), c(2)]);
        e.insert(r, &[c(3), c(4), c(5)]);
        e.insert(r, &[c(6), c(6), c(7)]); // duplicate shape
        e.insert(p, &[c(1), c(1)]);
        (schema, e)
    }

    #[test]
    fn worker_sizing_pins_the_4096_row_boundary() {
        // 4095 rows: below one PAR_MIN_ROWS quantum → sequential.
        assert_eq!(planned_workers(4, 2, 4095), 0);
        // Exactly one quantum → still the sequential path (workers ≤ 1).
        assert_eq!(planned_workers(4, 2, 4096), 1);
        // Two quanta across two predicates → exactly 2 workers.
        assert_eq!(planned_workers(4, 2, 2 * 4096), 2);
        // Thread and relation caps still apply.
        assert_eq!(planned_workers(1, 8, 1 << 20), 1);
        assert_eq!(planned_workers(8, 3, 1 << 20), 3);
        // The u64 → usize conversion saturates instead of wrapping: a row
        // count whose quotient exceeds usize::MAX must not truncate the
        // worker count to 0 (the 32-bit failure mode).
        assert_eq!(planned_workers(7, 9, u64::MAX), 7);
    }

    #[test]
    fn in_memory_and_in_database_agree() {
        let (_schema, e) = engine();
        let a = find_shapes(&e, FindShapesMode::InMemory);
        let b = find_shapes(&e, FindShapesMode::InDatabase);
        assert_eq!(a.shapes, b.shapes);
        assert_eq!(a.shapes.len(), 3);
    }

    #[test]
    fn in_memory_counts_tuples_in_database_counts_queries() {
        let (_schema, e) = engine();
        let a = find_shapes(&e, FindShapesMode::InMemory);
        assert_eq!(a.tuples_scanned, 4);
        assert_eq!(a.stats.exact_queries, 0);
        let b = find_shapes(&e, FindShapesMode::InDatabase);
        assert_eq!(b.tuples_scanned, 0);
        assert!(b.stats.exact_queries > 0);
        assert!(b.stats.relaxed_queries >= b.stats.exact_queries);
    }

    #[test]
    fn works_over_views() {
        let (_schema, e) = engine();
        // A 1-row view of r only exposes shape (1,1,2); p exposes (1,1).
        let v = LimitView::new(&e, 1);
        let a = find_shapes(&v, FindShapesMode::InMemory);
        let b = find_shapes(&v, FindShapesMode::InDatabase);
        assert_eq!(a.shapes, b.shapes);
        assert_eq!(a.shapes.len(), 2);
    }

    #[test]
    fn works_over_instances() {
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 2).unwrap();
        let mut inst = Instance::new();
        inst.insert(Atom::new(&schema, r, vec![c(0), c(0)]).unwrap());
        inst.insert(Atom::new(&schema, r, vec![c(0), c(1)]).unwrap());
        let src = InstanceSource::new(&schema, &inst);
        let rep = find_shapes(&src, FindShapesMode::InMemory);
        assert_eq!(rep.shapes.len(), 2);
        assert_eq!(shapes_of_pred(&rep, r).len(), 2);
        let rep_db = find_shapes(&src, FindShapesMode::InDatabase);
        assert_eq!(rep.shapes, rep_db.shapes);
    }

    #[test]
    fn materialized_mode_matches_online_modes() {
        let (_schema, mut e) = engine();
        assert!(find_shapes_materialized(&e).is_none(), "tracking off");
        e.enable_shape_tracking();
        let mat = find_shapes_materialized(&e).unwrap();
        let mem = find_shapes(&e, FindShapesMode::InMemory);
        assert_eq!(mat.shapes, mem.shapes);
        // Inserts keep the catalog current.
        let r = soct_model::PredId(0);
        e.insert(r, &[c(9), c(9), c(9)]);
        let mat2 = find_shapes_materialized(&e).unwrap();
        let mem2 = find_shapes(&e, FindShapesMode::InMemory);
        assert_eq!(mat2.shapes, mem2.shapes);
        assert_eq!(mat2.shapes.len(), mat.shapes.len() + 1);
    }

    #[test]
    fn consumes_chase_output_without_conversion() {
        use soct_chase::{run_chase_columnar, ChaseConfig, ChaseVariant};
        use soct_model::{Tgd, VarId};
        let v = |i: u32| Term::Var(VarId(i));
        // r(x,y) → ∃z p(x,z): the chase derives p-atoms with nulls.
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 2).unwrap();
        let p = schema.add_predicate("p", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&schema, p, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&schema, r, vec![c(0), c(0)]).unwrap());
        db.insert(Atom::new(&schema, r, vec![c(1), c(2)]).unwrap());
        let res = run_chase_columnar(
            &db,
            &[tgd],
            &ChaseConfig::unbounded(ChaseVariant::SemiOblivious),
        );
        // The packed store is a TupleSource: no Instance is built here.
        let mem = find_shapes(&res.store, FindShapesMode::InMemory);
        let dbm = find_shapes(&res.store, FindShapesMode::InDatabase);
        assert_eq!(mem.shapes, dbm.shapes);
        // r contributes shapes (1,1) and (1,2); p contributes (1,2).
        assert_eq!(mem.shapes.len(), 3);
        assert_eq!(shapes_of_pred(&mem, p).len(), 1);
        // And it agrees with the decoded-instance route.
        let via_instance = soct_model::shape::shapes_of_instance(&res.store.to_instance());
        assert_eq!(mem.shapes, via_instance);
    }

    #[test]
    fn matches_model_level_shape_extraction() {
        // `shapes_of_instance` on the instance and `find_shapes` on the
        // engine must coincide.
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 4).unwrap();
        let mut inst = Instance::new();
        let rows: &[&[u32]] = &[&[1, 2, 1, 2], &[3, 3, 3, 3], &[4, 5, 6, 7], &[8, 8, 9, 8]];
        for row in rows {
            let terms: Vec<Term> = row.iter().map(|&x| c(x)).collect();
            inst.insert(Atom::new(&schema, r, terms).unwrap());
        }
        let mut e = StorageEngine::new();
        e.load_instance(&schema, &inst);
        let via_engine = find_shapes(&e, FindShapesMode::InDatabase);
        let via_model = soct_model::shape::shapes_of_instance(&inst);
        assert_eq!(via_engine.shapes, via_model);
    }
}
