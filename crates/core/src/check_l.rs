//! `IsChaseFinite[L]` (Algorithm 3): semi-oblivious chase termination for
//! linear TGDs via dynamic simplification.
//!
//! ```text
//! Σ_s ← DynSimplification(D, Σ);  G ← BuildDepGraph(Σ_s);
//! if FindSpecialSCC(G) ≠ ∅ then false else true
//! ```
//!
//! By Lemma 4.5 no supportedness check is needed: every predicate of
//! `simple_D(Σ)` is derivable from `simple(D)` by construction, so a
//! special cycle in `dg(simple_D(Σ))` is automatically supported.

use crate::dynsimpl::{dyn_simplification, DynSimplification};
use crate::find_shapes::{find_shapes, FindShapesMode, ShapesReport};
use crate::timings::LTimings;
use soct_graph::{find_special_sccs, DependencyGraph};
use soct_model::{Schema, Shape, Tgd};
use soct_obs::Phases;
use soct_storage::{ShapeQueryStats, TupleSource};

/// Report of one `IsChaseFinite[L]` run.
#[derive(Clone, Debug)]
pub struct LCheckReport {
    /// `true` iff `chase(D, Σ)` is finite.
    pub finite: bool,
    /// Per-phase wall-clock breakdown (§8's reported quantities).
    pub timings: LTimings,
    /// `|shape(D)|` (the `n-shapes` statistic of Table 1).
    pub n_db_shapes: usize,
    /// `|Σ(shape(D))|`: shapes reached by the fixpoint.
    pub shapes_derived: usize,
    /// `|simple_D(Σ)|`.
    pub n_simplified_tgds: usize,
    /// Nodes in the dependency graph of the simplified set.
    pub graph_nodes: usize,
    /// Edges in the dependency graph of the simplified set.
    pub graph_edges: usize,
    /// Special (null-propagating) edges among them.
    pub special_edges: usize,
    /// Special SCCs found (any ⇒ infinite).
    pub num_special_sccs: usize,
    /// FindShapes work counters (queries or tuples, by mode).
    pub shape_stats: ShapeQueryStats,
    /// Tuples scanned by the in-memory FindShapes (zero in-database).
    pub tuples_scanned: u64,
}

/// Algorithm 3 with the database behind a [`TupleSource`].
pub fn is_chase_finite_l(
    schema: &Schema,
    tgds: &[Tgd],
    src: &dyn TupleSource,
    mode: FindShapesMode,
) -> LCheckReport {
    let mut phases = Phases::new();
    let shapes = phases.run("shapes", || find_shapes(src, mode));
    let mut report = check_l_with_shapes(schema, tgds, &shapes.shapes);
    report.timings.t_shapes = phases.duration("shapes");
    report.shape_stats = shapes.stats;
    report.tuples_scanned = shapes.tuples_scanned;
    report
}

/// Algorithm 3 with the `FindShapes` phase fanned out over worker threads
/// (`threads` as in [`soct_chase::resolve_threads`]; `0` = auto). The
/// verdict and every statistic match [`is_chase_finite_l`] exactly — only
/// `t_shapes` wall-clock changes.
pub fn is_chase_finite_l_parallel(
    schema: &Schema,
    tgds: &[Tgd],
    src: &(dyn TupleSource + Sync),
    mode: FindShapesMode,
    threads: usize,
) -> LCheckReport {
    let mut phases = Phases::new();
    let shapes = phases.run("shapes", || {
        crate::find_shapes::find_shapes_parallel(src, mode, threads)
    });
    let mut report = check_l_with_shapes(schema, tgds, &shapes.shapes);
    report.timings.t_shapes = phases.duration("shapes");
    report.shape_stats = shapes.stats;
    report.tuples_scanned = shapes.tuples_scanned;
    report
}

/// The db-independent component of Algorithm 3 (§8): dynamic
/// simplification, dependency graph, special SCCs — starting from
/// already-computed database shapes. This is what Figures 5–7 time.
pub fn check_l_with_shapes(schema: &Schema, tgds: &[Tgd], db_shapes: &[Shape]) -> LCheckReport {
    let mut phases = Phases::new();
    let (simplification, graph) = phases.run("graph", || {
        let simplification: DynSimplification = dyn_simplification(schema, tgds, db_shapes);
        let graph = DependencyGraph::build(simplification.schema(), &simplification.tgds);
        (simplification, graph)
    });
    let special = phases.run("comp", || find_special_sccs(&graph).special_sccs());

    LCheckReport {
        finite: special.is_empty(),
        timings: LTimings::from_phases(&phases),
        n_db_shapes: db_shapes.len(),
        shapes_derived: simplification.shapes_derived,
        n_simplified_tgds: simplification.tgds.len(),
        graph_nodes: graph.num_nodes(),
        graph_edges: graph.num_edges(),
        special_edges: graph.num_special_edges(),
        num_special_sccs: special.len(),
        shape_stats: ShapeQueryStats::default(),
        tuples_scanned: 0,
    }
}

/// Algorithm 3 from rule text (fills `t-parse`) against a tuple source.
pub fn is_chase_finite_l_text(
    text: &str,
    src: &dyn TupleSource,
    mode: FindShapesMode,
) -> Result<(LCheckReport, Schema, Vec<Tgd>), soct_parser::ParseError> {
    let mut schema = Schema::new();
    let mut consts = soct_model::Interner::new();
    let mut phases = Phases::new();
    let tgds = phases.run("parse", || {
        soct_parser::parse_tgds(text, &mut schema, &mut consts)
    })?;
    let mut report = is_chase_finite_l(&schema, &tgds, src, mode);
    report.timings.t_parse = phases.duration("parse");
    Ok((report, schema, tgds))
}

/// Shapes report for callers that want both the shapes and the check.
pub fn find_db_shapes(src: &dyn TupleSource, mode: FindShapesMode) -> ShapesReport {
    find_shapes(src, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::{Atom, ConstId, Instance, Term, VarId};
    use soct_storage::{InstanceSource, StorageEngine};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    /// Example 3.4: D = {R(a,b)}, σ: R(x,x) → ∃z R(z,x).
    fn example_3_4(matching_db: bool) -> (Schema, Instance, Vec<Tgd>) {
        let mut schema = Schema::new();
        let r = schema.add_predicate("R", 2).unwrap();
        let mut db = Instance::new();
        if matching_db {
            db.insert(Atom::new(&schema, r, vec![c(0), c(0)]).unwrap());
        } else {
            db.insert(Atom::new(&schema, r, vec![c(0), c(1)]).unwrap());
        }
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(0)]).unwrap()],
            vec![Atom::new(&schema, r, vec![v(1), v(0)]).unwrap()],
        )
        .unwrap();
        (schema, db, vec![tgd])
    }

    #[test]
    fn example_3_4_is_finite_despite_non_weak_acyclicity() {
        // The paper's motivating example for simplification: Σ is not
        // D-weakly-acyclic, yet the chase is finite because the body shape
        // R_(1,1) never occurs.
        let (schema, db, tgds) = example_3_4(false);
        for mode in [FindShapesMode::InMemory, FindShapesMode::InDatabase] {
            let src = InstanceSource::new(&schema, &db);
            let rep = is_chase_finite_l(&schema, &tgds, &src, mode);
            assert!(rep.finite, "{mode:?}");
            assert_eq!(rep.n_simplified_tgds, 0);
        }
    }

    #[test]
    fn example_3_4_flips_with_matching_database() {
        // With D = {R(a,a)} the rule fires: R(z, a), then shape (1,2) feeds
        // R(x,x)? No — R(z,x) with z fresh has shape (1,2), and the rule
        // needs shape (1,1): the chase adds exactly one atom and stops.
        let (schema, db, tgds) = example_3_4(true);
        let src = InstanceSource::new(&schema, &db);
        let rep = is_chase_finite_l(&schema, &tgds, &src, FindShapesMode::InMemory);
        assert!(rep.finite);
        assert_eq!(rep.n_simplified_tgds, 1);
        assert_eq!(rep.shapes_derived, 2);
    }

    #[test]
    fn linear_divergence_is_caught() {
        // R(x,y) → ∃z R(y,z) with any non-empty database.
        let mut schema = Schema::new();
        let r = schema.add_predicate("R", 2).unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&schema, r, vec![c(0), c(1)]).unwrap());
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&schema, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let src = InstanceSource::new(&schema, &db);
        let rep = is_chase_finite_l(&schema, &[tgd], &src, FindShapesMode::InMemory);
        assert!(!rep.finite);
        assert!(rep.num_special_sccs > 0);
    }

    #[test]
    fn agrees_with_sl_checker_on_simple_linear_input() {
        // Finite case: p(x,y) → r(y,x) swaps positions, so the null
        // invented at (p,2) only ever reaches (r,1), which has no outgoing
        // edges — both checkers must say finite.
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 2).unwrap();
        let p = schema.add_predicate("p", 2).unwrap();
        let finite_tgds = vec![
            Tgd::new(
                vec![Atom::new(&schema, r, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&schema, p, vec![v(1), v(2)]).unwrap()],
            )
            .unwrap(),
            Tgd::new(
                vec![Atom::new(&schema, p, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&schema, r, vec![v(1), v(0)]).unwrap()],
            )
            .unwrap(),
        ];
        // Infinite case: copying p back into r identically closes the
        // special cycle.
        let infinite_tgds = vec![
            finite_tgds[0].clone(),
            Tgd::new(
                vec![Atom::new(&schema, p, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&schema, r, vec![v(0), v(1)]).unwrap()],
            )
            .unwrap(),
        ];
        let mut db = Instance::new();
        db.insert(Atom::new(&schema, r, vec![c(0), c(1)]).unwrap());
        let db_preds: soct_model::FxHashSet<_> = [r].into_iter().collect();
        for (tgds, expect_finite) in [(finite_tgds, true), (infinite_tgds, false)] {
            let src = InstanceSource::new(&schema, &db);
            let l_rep = is_chase_finite_l(&schema, &tgds, &src, FindShapesMode::InMemory);
            let sl_rep = crate::check_sl::is_chase_finite_sl(&schema, &tgds, &db_preds);
            assert_eq!(l_rep.finite, sl_rep.finite);
            assert_eq!(l_rep.finite, expect_finite);
        }
    }

    #[test]
    fn database_outside_rule_schema_is_harmless() {
        // Footnote 1: atoms over predicates not in sch(Σ) do not affect the
        // chase; the checker must not choke on them.
        let mut schema = Schema::new();
        let r = schema.add_predicate("R", 2).unwrap();
        let extra = schema.add_predicate("Extra", 3).unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&schema, r, vec![c(0), c(1)]).unwrap());
        db.insert(Atom::new(&schema, extra, vec![c(0), c(0), c(1)]).unwrap());
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&schema, r, vec![v(1), v(0)]).unwrap()],
        )
        .unwrap();
        let src = InstanceSource::new(&schema, &db);
        let rep = is_chase_finite_l(&schema, &[tgd], &src, FindShapesMode::InMemory);
        assert!(rep.finite, "copy cycle has no special edge");
    }

    #[test]
    fn text_entry_point_over_engine() {
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 2).unwrap();
        let mut engine = StorageEngine::new();
        engine.create_table(r, "r", 2);
        engine.insert(r, &[c(0), c(0)]);
        let (rep, _, _) =
            is_chase_finite_l_text("r(X, X) -> r(Z, X).\n", &engine, FindShapesMode::InDatabase)
                .unwrap();
        // Shape (1,1) present ⇒ rule fires producing shape (1,2); shape
        // (1,2) does not re-trigger the rule ⇒ finite.
        assert!(rep.finite);
        assert!(rep.timings.t_parse > std::time::Duration::ZERO);
        assert_eq!(rep.n_db_shapes, 1);
    }

    #[test]
    fn repeated_variable_cycle_through_shapes_diverges() {
        // R(x,x) → ∃z S(x,z);  S(x,y) → R(y,y): S_(1,2) feeds R_(1,1) back.
        let mut schema = Schema::new();
        let r = schema.add_predicate("R", 2).unwrap();
        let s = schema.add_predicate("S", 2).unwrap();
        let t1 = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(0)]).unwrap()],
            vec![Atom::new(&schema, s, vec![v(0), v(1)]).unwrap()],
        )
        .unwrap();
        let t2 = Tgd::new(
            vec![Atom::new(&schema, s, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&schema, r, vec![v(1), v(1)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&schema, r, vec![c(0), c(0)]).unwrap());
        let src = InstanceSource::new(&schema, &db);
        let rep = is_chase_finite_l(&schema, &[t1, t2], &src, FindShapesMode::InMemory);
        assert!(!rep.finite);
    }
}
