//! # soct-core
//!
//! The paper's primary contribution, rebuilt: the practical semi-oblivious
//! chase termination checkers `IsChaseFinite[SL]` (Algorithm 1) and
//! `IsChaseFinite[L]` (Algorithm 3), with the `FindShapes` procedure in its
//! in-memory and in-database incarnations, `DynSimplification`
//! (Algorithm 2), the timing instrumentation behind every figure of §7–§9,
//! and the materialization-based oracle used for cross-validation.
//!
//! `FindShapes` and the linear checker's shape phase can fan their
//! per-relation work out over worker threads ([`find_shapes_parallel`],
//! [`is_chase_finite_l_parallel`], [`check_termination_threads`]); results
//! are identical to the sequential entry points for every thread count.

#![warn(missing_docs)]

pub mod cache;
pub mod check_l;
pub mod check_sl;
pub mod dynsimpl;
pub mod find_shapes;
pub mod oracle;
pub mod timings;

pub use cache::{
    cache_key, cache_key_live, check_termination_cached, check_termination_live, CacheKey,
    CacheStats, CachedCheck, VerdictCache,
};
pub use check_l::{
    check_l_with_shapes, is_chase_finite_l, is_chase_finite_l_parallel, is_chase_finite_l_text,
    LCheckReport,
};
pub use check_sl::{
    derivable_predicates, is_chase_finite_sl, is_chase_finite_sl_source, is_chase_finite_sl_text,
    SlCheckReport,
};
pub use dynsimpl::{dyn_simplification, DynSimplification};
pub use find_shapes::{
    find_shapes, find_shapes_in_database, find_shapes_in_memory, find_shapes_materialized,
    find_shapes_parallel, FindShapesMode, ShapesReport,
};
pub use oracle::{
    check_termination, check_termination_engine, check_termination_threads, materialization_check,
    TerminationReport, Verdict,
};
pub use timings::{ms, CacheTimings, LTimings, SlTimings};
