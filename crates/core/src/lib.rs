//! # soct-core
//!
//! The paper's primary contribution, rebuilt: the practical semi-oblivious
//! chase termination checkers `IsChaseFinite[SL]` (Algorithm 1) and
//! `IsChaseFinite[L]` (Algorithm 3), with the `FindShapes` procedure in its
//! in-memory and in-database incarnations, `DynSimplification`
//! (Algorithm 2), the timing instrumentation behind every figure of §7–§9,
//! and the materialization-based oracle used for cross-validation.

pub mod check_l;
pub mod check_sl;
pub mod dynsimpl;
pub mod find_shapes;
pub mod oracle;
pub mod timings;

pub use check_l::{check_l_with_shapes, is_chase_finite_l, is_chase_finite_l_text, LCheckReport};
pub use check_sl::{
    derivable_predicates, is_chase_finite_sl, is_chase_finite_sl_source, is_chase_finite_sl_text,
    SlCheckReport,
};
pub use dynsimpl::{dyn_simplification, DynSimplification};
pub use find_shapes::{
    find_shapes, find_shapes_in_database, find_shapes_in_memory, find_shapes_materialized,
    FindShapesMode, ShapesReport,
};
pub use oracle::{check_termination, materialization_check, TerminationReport, Verdict};
pub use timings::{ms, LTimings, SlTimings};
