//! A sharded, LRU-bounded, persistable verdict cache over the fingerprint
//! layer of `soct_model::fingerprint`.
//!
//! The paper factors termination checking into a database-independent
//! phase over the ruleset and a database-dependent phase over the shapes
//! (`LTimings::db_independent`), which makes verdicts reusable across any
//! two requests whose ruleset and shape fingerprints agree. The cache
//! keys on exactly that pair:
//!
//! - the **ruleset key** is [`fingerprint_ruleset`] — order-, renaming-,
//!   and interning-invariant;
//! - the **database key** depends on the TGD class: linear sets key on
//!   `shape(D)` ([`fingerprint_instance_shapes`]), simple-linear and
//!   general sets key only on the non-empty predicates
//!   ([`fingerprint_predicates`]) — the verdict provably depends on
//!   nothing else (§4, Remark 1).
//!
//! Entries are spread over a fixed number of shards, each behind its own
//! mutex, so a serving layer can probe concurrently; every shard enforces
//! its slice of the LRU bound with timestamp eviction. The whole cache
//! serialises to a small binary blob (`SOCTVC1\0` framing, in the style
//! of `soct_storage::persist`) so a service restart starts warm.

use crate::find_shapes::FindShapesMode;
use crate::oracle::{
    check_termination_engine, check_termination_threads, TerminationReport, Verdict,
};
use crate::timings::CacheTimings;
use bytes::{Buf, BufMut, BytesMut};
use soct_model::fingerprint::{
    fingerprint_instance_shapes, fingerprint_predicates, fingerprint_ruleset, fingerprint_shapes,
    Fingerprint,
};
use soct_model::{FxHashMap, Instance, Schema, Tgd, TgdClass};
use soct_obs::Phases;
use soct_storage::{StorageEngine, TupleSource};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The pair of fingerprints a verdict is keyed by.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CacheKey {
    /// Canonical ruleset fingerprint.
    pub rules: Fingerprint,
    /// Class-dependent database fingerprint (shapes for L, non-empty
    /// predicates for SL/general).
    pub db: Fingerprint,
}

/// Computes the cache key for a check request, together with the class the
/// dispatcher will use. The database half is chosen per class so that the
/// key never over-discriminates: any two databases mapping to the same key
/// are guaranteed the same verdict under `check_termination`.
pub fn cache_key(schema: &Schema, tgds: &[Tgd], db: &Instance) -> (CacheKey, TgdClass) {
    let class = soct_model::tgd::classify(tgds);
    let rules = fingerprint_ruleset(schema, tgds);
    let db_fp = match class {
        TgdClass::Linear => fingerprint_instance_shapes(schema, db),
        TgdClass::SimpleLinear | TgdClass::General => {
            fingerprint_predicates(schema, &db.non_empty_predicates())
        }
    };
    (CacheKey { rules, db: db_fp }, class)
}

/// Domain tag XORed into the db half of every live-engine cache key.
///
/// Without it, a live check and a body (instance) check over databases
/// with coinciding fingerprints map to the *same* entry — the collision
/// PR 9's `serve_metrics` test documented. That sharing is only sound
/// while the maintained accumulators are provably exact; separating the
/// domains means a desynced live fingerprint can at worst serve a stale
/// *live* verdict, never poison the body-check keyspace (and vice
/// versa). The revalidation property is untouched: live keys still
/// collide with other live keys exactly when the underlying
/// fingerprints agree.
const LIVE_DB_DOMAIN: u128 = 0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c834;

/// [`cache_key`] against a live [`StorageEngine`]. A tracking-enabled
/// engine answers the db half from its incrementally-maintained
/// accumulators in O(1) — this is the revalidation primitive: after any
/// number of shape-preserving writes the key is unchanged, so a previously
/// cached verdict is served with zero re-derivation. Engines without
/// tracking fall back to one scan (producing the same key, so scan-derived
/// and maintained lookups interchange freely). The db half carries the
/// `LIVE_DB_DOMAIN` separator, so live entries never share cache slots
/// with instance-path entries whose fingerprints happen to coincide.
pub fn cache_key_live(
    schema: &Schema,
    tgds: &[Tgd],
    engine: &StorageEngine,
) -> (CacheKey, TgdClass) {
    let class = soct_model::tgd::classify(tgds);
    let rules = fingerprint_ruleset(schema, tgds);
    let db_fp = match class {
        TgdClass::Linear => engine.shape_fingerprint().unwrap_or_else(|| {
            let shapes = crate::find_shapes::find_shapes(engine, FindShapesMode::InMemory).shapes;
            fingerprint_shapes(schema, &shapes)
        }),
        TgdClass::SimpleLinear | TgdClass::General => engine
            .predicate_fingerprint()
            .unwrap_or_else(|| fingerprint_predicates(schema, &engine.non_empty_predicates())),
    };
    let db_fp = Fingerprint(db_fp.0 ^ LIVE_DB_DOMAIN);
    (CacheKey { rules, db: db_fp }, class)
}

/// One cached verdict.
#[derive(Clone, Copy, Debug)]
struct Entry {
    verdict: Verdict,
    class: TgdClass,
    last_used: u64,
}

/// Monotonic counters exposed by [`VerdictCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
}

const SHARD_COUNT: usize = 16;
const MAGIC: &[u8; 8] = b"SOCTVC1\0";

/// A sharded in-memory verdict cache with an LRU bound.
#[derive(Debug)]
pub struct VerdictCache {
    shards: Vec<Mutex<FxHashMap<CacheKey, Entry>>>,
    per_shard_capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl VerdictCache {
    /// Creates a cache bounded to roughly `capacity` entries (spread over
    /// the shards; each shard enforces its own slice of the bound). A zero
    /// capacity is bumped to one entry per shard.
    pub fn new(capacity: usize) -> Self {
        VerdictCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            per_shard_capacity: capacity.div_ceil(SHARD_COUNT).max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Total entry bound.
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * SHARD_COUNT
    }

    /// Current number of cached verdicts.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// True when no verdict is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<FxHashMap<CacheKey, Entry>> {
        let folded = key.rules.0 ^ key.db.0.rotate_left(64);
        let h = (folded as u64) ^ ((folded >> 64) as u64);
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Looks up a verdict, refreshing its LRU stamp on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<(Verdict, TgdClass)> {
        let mut shard = self.shard_of(key).lock().expect("cache shard poisoned");
        match shard.get_mut(key) {
            Some(e) => {
                e.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((e.verdict, e.class))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) a verdict, evicting the least-recently-used
    /// entry of the target shard when it is full.
    pub fn insert(&self, key: CacheKey, verdict: Verdict, class: TgdClass) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(&key).lock().expect("cache shard poisoned");
        if shard.len() >= self.per_shard_capacity && !shard.contains_key(&key) {
            // O(shard) scan per eviction: shards are small (capacity /
            // 16) and evictions only happen once a shard is full.
            if let Some(oldest) = shard
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                shard.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.insert(
            key,
            Entry {
                verdict,
                class,
                last_used: stamp,
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Serialises all entries (`SOCTVC1\0` magic, little-endian u32 count,
    /// then 34-byte records: rules fp, db fp, verdict, class). Entries are
    /// sorted by key, so equal caches serialise to equal bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut entries: Vec<(CacheKey, Entry)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("cache shard poisoned")
                    .iter()
                    .map(|(k, e)| (*k, *e))
                    .collect::<Vec<_>>()
            })
            .collect();
        entries.sort_unstable_by_key(|(k, _)| *k);
        let mut out = BytesMut::with_capacity(12 + entries.len() * 34);
        out.put_slice(MAGIC);
        out.put_u32_le(entries.len() as u32);
        for (k, e) in entries {
            out.put_slice(&k.rules.to_le_bytes());
            out.put_slice(&k.db.to_le_bytes());
            out.put_u8(verdict_code(e.verdict));
            out.put_u8(class_code(e.class));
        }
        out.to_vec()
    }

    /// Loads entries serialised by [`VerdictCache::to_bytes`] into this
    /// cache (on top of whatever it already holds).
    pub fn load_bytes(&self, mut data: &[u8]) -> io::Result<()> {
        let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        if data.len() < 12 || &data[..8] != MAGIC {
            return Err(err("bad verdict-cache magic"));
        }
        data.advance(8);
        let count = data.get_u32_le() as usize;
        if data.remaining() < count * 34 {
            return Err(err("truncated verdict-cache entries"));
        }
        for _ in 0..count {
            let mut fp = [0u8; 16];
            fp.copy_from_slice(&data[..16]);
            data.advance(16);
            let rules = Fingerprint::from_le_bytes(fp);
            fp.copy_from_slice(&data[..16]);
            data.advance(16);
            let db = Fingerprint::from_le_bytes(fp);
            let verdict = decode_verdict(data.get_u8()).ok_or_else(|| err("bad verdict code"))?;
            let class = decode_class(data.get_u8()).ok_or_else(|| err("bad class code"))?;
            self.insert(CacheKey { rules, db }, verdict, class);
        }
        Ok(())
    }

    /// Writes the cache to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a file written by [`VerdictCache::save`] into this cache.
    pub fn load(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.load_bytes(&std::fs::read(path)?)
    }
}

fn verdict_code(v: Verdict) -> u8 {
    match v {
        Verdict::Finite => 0,
        Verdict::Infinite => 1,
        Verdict::Unknown => 2,
    }
}

fn decode_verdict(b: u8) -> Option<Verdict> {
    match b {
        0 => Some(Verdict::Finite),
        1 => Some(Verdict::Infinite),
        2 => Some(Verdict::Unknown),
        _ => None,
    }
}

fn class_code(c: TgdClass) -> u8 {
    match c {
        TgdClass::SimpleLinear => 0,
        TgdClass::Linear => 1,
        TgdClass::General => 2,
    }
}

fn decode_class(b: u8) -> Option<TgdClass> {
    match b {
        0 => Some(TgdClass::SimpleLinear),
        1 => Some(TgdClass::Linear),
        2 => Some(TgdClass::General),
        _ => None,
    }
}

/// The result of a cache-aware termination check.
#[derive(Clone, Debug)]
pub struct CachedCheck {
    /// The verdict and dispatch class (identical to what the uncached
    /// [`crate::check_termination`] would return).
    pub report: TerminationReport,
    /// True when the verdict came from the cache.
    pub hit: bool,
    /// The ruleset half of the key.
    pub rules_fp: Fingerprint,
    /// The database half of the key.
    pub db_fp: Fingerprint,
    /// Where the time went (fingerprinting / lookup / checking).
    pub timings: CacheTimings,
}

/// [`crate::check_termination_threads`] with a verdict cache in front: the
/// key is computed from the canonical fingerprints, a hit returns in
/// O(fingerprint + lookup), and a miss runs the checker and populates the
/// cache. Cached verdicts are exact, never approximate — the key
/// construction ([`cache_key`]) only equates requests whose verdicts
/// provably agree.
pub fn check_termination_cached(
    schema: &Schema,
    tgds: &[Tgd],
    db: &Instance,
    mode: FindShapesMode,
    threads: usize,
    cache: &VerdictCache,
) -> CachedCheck {
    let mut phases = Phases::new();
    let (key, class) = phases.run("fingerprint", || cache_key(schema, tgds, db));
    let cached = phases.run("lookup", || cache.get(&key));

    if let Some((verdict, cached_class)) = cached {
        debug_assert_eq!(cached_class, class, "class is a function of the ruleset");
        return CachedCheck {
            report: TerminationReport {
                verdict,
                class: cached_class,
            },
            hit: true,
            rules_fp: key.rules,
            db_fp: key.db,
            timings: CacheTimings::from_phases(&phases),
        };
    }

    let report = phases.run("check", || {
        check_termination_threads(schema, tgds, db, mode, threads)
    });
    cache.insert(key, report.verdict, report.class);
    CachedCheck {
        report,
        hit: false,
        rules_fp: key.rules,
        db_fp: key.db,
        timings: CacheTimings::from_phases(&phases),
    }
}

/// [`check_termination_cached`] against a live [`StorageEngine`] — the
/// end-to-end revalidation path. With shape tracking enabled, a hit costs
/// one ruleset fingerprint, two O(1) accumulator reads, and one shard
/// probe: sub-millisecond regardless of database size, and guaranteed
/// whenever no write since the last check changed the class-relevant
/// fingerprint (the distinct shape set for L, the non-empty relations for
/// SL/general). A miss dispatches [`check_termination_engine`], which
/// itself reads shapes from the catalog instead of rescanning tables.
pub fn check_termination_live(
    schema: &Schema,
    tgds: &[Tgd],
    engine: &StorageEngine,
    mode: FindShapesMode,
    threads: usize,
    cache: &VerdictCache,
) -> CachedCheck {
    let mut phases = Phases::new();
    let (key, class) = phases.run("fingerprint", || cache_key_live(schema, tgds, engine));
    let cached = phases.run("lookup", || cache.get(&key));

    if let Some((verdict, cached_class)) = cached {
        debug_assert_eq!(cached_class, class, "class is a function of the ruleset");
        return CachedCheck {
            report: TerminationReport {
                verdict,
                class: cached_class,
            },
            hit: true,
            rules_fp: key.rules,
            db_fp: key.db,
            timings: CacheTimings::from_phases(&phases),
        };
    }

    let report = phases.run("check", || {
        check_termination_engine(schema, tgds, engine, mode, threads)
    });
    cache.insert(key, report.verdict, report.class);
    CachedCheck {
        report,
        hit: false,
        rules_fp: key.rules,
        db_fp: key.db,
        timings: CacheTimings::from_phases(&phases),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::{Atom, ConstId, Term, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    /// person(x) → ∃y adv(x,y); adv(x,y) → person(y): infinite.
    fn infinite_sl() -> (Schema, Vec<Tgd>, Instance) {
        let mut s = Schema::new();
        let person = s.add_predicate("person", 1).unwrap();
        let adv = s.add_predicate("adv", 2).unwrap();
        let tgds = vec![
            Tgd::new(
                vec![Atom::new(&s, person, vec![v(0)]).unwrap()],
                vec![Atom::new(&s, adv, vec![v(0), v(1)]).unwrap()],
            )
            .unwrap(),
            Tgd::new(
                vec![Atom::new(&s, adv, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&s, person, vec![v(1)]).unwrap()],
            )
            .unwrap(),
        ];
        let mut db = Instance::new();
        db.insert(Atom::new(&s, person, vec![c(0)]).unwrap());
        (s, tgds, db)
    }

    #[test]
    fn miss_then_hit_same_verdict() {
        let (s, tgds, db) = infinite_sl();
        let cache = VerdictCache::new(64);
        let first = check_termination_cached(&s, &tgds, &db, FindShapesMode::InMemory, 1, &cache);
        assert!(!first.hit);
        assert_eq!(first.report.verdict, Verdict::Infinite);
        let second = check_termination_cached(&s, &tgds, &db, FindShapesMode::InMemory, 1, &cache);
        assert!(second.hit);
        assert_eq!(second.report.verdict, Verdict::Infinite);
        assert_eq!(second.report.class, first.report.class);
        assert_eq!(second.rules_fp, first.rules_fp);
        assert_eq!(second.db_fp, first.db_fp);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn fingerprint_time_is_reported_on_misses_too() {
        use std::time::Duration;
        let (s, tgds, db) = infinite_sl();
        let cache = VerdictCache::new(64);
        let miss = check_termination_cached(&s, &tgds, &db, FindShapesMode::InMemory, 1, &cache);
        assert!(!miss.hit);
        assert!(
            miss.timings.t_fingerprint > Duration::ZERO,
            "the miss path must report fingerprint time, not fold it into the hit path"
        );
        assert!(miss.timings.t_check > Duration::ZERO);
        let hit = check_termination_cached(&s, &tgds, &db, FindShapesMode::InMemory, 1, &cache);
        assert!(hit.hit);
        assert!(hit.timings.t_fingerprint > Duration::ZERO);
        assert_eq!(hit.timings.t_check, Duration::ZERO, "no check ran on a hit");
        // Both paths feed the global phase histogram.
        assert!(soct_obs::global().phase("fingerprint").unwrap().count() >= 2);
    }

    #[test]
    fn permuted_ruleset_hits() {
        let (s, tgds, db) = infinite_sl();
        let cache = VerdictCache::new(64);
        check_termination_cached(&s, &tgds, &db, FindShapesMode::InMemory, 1, &cache);
        let rev: Vec<Tgd> = tgds.iter().rev().cloned().collect();
        let second = check_termination_cached(&s, &rev, &db, FindShapesMode::InMemory, 1, &cache);
        assert!(second.hit);
    }

    #[test]
    fn different_tuples_same_shapes_hit_for_sl() {
        let (s, tgds, _) = infinite_sl();
        let person = s.pred_by_name("person").unwrap();
        let cache = VerdictCache::new(64);
        let mut d1 = Instance::new();
        d1.insert(Atom::new(&s, person, vec![c(0)]).unwrap());
        let mut d2 = Instance::new();
        d2.insert(Atom::new(&s, person, vec![c(41)]).unwrap());
        d2.insert(Atom::new(&s, person, vec![c(42)]).unwrap());
        check_termination_cached(&s, &tgds, &d1, FindShapesMode::InMemory, 1, &cache);
        let second = check_termination_cached(&s, &tgds, &d2, FindShapesMode::InMemory, 1, &cache);
        assert!(second.hit, "same non-empty predicates must share the key");
    }

    /// R(x,x) → S(x); S(x) → ∃y T(x,y); T(x,y) → S(y). Linear (the first
    /// body repeats a variable), and the verdict flips on whether the
    /// database contains the shape R_(1,1): only a repeated-column R tuple
    /// ignites the infinite S/T loop.
    fn shape_sensitive_l() -> (Schema, Vec<Tgd>) {
        let mut s = Schema::new();
        let r = s.add_predicate("R", 2).unwrap();
        let sp = s.add_predicate("S", 1).unwrap();
        let t = s.add_predicate("T", 2).unwrap();
        let tgds = vec![
            Tgd::new(
                vec![Atom::new(&s, r, vec![v(0), v(0)]).unwrap()],
                vec![Atom::new(&s, sp, vec![v(0)]).unwrap()],
            )
            .unwrap(),
            Tgd::new(
                vec![Atom::new(&s, sp, vec![v(0)]).unwrap()],
                vec![Atom::new(&s, t, vec![v(0), v(1)]).unwrap()],
            )
            .unwrap(),
            Tgd::new(
                vec![Atom::new(&s, t, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&s, sp, vec![v(1)]).unwrap()],
            )
            .unwrap(),
        ];
        (s, tgds)
    }

    #[test]
    fn live_checks_hit_after_shape_preserving_writes() {
        use soct_storage::StorageEngine;
        let (s, tgds) = shape_sensitive_l();
        let r = s.pred_by_name("R").unwrap();
        let mut engine = StorageEngine::new();
        engine.create_table(r, "R", 2);
        engine.insert(r, &[c(0), c(1)]);
        engine.enable_shape_tracking();
        let cache = VerdictCache::new(64);
        let first = check_termination_live(&s, &tgds, &engine, FindShapesMode::InMemory, 1, &cache);
        assert!(!first.hit);
        assert_eq!(first.report.verdict, Verdict::Finite);
        // Shape-preserving writes: same distinct shape set, so revalidation
        // is a pure cache hit with zero re-derivation.
        for i in 10..30 {
            engine.insert(r, &[c(i), c(i + 100)]);
        }
        let second =
            check_termination_live(&s, &tgds, &engine, FindShapesMode::InMemory, 1, &cache);
        assert!(second.hit, "shape-preserving writes keep the key stable");
        assert_eq!(second.db_fp, first.db_fp);
        // A shape-changing write (R_(1,1) appears) must recompute — and the
        // verdict flips, proving the miss was necessary.
        engine.insert(r, &[c(5), c(5)]);
        let third = check_termination_live(&s, &tgds, &engine, FindShapesMode::InMemory, 1, &cache);
        assert!(!third.hit);
        assert_ne!(third.db_fp, first.db_fp);
        assert_eq!(third.report.verdict, Verdict::Infinite);
        // Deleting the witness restores the original key: hit again.
        assert!(engine.delete(r, &[c(5), c(5)]));
        let fourth =
            check_termination_live(&s, &tgds, &engine, FindShapesMode::InMemory, 1, &cache);
        assert!(fourth.hit);
        assert_eq!(fourth.report.verdict, Verdict::Finite);
        assert_eq!(fourth.db_fp, first.db_fp);
    }

    #[test]
    fn live_and_instance_paths_are_domain_separated() {
        use soct_storage::StorageEngine;
        let (s, tgds) = shape_sensitive_l();
        let r = s.pred_by_name("R").unwrap();
        // Seed the cache through the instance path...
        let mut db = Instance::new();
        db.insert(Atom::new(&s, r, vec![c(0), c(1)]).unwrap());
        let cache = VerdictCache::new(64);
        let via_instance =
            check_termination_cached(&s, &tgds, &db, FindShapesMode::InMemory, 1, &cache);
        assert!(!via_instance.hit);
        // ...then check the live path over equivalent contents. The
        // underlying fingerprints coincide, but the live key carries the
        // domain tag: no sharing with the instance-path entry, so a
        // desynced live accumulator could never poison body checks.
        let mut engine = StorageEngine::new();
        engine.create_table(r, "R", 2);
        engine.insert(r, &[c(7), c(9)]);
        let untracked =
            check_termination_live(&s, &tgds, &engine, FindShapesMode::InMemory, 1, &cache);
        assert!(!untracked.hit, "live keys live in their own domain");
        assert_ne!(untracked.db_fp, via_instance.db_fp);
        assert_eq!(untracked.rules_fp, via_instance.rules_fp);
        assert_eq!(untracked.report.verdict, via_instance.report.verdict);
        // Within the live domain, scan-derived and maintained keys still
        // interchange: enabling tracking hits the entry the scan seeded.
        engine.enable_shape_tracking();
        let tracked =
            check_termination_live(&s, &tgds, &engine, FindShapesMode::InMemory, 1, &cache);
        assert!(tracked.hit, "maintained key matches the scan-derived key");
        assert_eq!(tracked.db_fp, untracked.db_fp);
    }

    #[test]
    fn live_sl_keys_on_nonempty_predicates() {
        use soct_storage::StorageEngine;
        let (s, tgds, _) = infinite_sl();
        let person = s.pred_by_name("person").unwrap();
        let adv = s.pred_by_name("adv").unwrap();
        let mut engine = StorageEngine::new();
        engine.create_table(person, "person", 1);
        engine.create_table(adv, "adv", 2);
        engine.insert(person, &[c(0)]);
        engine.enable_shape_tracking();
        let cache = VerdictCache::new(64);
        let first = check_termination_live(&s, &tgds, &engine, FindShapesMode::InMemory, 1, &cache);
        assert!(!first.hit);
        assert_eq!(first.report.verdict, Verdict::Infinite);
        // More tuples in already-populated relations: same key.
        engine.insert(person, &[c(1)]);
        let second =
            check_termination_live(&s, &tgds, &engine, FindShapesMode::InMemory, 1, &cache);
        assert!(second.hit);
        // Populating a previously-empty relation changes the SL key.
        engine.insert(adv, &[c(0), c(1)]);
        let third = check_termination_live(&s, &tgds, &engine, FindShapesMode::InMemory, 1, &cache);
        assert!(!third.hit);
        assert_ne!(third.db_fp, first.db_fp);
    }

    #[test]
    fn lru_bound_evicts() {
        let cache = VerdictCache::new(0); // 1 entry per shard
        let mk = |i: u128| CacheKey {
            rules: Fingerprint(i),
            db: Fingerprint(0),
        };
        // Insert many keys; capacity is SHARD_COUNT, so evictions must
        // kick in and the size stays bounded.
        for i in 0..200 {
            cache.insert(mk(i), Verdict::Finite, TgdClass::SimpleLinear);
        }
        assert!(cache.len() <= cache.capacity());
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn lru_prefers_recent_entries() {
        let cache = VerdictCache::new(0);
        // Two keys landing in the same shard (db fp equal, rules fps
        // chosen congruent modulo the shard count).
        let k1 = CacheKey {
            rules: Fingerprint(16),
            db: Fingerprint(0),
        };
        let k2 = CacheKey {
            rules: Fingerprint(32),
            db: Fingerprint(0),
        };
        cache.insert(k1, Verdict::Finite, TgdClass::SimpleLinear);
        cache.insert(k2, Verdict::Infinite, TgdClass::SimpleLinear);
        // Shard holds one entry: k2 must have evicted k1.
        assert!(cache.get(&k2).is_some());
        assert!(cache.get(&k1).is_none());
    }

    #[test]
    fn bytes_round_trip() {
        let (s, tgds, db) = infinite_sl();
        let cache = VerdictCache::new(64);
        check_termination_cached(&s, &tgds, &db, FindShapesMode::InMemory, 1, &cache);
        let bytes = cache.to_bytes();
        let restored = VerdictCache::new(64);
        restored.load_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), cache.len());
        assert_eq!(restored.to_bytes(), bytes);
        // The restored cache serves the hit directly.
        let r = check_termination_cached(&s, &tgds, &db, FindShapesMode::InMemory, 1, &restored);
        assert!(r.hit);
        assert_eq!(r.report.verdict, Verdict::Infinite);
    }

    #[test]
    fn corrupt_cache_bytes_rejected() {
        let cache = VerdictCache::new(8);
        assert!(cache.load_bytes(b"garbage").is_err());
        cache.insert(
            CacheKey {
                rules: Fingerprint(1),
                db: Fingerprint(2),
            },
            Verdict::Finite,
            TgdClass::Linear,
        );
        let mut bytes = cache.to_bytes();
        bytes[2] = b'X'; // magic
        assert!(VerdictCache::new(8).load_bytes(&bytes).is_err());
        let good = cache.to_bytes();
        assert!(VerdictCache::new(8)
            .load_bytes(&good[..good.len() - 1])
            .is_err());
        let mut bad_code = cache.to_bytes();
        let last = bad_code.len() - 1;
        bad_code[last] = 9; // class code out of range
        assert!(VerdictCache::new(8).load_bytes(&bad_code).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("soct_verdict_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verdicts.soctvc");
        let cache = VerdictCache::new(8);
        cache.insert(
            CacheKey {
                rules: Fingerprint(7),
                db: Fingerprint(8),
            },
            Verdict::Unknown,
            TgdClass::General,
        );
        cache.save(&path).unwrap();
        let restored = VerdictCache::new(8);
        restored.load(&path).unwrap();
        assert_eq!(
            restored.get(&CacheKey {
                rules: Fingerprint(7),
                db: Fingerprint(8),
            }),
            Some((Verdict::Unknown, TgdClass::General))
        );
        std::fs::remove_file(&path).ok();
    }
}
