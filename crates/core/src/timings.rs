//! Timing breakdowns matching the paper's reported quantities.
//!
//! §7 (simple-linear): `t-parse`, `t-graph`, `t-comp`; `t-total` is their
//! sum. §8 (linear): additionally `t-shapes` — the db-dependent component —
//! while `t-parse + t-graph + t-comp` form the db-independent component.
//!
//! Since the `soct_obs` refactor these structs are *projections*: the
//! checkers accumulate phase durations through [`soct_obs::Phases`]
//! (which also feeds the global `soct_core_phase_us{phase=…}` histogram
//! and the span layer), and each struct's `from_phases` selects the
//! fields the paper reports.

use soct_obs::Phases;
use std::time::Duration;

/// Timing breakdown of `IsChaseFinite[SL]` (§7).
#[derive(Clone, Copy, Debug, Default)]
pub struct SlTimings {
    /// Time to parse the TGDs from an input file (zero when the caller
    /// passes pre-parsed TGDs).
    pub t_parse: Duration,
    /// Time to build the dependency graph.
    pub t_graph: Duration,
    /// Time to find the special SCCs.
    pub t_comp: Duration,
    /// Time for the `Supports` check — reported separately because Remark 1
    /// argues it is negligible; our numbers let the reader verify that.
    pub t_supports: Duration,
}

impl SlTimings {
    /// Projects §7's quantities out of a phase accumulator.
    pub fn from_phases(phases: &Phases) -> Self {
        SlTimings {
            t_parse: phases.duration("parse"),
            t_graph: phases.duration("graph"),
            t_comp: phases.duration("comp"),
            t_supports: phases.duration("supports"),
        }
    }

    /// End-to-end runtime (`t-total` of Figure 1).
    pub fn total(&self) -> Duration {
        self.t_parse + self.t_graph + self.t_comp + self.t_supports
    }
}

/// Timing breakdown of `IsChaseFinite[L]` (§8).
#[derive(Clone, Copy, Debug, Default)]
pub struct LTimings {
    /// The db-dependent component: time to find the database shapes.
    pub t_shapes: Duration,
    /// Time to parse the TGDs (zero when pre-parsed).
    pub t_parse: Duration,
    /// Time to dynamically simplify and build the dependency graph of the
    /// simplified set (the paper folds simplification into `t-graph`).
    pub t_graph: Duration,
    /// Time to find the special SCCs.
    pub t_comp: Duration,
}

impl LTimings {
    /// Projects §8's quantities out of a phase accumulator.
    pub fn from_phases(phases: &Phases) -> Self {
        LTimings {
            t_shapes: phases.duration("shapes"),
            t_parse: phases.duration("parse"),
            t_graph: phases.duration("graph"),
            t_comp: phases.duration("comp"),
        }
    }

    /// The db-independent component (`t-total` of Figure 5).
    pub fn db_independent(&self) -> Duration {
        self.t_parse + self.t_graph + self.t_comp
    }

    /// Full end-to-end runtime (`t-total` of Table 2).
    pub fn total(&self) -> Duration {
        self.t_shapes + self.db_independent()
    }
}

/// Timing breakdown of a cache-aware check
/// ([`crate::check_termination_cached`]): the request-side counterpart of
/// the paper's phase split — fingerprinting replaces the db-dependent
/// phase on a hit, and `t_check` is zero exactly when the verdict came
/// from the cache.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheTimings {
    /// Time to compute the canonical ruleset/database fingerprints.
    pub t_fingerprint: Duration,
    /// Time spent probing the verdict cache.
    pub t_lookup: Duration,
    /// Time spent running the actual checker (zero on a cache hit).
    pub t_check: Duration,
}

impl CacheTimings {
    /// Projects the request-side quantities out of a phase accumulator.
    /// Every field is recorded on hits *and* misses (`t_check` is simply
    /// zero on a hit, when the phase never ran).
    pub fn from_phases(phases: &Phases) -> Self {
        CacheTimings {
            t_fingerprint: phases.duration("fingerprint"),
            t_lookup: phases.duration("lookup"),
            t_check: phases.duration("check"),
        }
    }

    /// End-to-end time of the cached check.
    pub fn total(&self) -> Duration {
        self.t_fingerprint + self.t_lookup + self.t_check
    }
}

/// Milliseconds with fractional part, the unit of Table 2.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let t = SlTimings {
            t_parse: Duration::from_millis(5),
            t_graph: Duration::from_millis(3),
            t_comp: Duration::from_millis(2),
            t_supports: Duration::from_millis(1),
        };
        assert_eq!(t.total(), Duration::from_millis(11));

        let l = LTimings {
            t_shapes: Duration::from_millis(100),
            t_parse: Duration::from_millis(5),
            t_graph: Duration::from_millis(3),
            t_comp: Duration::from_millis(2),
        };
        assert_eq!(l.db_independent(), Duration::from_millis(10));
        assert_eq!(l.total(), Duration::from_millis(110));
    }

    #[test]
    fn cache_timings_total() {
        let c = CacheTimings {
            t_fingerprint: Duration::from_millis(2),
            t_lookup: Duration::from_micros(10),
            t_check: Duration::ZERO,
        };
        assert_eq!(c.total(), Duration::from_micros(2010));
    }

    #[test]
    fn ms_converts() {
        assert!((ms(Duration::from_micros(1500)) - 1.5).abs() < 1e-9);
    }
}
