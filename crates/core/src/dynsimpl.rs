//! `DynSimplification` (Algorithm 2): the dynamic simplification of a set of
//! linear TGDs relative to a database.
//!
//! Starting from `shape(D)`, the algorithm iterates the immediate
//! consequence operator on shapes: a TGD σ = R(x̄) → ∃z̄ ψ(ȳ,z̄) is
//! *applicable* to a shape `R_ī` iff the positional map `x̄ → ī` is
//! consistent (at most one homomorphism exists — `h_specialization`); the
//! simplification induced by the h-specialization joins `Σ_s`, and the head
//! shapes join the frontier ΔS. Only the newest shapes are re-processed per
//! iteration — "there are no new applicable TGDs on S after the first
//! iteration since the TGDs are linear" (§4.2).
//!
//! The implementation details of §5.4 are in place: a predicate → TGDs
//! index for fast access, per-TGD precomputed body patterns for the O(arity)
//! applicability check, and shape interning so identifier tuples are built
//! once.
//!
//! The fixpoint itself runs over *interned shape ids*: the
//! [`ShapeInterner`]'s dense id sequence doubles as the seen-set and the
//! frontier (ids below the current delta range are processed, ids inside it
//! are ΔS), so no `Shape` is ever cloned into a side table, and simplified
//! TGDs are deduplicated through a structural-hash bucket index into the
//! output vector instead of a `HashSet<Tgd>` of clones.

use soct_model::fxhash::FxBuildHasher;
use soct_model::simplify::{h_specialization, simplify_tgd, ShapeInterner};
use soct_model::{FxHashMap, PredId, Rgs, Schema, Shape, Tgd};
use std::hash::BuildHasher;

/// The output of dynamic simplification.
#[derive(Debug)]
pub struct DynSimplification {
    /// `simple_D(Σ)`: simple-linear TGDs over [`DynSimplification::interner`]'s
    /// derived schema.
    pub tgds: Vec<Tgd>,
    /// Shape-predicate interner (owns the derived schema).
    pub interner: ShapeInterner,
    /// `|Σ(shape(D))|`: shapes derived, including the database's own.
    pub shapes_derived: usize,
    /// Fixpoint iterations executed.
    pub iterations: usize,
}

impl DynSimplification {
    /// The derived schema the simplified TGDs live in.
    pub fn schema(&self) -> &Schema {
        self.interner.schema()
    }
}

/// Runs Algorithm 2 on `tgds` (which must all be linear) with the initial
/// shape set `shape(D)`.
pub fn dyn_simplification(
    base_schema: &Schema,
    tgds: &[Tgd],
    db_shapes: &[Shape],
) -> DynSimplification {
    debug_assert!(tgds.iter().all(Tgd::is_linear));
    // §5.4: index the TGDs by their body predicate.
    let mut by_body_pred: FxHashMap<PredId, Vec<u32>> = FxHashMap::default();
    for (i, t) in tgds.iter().enumerate() {
        by_body_pred
            .entry(t.body()[0].pred)
            .or_default()
            .push(i as u32);
    }

    let mut interner = ShapeInterner::new();
    let mut out_tgds: Vec<Tgd> = Vec::new();
    // Simplified-TGD dedup without cloning: structural hash → indices into
    // `out_tgds` sharing it; collision chains compare the actual TGDs, so
    // the output is exact (same order, same set) with no `Tgd` clones.
    let hasher = FxBuildHasher::default();
    let mut out_seen: FxHashMap<u64, Vec<u32>> = FxHashMap::default();

    // S ← FindShapes(D); ΔS ← S. The interner's dense id sequence is the
    // seen-set: interning database shapes up front also makes simple(D)'s
    // predicates part of the derived schema even when no TGD fires on them.
    for s in db_shapes {
        interner.intern(s.clone(), base_schema);
    }

    let mut iterations = 0usize;
    let mut delta = 0..interner.len();
    while !delta.is_empty() {
        iterations += 1;
        let next_start = delta.end;
        // Σ_aux ← Applicable(ΔS, Σ). Head shapes are interned inside
        // `simplify_tgd`, so new ids land past `next_start` and form the
        // next frontier with no explicit ΔS list.
        for sid in delta {
            let shape_pred = interner.origin(PredId(sid as u32)).pred;
            let Some(tgd_ids) = by_body_pred.get(&shape_pred) else {
                continue;
            };
            // Copy out the frontier shape's rgs (an inline word for arity
            // ≤ 16) so `simplify_tgd` can borrow the interner mutably.
            let rgs = interner.origin(PredId(sid as u32)).rgs.clone();
            for &ti in tgd_ids {
                let tgd = &tgds[ti as usize];
                let Some(spec) = h_specialization(&tgd.body()[0].terms, &rgs) else {
                    continue;
                };
                let simplified = simplify_tgd(&mut interner, base_schema, tgd, &spec);
                let h = hasher.hash_one(&simplified);
                let bucket = out_seen.entry(h).or_default();
                if !bucket.iter().any(|&i| out_tgds[i as usize] == simplified) {
                    bucket.push(out_tgds.len() as u32);
                    out_tgds.push(simplified);
                }
            }
        }
        // ΔS ← S_aux \ S; S ← S ∪ ΔS.
        delta = next_start..interner.len();
    }

    DynSimplification {
        tgds: out_tgds,
        shapes_derived: interner.len(),
        interner,
        iterations,
    }
}

/// Convenience: `shape(D)` from raw (pred, rgs) pairs.
pub fn shapes_from_rgs(pairs: impl IntoIterator<Item = (soct_model::PredId, Rgs)>) -> Vec<Shape> {
    pairs
        .into_iter()
        .map(|(pred, rgs)| Shape { pred, rgs })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::simplify::static_simplification;
    use soct_model::{Atom, Term, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn id_shape(pred: soct_model::PredId, ids: &[u8]) -> Shape {
        Shape {
            pred,
            rgs: Rgs::canonicalize(ids),
        }
    }

    #[test]
    fn example_3_4_dynamic_simplification_is_empty() {
        // D = {R(a,b)} (shape (1,2)), σ: R(x,x) → ∃z R(z,x).
        // No homomorphism from R(x,x) to R(1,2) ⇒ simple_D(Σ) = ∅ ⇒ the
        // chase is finite, matching Example 3.4.
        let mut schema = Schema::new();
        let r = schema.add_predicate("R", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(0)]).unwrap()],
            vec![Atom::new(&schema, r, vec![v(1), v(0)]).unwrap()],
        )
        .unwrap();
        let d = dyn_simplification(&schema, &[tgd], &[id_shape(r, &[1, 2])]);
        assert!(d.tgds.is_empty());
        assert_eq!(d.shapes_derived, 1);
    }

    #[test]
    fn example_3_4_with_matching_database_fires() {
        // Same σ but D = {R(a,a)} (shape (1,1)): now σ applies and produces
        // head shape R_(1,2) — a diverging chain.
        let mut schema = Schema::new();
        let r = schema.add_predicate("R", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(0)]).unwrap()],
            vec![Atom::new(&schema, r, vec![v(1), v(0)]).unwrap()],
        )
        .unwrap();
        let d = dyn_simplification(&schema, std::slice::from_ref(&tgd), &[id_shape(r, &[1, 1])]);
        assert_eq!(d.tgds.len(), 1);
        assert!(d.tgds[0].is_simple_linear());
        assert_eq!(d.shapes_derived, 2); // (1,1) and head shape (1,2)
    }

    #[test]
    fn dynamic_is_subset_of_static() {
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 3).unwrap();
        let p = schema.add_predicate("p", 2).unwrap();
        let tgds = vec![
            Tgd::new(
                vec![Atom::new(&schema, r, vec![v(0), v(1), v(2)]).unwrap()],
                vec![Atom::new(&schema, p, vec![v(0), v(3)]).unwrap()],
            )
            .unwrap(),
            Tgd::new(
                vec![Atom::new(&schema, p, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&schema, p, vec![v(1), v(2)]).unwrap()],
            )
            .unwrap(),
        ];
        let db_shapes = vec![id_shape(r, &[1, 2, 3])];
        let dynamic = dyn_simplification(&schema, &tgds, &db_shapes);
        let mut static_interner = ShapeInterner::new();
        let statically = static_simplification(&mut static_interner, &schema, &tgds).unwrap();
        // Compare by rendered structure: every dynamic TGD must appear
        // statically (match via origin shapes, since interners differ).
        assert!(dynamic.tgds.len() <= statically.len());
        for dt in &dynamic.tgds {
            let d_body = dynamic.interner.origin(dt.body()[0].pred);
            let found = statically.iter().any(|st| {
                static_interner.origin(st.body()[0].pred) == d_body
                    && st.head().len() == dt.head().len()
            });
            assert!(found, "dynamic TGD missing statically");
        }
        // Bell(3) + Bell(2) specializations statically = 5 + 2 = 7; the
        // database only exposes one r-shape, so dynamic is smaller.
        assert_eq!(statically.len(), 7);
        assert!(dynamic.tgds.len() < statically.len());
    }

    #[test]
    fn fixpoint_requires_multiple_iterations_on_chains() {
        // r(x,y) → p(x,y); p(x,y) → q(x,y): shapes propagate one predicate
        // per iteration.
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 2).unwrap();
        let p = schema.add_predicate("p", 2).unwrap();
        let q = schema.add_predicate("q", 2).unwrap();
        let tgds = vec![
            Tgd::new(
                vec![Atom::new(&schema, r, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&schema, p, vec![v(0), v(1)]).unwrap()],
            )
            .unwrap(),
            Tgd::new(
                vec![Atom::new(&schema, p, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&schema, q, vec![v(0), v(1)]).unwrap()],
            )
            .unwrap(),
        ];
        let d = dyn_simplification(&schema, &tgds, &[id_shape(r, &[1, 2])]);
        assert_eq!(d.tgds.len(), 2);
        assert_eq!(d.shapes_derived, 3);
        assert!(d.iterations >= 2);
    }

    #[test]
    fn empty_frontier_rules_participate() {
        // r(x) → ∃z,w p(z,w): head shape (1,2) must be derived even though
        // fr = ∅ (no normalisation needed — see DESIGN.md).
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 1).unwrap();
        let p = schema.add_predicate("p", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0)]).unwrap()],
            vec![Atom::new(&schema, p, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let d = dyn_simplification(&schema, &[tgd], &[id_shape(r, &[1])]);
        assert_eq!(d.tgds.len(), 1);
        assert_eq!(d.shapes_derived, 2);
    }

    #[test]
    fn multiple_database_shapes_fan_out() {
        // σ: r(x,y) → ∃z r(y,z). Shapes (1,1) and (1,2) both applicable,
        // producing distinct simplifications.
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&schema, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let d = dyn_simplification(
            &schema,
            &[tgd],
            &[id_shape(r, &[1, 1]), id_shape(r, &[1, 2])],
        );
        assert_eq!(d.tgds.len(), 2);
        // Head shape is (1,2) in both cases; total shapes = 2.
        assert_eq!(d.shapes_derived, 2);
    }
}
