//! `DynSimplification` (Algorithm 2): the dynamic simplification of a set of
//! linear TGDs relative to a database.
//!
//! Starting from `shape(D)`, the algorithm iterates the immediate
//! consequence operator on shapes: a TGD σ = R(x̄) → ∃z̄ ψ(ȳ,z̄) is
//! *applicable* to a shape `R_ī` iff the positional map `x̄ → ī` is
//! consistent (at most one homomorphism exists — `h_specialization`); the
//! simplification induced by the h-specialization joins `Σ_s`, and the head
//! shapes join the frontier ΔS. Only the newest shapes are re-processed per
//! iteration — "there are no new applicable TGDs on S after the first
//! iteration since the TGDs are linear" (§4.2).
//!
//! The implementation details of §5.4 are in place: a predicate → TGDs
//! index for fast access, per-TGD precomputed body patterns for the O(arity)
//! applicability check, and shape interning so identifier tuples are built
//! once.

use soct_model::simplify::{h_specialization, simplify_tgd, ShapeInterner};
use soct_model::{FxHashMap, FxHashSet, Rgs, Schema, Shape, Tgd};

/// The output of dynamic simplification.
#[derive(Debug)]
pub struct DynSimplification {
    /// `simple_D(Σ)`: simple-linear TGDs over [`DynSimplification::interner`]'s
    /// derived schema.
    pub tgds: Vec<Tgd>,
    /// Shape-predicate interner (owns the derived schema).
    pub interner: ShapeInterner,
    /// `|Σ(shape(D))|`: shapes derived, including the database's own.
    pub shapes_derived: usize,
    /// Fixpoint iterations executed.
    pub iterations: usize,
}

impl DynSimplification {
    /// The derived schema the simplified TGDs live in.
    pub fn schema(&self) -> &Schema {
        self.interner.schema()
    }
}

/// Runs Algorithm 2 on `tgds` (which must all be linear) with the initial
/// shape set `shape(D)`.
pub fn dyn_simplification(
    base_schema: &Schema,
    tgds: &[Tgd],
    db_shapes: &[Shape],
) -> DynSimplification {
    debug_assert!(tgds.iter().all(Tgd::is_linear));
    // §5.4: index the TGDs by their body predicate.
    let mut by_body_pred: FxHashMap<soct_model::PredId, Vec<usize>> = FxHashMap::default();
    for (i, t) in tgds.iter().enumerate() {
        by_body_pred.entry(t.body()[0].pred).or_default().push(i);
    }

    let mut interner = ShapeInterner::new();
    let mut seen_shapes: FxHashSet<Shape> = FxHashSet::default();
    let mut out_tgds: Vec<Tgd> = Vec::new();
    let mut out_seen: FxHashSet<Tgd> = FxHashSet::default();

    // S ← FindShapes(D); ΔS ← S.
    let mut delta: Vec<Shape> = Vec::new();
    for s in db_shapes {
        if seen_shapes.insert(s.clone()) {
            // Intern database shapes up front so simple(D)'s predicates are
            // part of the derived schema even when no TGD fires on them.
            interner.intern(s.clone(), base_schema);
            delta.push(s.clone());
        }
    }

    let mut iterations = 0usize;
    while !delta.is_empty() {
        iterations += 1;
        let mut new_shapes: Vec<Shape> = Vec::new();
        // Σ_aux ← Applicable(ΔS, Σ).
        for shape in &delta {
            let Some(tgd_ids) = by_body_pred.get(&shape.pred) else {
                continue;
            };
            for &ti in tgd_ids {
                let tgd = &tgds[ti];
                let body_terms = &tgd.body()[0].terms;
                let Some(spec) = h_specialization(body_terms, &shape.rgs) else {
                    continue;
                };
                let simplified = simplify_tgd(&mut interner, base_schema, tgd, &spec);
                // S_aux ← head shapes of the new simplified TGDs.
                for head_atom in simplified.head() {
                    let origin = interner.origin(head_atom.pred).clone();
                    if seen_shapes.insert(origin.clone()) {
                        new_shapes.push(origin);
                    }
                }
                if out_seen.insert(simplified.clone()) {
                    out_tgds.push(simplified);
                }
            }
        }
        // ΔS ← S_aux \ S; S ← S ∪ ΔS.
        delta = new_shapes;
    }

    DynSimplification {
        tgds: out_tgds,
        interner,
        shapes_derived: seen_shapes.len(),
        iterations,
    }
}

/// Convenience: `shape(D)` from raw (pred, rgs) pairs.
pub fn shapes_from_rgs(pairs: impl IntoIterator<Item = (soct_model::PredId, Rgs)>) -> Vec<Shape> {
    pairs
        .into_iter()
        .map(|(pred, rgs)| Shape { pred, rgs })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::simplify::static_simplification;
    use soct_model::{Atom, Term, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn id_shape(pred: soct_model::PredId, ids: &[u8]) -> Shape {
        Shape {
            pred,
            rgs: Rgs::canonicalize(ids),
        }
    }

    #[test]
    fn example_3_4_dynamic_simplification_is_empty() {
        // D = {R(a,b)} (shape (1,2)), σ: R(x,x) → ∃z R(z,x).
        // No homomorphism from R(x,x) to R(1,2) ⇒ simple_D(Σ) = ∅ ⇒ the
        // chase is finite, matching Example 3.4.
        let mut schema = Schema::new();
        let r = schema.add_predicate("R", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(0)]).unwrap()],
            vec![Atom::new(&schema, r, vec![v(1), v(0)]).unwrap()],
        )
        .unwrap();
        let d = dyn_simplification(&schema, &[tgd], &[id_shape(r, &[1, 2])]);
        assert!(d.tgds.is_empty());
        assert_eq!(d.shapes_derived, 1);
    }

    #[test]
    fn example_3_4_with_matching_database_fires() {
        // Same σ but D = {R(a,a)} (shape (1,1)): now σ applies and produces
        // head shape R_(1,2) — a diverging chain.
        let mut schema = Schema::new();
        let r = schema.add_predicate("R", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(0)]).unwrap()],
            vec![Atom::new(&schema, r, vec![v(1), v(0)]).unwrap()],
        )
        .unwrap();
        let d = dyn_simplification(&schema, std::slice::from_ref(&tgd), &[id_shape(r, &[1, 1])]);
        assert_eq!(d.tgds.len(), 1);
        assert!(d.tgds[0].is_simple_linear());
        assert_eq!(d.shapes_derived, 2); // (1,1) and head shape (1,2)
    }

    #[test]
    fn dynamic_is_subset_of_static() {
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 3).unwrap();
        let p = schema.add_predicate("p", 2).unwrap();
        let tgds = vec![
            Tgd::new(
                vec![Atom::new(&schema, r, vec![v(0), v(1), v(2)]).unwrap()],
                vec![Atom::new(&schema, p, vec![v(0), v(3)]).unwrap()],
            )
            .unwrap(),
            Tgd::new(
                vec![Atom::new(&schema, p, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&schema, p, vec![v(1), v(2)]).unwrap()],
            )
            .unwrap(),
        ];
        let db_shapes = vec![id_shape(r, &[1, 2, 3])];
        let dynamic = dyn_simplification(&schema, &tgds, &db_shapes);
        let mut static_interner = ShapeInterner::new();
        let statically = static_simplification(&mut static_interner, &schema, &tgds).unwrap();
        // Compare by rendered structure: every dynamic TGD must appear
        // statically (match via origin shapes, since interners differ).
        assert!(dynamic.tgds.len() <= statically.len());
        for dt in &dynamic.tgds {
            let d_body = dynamic.interner.origin(dt.body()[0].pred);
            let found = statically.iter().any(|st| {
                static_interner.origin(st.body()[0].pred) == d_body
                    && st.head().len() == dt.head().len()
            });
            assert!(found, "dynamic TGD missing statically");
        }
        // Bell(3) + Bell(2) specializations statically = 5 + 2 = 7; the
        // database only exposes one r-shape, so dynamic is smaller.
        assert_eq!(statically.len(), 7);
        assert!(dynamic.tgds.len() < statically.len());
    }

    #[test]
    fn fixpoint_requires_multiple_iterations_on_chains() {
        // r(x,y) → p(x,y); p(x,y) → q(x,y): shapes propagate one predicate
        // per iteration.
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 2).unwrap();
        let p = schema.add_predicate("p", 2).unwrap();
        let q = schema.add_predicate("q", 2).unwrap();
        let tgds = vec![
            Tgd::new(
                vec![Atom::new(&schema, r, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&schema, p, vec![v(0), v(1)]).unwrap()],
            )
            .unwrap(),
            Tgd::new(
                vec![Atom::new(&schema, p, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&schema, q, vec![v(0), v(1)]).unwrap()],
            )
            .unwrap(),
        ];
        let d = dyn_simplification(&schema, &tgds, &[id_shape(r, &[1, 2])]);
        assert_eq!(d.tgds.len(), 2);
        assert_eq!(d.shapes_derived, 3);
        assert!(d.iterations >= 2);
    }

    #[test]
    fn empty_frontier_rules_participate() {
        // r(x) → ∃z,w p(z,w): head shape (1,2) must be derived even though
        // fr = ∅ (no normalisation needed — see DESIGN.md).
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 1).unwrap();
        let p = schema.add_predicate("p", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0)]).unwrap()],
            vec![Atom::new(&schema, p, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let d = dyn_simplification(&schema, &[tgd], &[id_shape(r, &[1])]);
        assert_eq!(d.tgds.len(), 1);
        assert_eq!(d.shapes_derived, 2);
    }

    #[test]
    fn multiple_database_shapes_fan_out() {
        // σ: r(x,y) → ∃z r(y,z). Shapes (1,1) and (1,2) both applicable,
        // producing distinct simplifications.
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&schema, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let d = dyn_simplification(
            &schema,
            &[tgd],
            &[id_shape(r, &[1, 1]), id_shape(r, &[1, 2])],
        );
        assert_eq!(d.tgds.len(), 2);
        // Head shape is (1,2) in both cases; total shapes = 2.
        assert_eq!(d.shapes_derived, 2);
    }
}
