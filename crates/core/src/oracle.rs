//! Cross-checking machinery: the materialization-based checker wired up for
//! linear TGDs (simplify first, then bound — see `soct-chase::bounds`), and
//! an auto-dispatching front door over the three TGD classes.

use crate::check_sl::{derivable_predicates, is_chase_finite_sl};
use crate::dynsimpl::dyn_simplification;
use crate::find_shapes::FindShapesMode;
use soct_chase::{is_chase_finite_materialization, MaterializationReport};
use soct_graph::{find_special_sccs, supports, DependencyGraph};
use soct_model::shape::shapes_of_instance;
use soct_model::simplify::simplify_instance;
use soct_model::{FxHashSet, Instance, PredId, Schema, Tgd, TgdClass};
use soct_storage::{InstanceSource, StorageEngine, TupleSource};

/// Materialization-based termination check, complete for simple-linear and
/// linear TGDs (§1.4). Linear sets are dynamically simplified first so the
/// worst-case bound `k_{D,Σ}` is sound (Theorem 3.6 + Lemma 4.3: the
/// simplified chase is finite iff the original is).
///
/// The underlying chase runs entirely on the packed columnar store: only
/// the atom count is consulted, so no boxed-atom instance is ever copied
/// out of the chase.
pub fn materialization_check(
    schema: &Schema,
    tgds: &[Tgd],
    db: &Instance,
    budget: Option<usize>,
) -> MaterializationReport {
    let class = soct_model::tgd::classify(tgds);
    match class {
        TgdClass::SimpleLinear => is_chase_finite_materialization(schema, db, tgds, budget),
        TgdClass::Linear => {
            let db_shapes = shapes_of_instance(db);
            let mut simpl = dyn_simplification(schema, tgds, &db_shapes);
            let simple_db = simplify_instance(&mut simpl.interner, schema, db);
            is_chase_finite_materialization(
                simpl.interner.schema(),
                &simple_db,
                &simpl.tgds,
                budget,
            )
        }
        TgdClass::General => {
            // Sound but not complete: the bound saturates whenever the set
            // is not D-weakly-acyclic, so no wrong verdict is possible.
            is_chase_finite_materialization(schema, db, tgds, budget)
        }
    }
}

/// Tri-state verdict of [`check_termination`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// `chase(D, Σ)` is finite.
    Finite,
    /// `chase(D, Σ)` is infinite.
    Infinite,
    /// Only possible for general TGDs, where the problem is undecidable and
    /// D-weak-acyclicity is merely a sufficient condition.
    Unknown,
}

/// Combined report of the auto-dispatching checker.
#[derive(Clone, Debug)]
pub struct TerminationReport {
    /// The verdict reached.
    pub verdict: Verdict,
    /// The class the input was dispatched on.
    pub class: TgdClass,
}

/// Checks semi-oblivious chase termination, dispatching on the TGD class:
/// `IsChaseFinite[SL]` for simple-linear sets, `IsChaseFinite[L]` for linear
/// sets, and the sound D-weak-acyclicity test for general sets (returning
/// [`Verdict::Unknown`] when it fails — the general problem is undecidable,
/// §1.3).
///
/// ```
/// use soct_core::{check_termination, FindShapesMode, Verdict};
/// use soct_model::{Atom, ConstId, Instance, Schema, Term, Tgd, VarId};
///
/// // person(x) → ∃y hasAdvisor(x,y);  hasAdvisor(x,y) → person(y).
/// let mut schema = Schema::new();
/// let person = schema.add_predicate("person", 1).unwrap();
/// let advisor = schema.add_predicate("hasAdvisor", 2).unwrap();
/// let (x, y) = (Term::Var(VarId(0)), Term::Var(VarId(1)));
/// let tgds = vec![
///     Tgd::new(
///         vec![Atom::new(&schema, person, vec![x]).unwrap()],
///         vec![Atom::new(&schema, advisor, vec![x, y]).unwrap()],
///     )
///     .unwrap(),
///     Tgd::new(
///         vec![Atom::new(&schema, advisor, vec![x, y]).unwrap()],
///         vec![Atom::new(&schema, person, vec![y]).unwrap()],
///     )
///     .unwrap(),
/// ];
/// let mut db = Instance::new();
/// db.insert(Atom::new(&schema, person, vec![Term::Const(ConstId(0))]).unwrap());
/// let report = check_termination(&schema, &tgds, &db, FindShapesMode::InMemory);
/// assert_eq!(report.verdict, Verdict::Infinite); // advisors all the way up
/// ```
pub fn check_termination(
    schema: &Schema,
    tgds: &[Tgd],
    db: &Instance,
    mode: FindShapesMode,
) -> TerminationReport {
    check_termination_threads(schema, tgds, db, mode, 0)
}

/// [`check_termination`] with the `FindShapes` phase of the linear checker
/// fanned out over worker threads (`threads` as in
/// [`soct_chase::resolve_threads`]; `0` = auto). The verdict is identical
/// for every thread count.
pub fn check_termination_threads(
    schema: &Schema,
    tgds: &[Tgd],
    db: &Instance,
    mode: FindShapesMode,
    threads: usize,
) -> TerminationReport {
    let class = soct_model::tgd::classify(tgds);
    let verdict = match class {
        TgdClass::SimpleLinear => {
            let db_preds: FxHashSet<PredId> = db.non_empty_predicates().into_iter().collect();
            if is_chase_finite_sl(schema, tgds, &db_preds).finite {
                Verdict::Finite
            } else {
                Verdict::Infinite
            }
        }
        TgdClass::Linear => {
            let src = InstanceSource::new(schema, db);
            if crate::check_l::is_chase_finite_l_parallel(schema, tgds, &src, mode, threads).finite
            {
                Verdict::Finite
            } else {
                Verdict::Infinite
            }
        }
        TgdClass::General => {
            // D-weak-acyclicity: sufficient for termination of any TGD set.
            let graph = DependencyGraph::build(schema, tgds);
            let scc = find_special_sccs(&graph);
            let reps = scc.special_representatives();
            let supported = if reps.is_empty() {
                false
            } else {
                let db_preds: FxHashSet<PredId> = db.non_empty_predicates().into_iter().collect();
                let derivable = derivable_predicates(tgds, &db_preds);
                supports(&graph, schema, &reps, |p| derivable.contains(&p))
            };
            if supported {
                Verdict::Unknown
            } else {
                Verdict::Finite
            }
        }
    };
    TerminationReport { verdict, class }
}

/// [`check_termination_threads`] against a live [`StorageEngine`] instead
/// of an in-memory instance. The verdict is identical for equivalent
/// contents; what changes is the db-dependent cost: when the engine
/// maintains a shape catalog (`StorageEngine::enable_shape_tracking`), the
/// linear checker reads `shape(D)` straight from the catalog — no table is
/// scanned at all — and the SL/general dispatch only consults the table
/// directory. Without a catalog, the linear path falls back to the
/// scanning `FindShapes` over the engine.
pub fn check_termination_engine(
    schema: &Schema,
    tgds: &[Tgd],
    engine: &StorageEngine,
    mode: FindShapesMode,
    threads: usize,
) -> TerminationReport {
    let class = soct_model::tgd::classify(tgds);
    let verdict = match class {
        TgdClass::SimpleLinear => {
            let db_preds: FxHashSet<PredId> = engine.non_empty_predicates().into_iter().collect();
            if is_chase_finite_sl(schema, tgds, &db_preds).finite {
                Verdict::Finite
            } else {
                Verdict::Infinite
            }
        }
        TgdClass::Linear => {
            let finite = match engine.shape_catalog() {
                Some(cat) => {
                    crate::check_l::check_l_with_shapes(schema, tgds, &cat.shapes()).finite
                }
                None => {
                    crate::check_l::is_chase_finite_l_parallel(schema, tgds, engine, mode, threads)
                        .finite
                }
            };
            if finite {
                Verdict::Finite
            } else {
                Verdict::Infinite
            }
        }
        TgdClass::General => {
            let graph = DependencyGraph::build(schema, tgds);
            let scc = find_special_sccs(&graph);
            let reps = scc.special_representatives();
            let supported = if reps.is_empty() {
                false
            } else {
                let db_preds: FxHashSet<PredId> =
                    engine.non_empty_predicates().into_iter().collect();
                let derivable = derivable_predicates(tgds, &db_preds);
                supports(&graph, schema, &reps, |p| derivable.contains(&p))
            };
            if supported {
                Verdict::Unknown
            } else {
                Verdict::Finite
            }
        }
    };
    TerminationReport { verdict, class }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_chase::MaterializationVerdict;
    use soct_model::{Atom, ConstId, Term, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    #[test]
    fn acyclicity_and_materialization_agree_on_example_3_4() {
        let mut schema = Schema::new();
        let r = schema.add_predicate("R", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(0)]).unwrap()],
            vec![Atom::new(&schema, r, vec![v(1), v(0)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&schema, r, vec![c(0), c(1)]).unwrap());
        let fast = check_termination(
            &schema,
            std::slice::from_ref(&tgd),
            &db,
            FindShapesMode::InMemory,
        );
        assert_eq!(fast.verdict, Verdict::Finite);
        assert_eq!(fast.class, TgdClass::Linear);
        let slow = materialization_check(&schema, &[tgd], &db, Some(10_000));
        assert_eq!(slow.verdict, MaterializationVerdict::Finite);
    }

    #[test]
    fn materialization_detects_small_divergence() {
        // R(x,y) → ∃z R(y,z): the simplified system also diverges; with the
        // domain-1 database the bound is small enough to exceed quickly...
        // it is not (bounds saturate on supported cycles) — so the verdict
        // must be BudgetExhausted, never a wrong "Finite".
        let mut schema = Schema::new();
        let r = schema.add_predicate("R", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&schema, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&schema, r, vec![c(0), c(1)]).unwrap());
        let rep = materialization_check(&schema, &[tgd], &db, Some(500));
        assert_eq!(rep.verdict, MaterializationVerdict::BudgetExhausted);
        assert!(rep.atoms_materialized >= 500);
    }

    #[test]
    fn general_tgds_get_sound_answers() {
        // Weakly-acyclic general TGD: Finite.
        let mut schema = Schema::new();
        let e = schema.add_predicate("e", 2).unwrap();
        let t = schema.add_predicate("t", 2).unwrap();
        let closure = Tgd::new(
            vec![
                Atom::new(&schema, e, vec![v(0), v(1)]).unwrap(),
                Atom::new(&schema, e, vec![v(1), v(2)]).unwrap(),
            ],
            vec![Atom::new(&schema, t, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&schema, e, vec![c(0), c(1)]).unwrap());
        let rep = check_termination(&schema, &[closure], &db, FindShapesMode::InMemory);
        assert_eq!(rep.verdict, Verdict::Finite);
        assert_eq!(rep.class, TgdClass::General);

        // Non-weakly-acyclic general TGD (restricted-style guard): Unknown.
        let guarded = Tgd::new(
            vec![
                Atom::new(&schema, e, vec![v(0), v(1)]).unwrap(),
                Atom::new(&schema, t, vec![v(0), v(1)]).unwrap(),
            ],
            vec![Atom::new(&schema, e, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let mut db2 = Instance::new();
        db2.insert(Atom::new(&schema, e, vec![c(0), c(1)]).unwrap());
        db2.insert(Atom::new(&schema, t, vec![c(0), c(1)]).unwrap());
        let rep2 = check_termination(&schema, &[guarded], &db2, FindShapesMode::InMemory);
        assert_eq!(rep2.verdict, Verdict::Unknown);
    }

    #[test]
    fn sl_dispatch_and_oracle_agree_on_unsupported_cycle() {
        let mut schema = Schema::new();
        let r = schema.add_predicate("R", 2).unwrap();
        let u = schema.add_predicate("U", 1).unwrap();
        let _ = u;
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&schema, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let mut db = Instance::new();
        db.insert(Atom::new(&schema, u, vec![c(0)]).unwrap());
        let fast = check_termination(
            &schema,
            std::slice::from_ref(&tgd),
            &db,
            FindShapesMode::InMemory,
        );
        assert_eq!(fast.verdict, Verdict::Finite);
        let slow = materialization_check(&schema, &[tgd], &db, Some(10_000));
        assert_eq!(slow.verdict, MaterializationVerdict::Finite);
    }
}
