//! `IsChaseFinite[SL]` (Algorithm 1): semi-oblivious chase termination for
//! simple-linear TGDs via non-uniform weak acyclicity (Theorem 3.3).
//!
//! ```text
//! G ← BuildDepGraph(Σ);  S ← FindSpecialSCC(G);  P ← one node per SCC of S;
//! if Supports(D, P, G) then false else true
//! ```
//!
//! Empty frontiers: the paper assumes TGDs with non-empty frontiers
//! (w.l.o.g., §3). We instead handle them natively: under the
//! semi-oblivious chase an empty-frontier TGD fires at most once globally
//! (its frontier witness is the empty tuple), so its head atoms behave like
//! extra database atoms whenever its body predicate is derivable. The
//! supportedness check therefore runs against the *derivable predicate
//! closure* of the database, which coincides with Definition 3.2 when all
//! frontiers are non-empty (reachable = derivable in that case) and extends
//! it soundly and — for simple-linear TGDs — completely otherwise.

use crate::timings::SlTimings;
use soct_graph::{find_special_sccs, supports, DependencyGraph};
use soct_model::{FxHashSet, PredId, Schema, Tgd};
use soct_obs::Phases;
use soct_storage::TupleSource;

/// Report of one `IsChaseFinite[SL]` run.
#[derive(Clone, Debug)]
pub struct SlCheckReport {
    /// `true` iff `chase(D, Σ)` is finite.
    pub finite: bool,
    /// Per-phase wall-clock breakdown (§7's reported quantities).
    pub timings: SlTimings,
    /// Nodes in the dependency graph.
    pub graph_nodes: usize,
    /// Edges in the dependency graph (`n-edges` of the Appendix plot).
    pub graph_edges: usize,
    /// Special (null-propagating) edges among them.
    pub special_edges: usize,
    /// Number of special SCCs found (line 2 of Algorithm 1).
    pub num_special_sccs: usize,
    /// Whether some special SCC was database-supported.
    pub supported: bool,
}

/// The predicate-level derivable closure: predicates whose atoms can occur
/// in `chase(D, Σ)`, over-approximated at predicate granularity (exact for
/// simple-linear TGDs). Equals the "reachable from a database predicate"
/// closure when every TGD has a non-empty frontier.
pub fn derivable_predicates(tgds: &[Tgd], db_preds: &FxHashSet<PredId>) -> FxHashSet<PredId> {
    let mut derivable = db_preds.clone();
    loop {
        let mut changed = false;
        for t in tgds {
            if t.body().iter().all(|a| derivable.contains(&a.pred)) {
                for a in t.head() {
                    if derivable.insert(a.pred) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return derivable;
        }
    }
}

/// Algorithm 1, with the database given as its set of non-empty predicates
/// (what the catalog query of §5.3 returns).
pub fn is_chase_finite_sl(
    schema: &Schema,
    tgds: &[Tgd],
    db_preds: &FxHashSet<PredId>,
) -> SlCheckReport {
    debug_assert!(tgds.iter().all(Tgd::is_simple_linear));
    let mut phases = Phases::new();
    let graph = phases.run("graph", || DependencyGraph::build(schema, tgds));
    let reps = phases.run("comp", || {
        find_special_sccs(&graph).special_representatives()
    });
    let supported = phases.run("supports", || {
        if reps.is_empty() {
            false
        } else {
            let derivable = derivable_predicates(tgds, db_preds);
            supports(&graph, schema, &reps, |p| derivable.contains(&p))
        }
    });

    SlCheckReport {
        finite: !supported,
        timings: SlTimings::from_phases(&phases),
        graph_nodes: graph.num_nodes(),
        graph_edges: graph.num_edges(),
        special_edges: graph.num_special_edges(),
        num_special_sccs: reps.len(),
        supported,
    }
}

/// Algorithm 1 with the database behind a [`TupleSource`] — runs the
/// catalog query first.
pub fn is_chase_finite_sl_source(
    schema: &Schema,
    tgds: &[Tgd],
    src: &dyn TupleSource,
) -> SlCheckReport {
    let db_preds: FxHashSet<PredId> = src.non_empty_predicates().into_iter().collect();
    is_chase_finite_sl(schema, tgds, &db_preds)
}

/// Algorithm 1 from rule text: parses (filling `t-parse`), then checks.
/// The database defaults to `D_Σ` — one atom per predicate of `sch(Σ)` —
/// exactly the Remark 1 set-up used throughout §7.
pub fn is_chase_finite_sl_text(
    text: &str,
) -> Result<(SlCheckReport, Schema, Vec<Tgd>), soct_parser::ParseError> {
    let mut schema = Schema::new();
    let mut consts = soct_model::Interner::new();
    let mut phases = Phases::new();
    let tgds = phases.run("parse", || {
        soct_parser::parse_tgds(text, &mut schema, &mut consts)
    })?;
    let db_preds: FxHashSet<PredId> = soct_model::tgd::predicates_of(&tgds).into_iter().collect();
    let mut report = is_chase_finite_sl(&schema, &tgds, &db_preds);
    report.timings.t_parse = phases.duration("parse");
    Ok((report, schema, tgds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::{Atom, Term, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    #[test]
    fn running_example_is_infinite() {
        // D = {R(a,b)}, σ: R(x,y) → ∃z R(y,z) (§3).
        let mut schema = Schema::new();
        let r = schema.add_predicate("R", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&schema, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let db: FxHashSet<PredId> = [r].into_iter().collect();
        let rep = is_chase_finite_sl(&schema, &[tgd], &db);
        assert!(!rep.finite);
        assert!(rep.supported);
        assert_eq!(rep.num_special_sccs, 1);
    }

    #[test]
    fn unsupported_cycle_is_finite() {
        // Same rule, but the database only holds an unrelated predicate.
        let mut schema = Schema::new();
        let r = schema.add_predicate("R", 2).unwrap();
        let u = schema.add_predicate("U", 1).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&schema, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let db: FxHashSet<PredId> = [u].into_iter().collect();
        let rep = is_chase_finite_sl(&schema, &[tgd], &db);
        assert!(rep.finite, "cycle exists but is not D-supported");
        assert_eq!(rep.num_special_sccs, 1);
        assert!(!rep.supported);
    }

    #[test]
    fn weakly_acyclic_set_is_finite_for_any_database() {
        let mut schema = Schema::new();
        let r = schema.add_predicate("r", 2).unwrap();
        let p = schema.add_predicate("p", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&schema, p, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        let db: FxHashSet<PredId> = [r, p].into_iter().collect();
        let rep = is_chase_finite_sl(&schema, &[tgd], &db);
        assert!(rep.finite);
        assert_eq!(rep.num_special_sccs, 0);
        assert!(!rep.supported);
    }

    #[test]
    fn empty_frontier_feeds_the_cycle() {
        // u(x) → ∃a,b r(a,b);  r(x,y) → ∃z r(y,z).
        // The first rule has fr = ∅ but derives an r-atom, which supports
        // the special cycle: infinite.
        let mut schema = Schema::new();
        let u = schema.add_predicate("u", 1).unwrap();
        let r = schema.add_predicate("r", 2).unwrap();
        let feed = Tgd::new(
            vec![Atom::new(&schema, u, vec![v(0)]).unwrap()],
            vec![Atom::new(&schema, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let cyc = Tgd::new(
            vec![Atom::new(&schema, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&schema, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let db: FxHashSet<PredId> = [u].into_iter().collect();
        let rep = is_chase_finite_sl(&schema, &[feed, cyc], &db);
        assert!(!rep.finite);
    }

    #[test]
    fn derivable_closure_respects_multi_atom_bodies() {
        // General TGD p(x), q(x) → s(x): s derivable only when both p and q
        // are.
        let mut schema = Schema::new();
        let p = schema.add_predicate("p", 1).unwrap();
        let q = schema.add_predicate("q", 1).unwrap();
        let s = schema.add_predicate("s", 1).unwrap();
        let tgd = Tgd::new(
            vec![
                Atom::new(&schema, p, vec![v(0)]).unwrap(),
                Atom::new(&schema, q, vec![v(0)]).unwrap(),
            ],
            vec![Atom::new(&schema, s, vec![v(0)]).unwrap()],
        )
        .unwrap();
        let only_p: FxHashSet<PredId> = [p].into_iter().collect();
        assert!(!derivable_predicates(std::slice::from_ref(&tgd), &only_p).contains(&s));
        let both: FxHashSet<PredId> = [p, q].into_iter().collect();
        assert!(derivable_predicates(&[tgd], &both).contains(&s));
    }

    #[test]
    fn text_entry_point_fills_t_parse() {
        // s(X,Y) -> r(X,Y) copies positions, so the invented Z at (s,2)
        // flows back into (r,2) — a supported special cycle.
        let (rep, schema, tgds) =
            is_chase_finite_sl_text("r(X, Y) -> s(Y, Z).\ns(X, Y) -> r(X, Y).\n").unwrap();
        assert!(!rep.finite, "invented Z at (s,2) cycles back into (r,2)");
        assert!(rep.timings.t_parse > std::time::Duration::ZERO);
        assert_eq!(schema.len(), 2);
        assert_eq!(tgds.len(), 2);
    }

    #[test]
    fn dsigma_database_makes_every_cycle_supported() {
        // With D_Σ (every predicate inhabited), finiteness degenerates to
        // plain weak acyclicity.
        let (rep, _, _) = is_chase_finite_sl_text("r(X, Y) -> r(Y, Z).").unwrap();
        assert!(!rep.finite);
        let (rep2, _, _) = is_chase_finite_sl_text("r(X, Y) -> p(X, Z).").unwrap();
        assert!(rep2.finite);
    }
}
