//! Naive bad-cycle detection — the strawman of §4: "a naive search for a
//! 'bad' cycle in a dependency graph will be too costly since we may have to
//! go through exponentially many cycles".
//!
//! Two baselines live here:
//! - [`has_special_cycle_per_edge`]: for every special edge `(u, v)`, test
//!   whether `u` is reachable from `v` — O(S·E) instead of the SCC
//!   approach's O(V+E). This is the "reasonable but naive" implementation
//!   used in the `abl-scc` ablation.
//! - [`enumerate_special_cycles`]: explicitly enumerates simple cycles
//!   through special edges (with a cap), the truly exponential strawman,
//!   kept for tests and small-graph diagnostics.

use crate::depgraph::DependencyGraph;

/// True iff some cycle contains a special edge, decided one special edge at
/// a time via forward reachability.
pub fn has_special_cycle_per_edge(g: &DependencyGraph) -> bool {
    let n = g.num_nodes();
    let mut visited = vec![false; n];
    let mut queue: Vec<u32> = Vec::new();
    for e in g.edges() {
        if !e.special {
            continue;
        }
        // BFS from e.to looking for e.from.
        if e.to == e.from {
            return true;
        }
        visited.iter_mut().for_each(|b| *b = false);
        visited[e.to as usize] = true;
        queue.clear();
        queue.push(e.to);
        let mut qi = 0;
        while qi < queue.len() {
            let v = queue[qi];
            qi += 1;
            for (w, _) in g.successors(v) {
                if w == e.from {
                    return true;
                }
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    queue.push(w);
                }
            }
        }
    }
    false
}

/// Enumerates up to `cap` simple cycles that traverse at least one special
/// edge, each returned as a node sequence starting and ending at the same
/// node (the endpoint is implicit). Exponential; for small graphs only.
pub fn enumerate_special_cycles(g: &DependencyGraph, cap: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let n = g.num_nodes();
    // DFS from each node, only keeping cycles whose minimal node is the
    // start (canonical form, avoids duplicates up to rotation).
    for start in 0..n as u32 {
        if out.len() >= cap {
            break;
        }
        let mut path = vec![start];
        let mut on_path = vec![false; n];
        on_path[start as usize] = true;
        let mut specials = vec![false]; // specials[i] = edge i-1 → i special
        dfs(
            g,
            start,
            start,
            &mut path,
            &mut on_path,
            &mut specials,
            &mut out,
            cap,
        );
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &DependencyGraph,
    start: u32,
    v: u32,
    path: &mut Vec<u32>,
    on_path: &mut [bool],
    specials: &mut Vec<bool>,
    out: &mut Vec<Vec<u32>>,
    cap: usize,
) {
    if out.len() >= cap {
        return;
    }
    for (w, sp) in g.successors(v) {
        if out.len() >= cap {
            return;
        }
        if w == start {
            if sp || specials.iter().any(|&b| b) {
                out.push(path.clone());
            }
        } else if w > start && !on_path[w as usize] {
            path.push(w);
            on_path[w as usize] = true;
            specials.push(sp);
            dfs(g, start, w, path, on_path, specials, out, cap);
            specials.pop();
            on_path[w as usize] = false;
            path.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tarjan::find_special_sccs;
    use soct_model::{Atom, Schema, Term, Tgd, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn self_loop_example() -> DependencyGraph {
        let mut s = Schema::new();
        let r = s.add_predicate("R", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        DependencyGraph::build(&s, &[tgd])
    }

    #[test]
    fn per_edge_baseline_detects_the_running_example() {
        let g = self_loop_example();
        assert!(has_special_cycle_per_edge(&g));
        assert_eq!(
            has_special_cycle_per_edge(&g),
            find_special_sccs(&g).has_special_scc()
        );
    }

    #[test]
    fn acyclic_graph_has_no_special_cycle() {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        let g = DependencyGraph::build(&s, &[tgd]);
        assert!(!has_special_cycle_per_edge(&g));
        assert!(enumerate_special_cycles(&g, 100).is_empty());
    }

    #[test]
    fn enumeration_finds_the_cycle() {
        let g = self_loop_example();
        let cycles = enumerate_special_cycles(&g, 100);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0], vec![1]); // (R,2) → (R,2)
    }

    #[test]
    fn normal_only_cycles_are_skipped() {
        // Copy cycle r ↔ p: cycles exist but none special.
        let mut s = Schema::new();
        let r = s.add_predicate("r", 1).unwrap();
        let p = s.add_predicate("p", 1).unwrap();
        let t1 = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(0)]).unwrap()],
        )
        .unwrap();
        let t2 = Tgd::new(
            vec![Atom::new(&s, p, vec![v(0)]).unwrap()],
            vec![Atom::new(&s, r, vec![v(0)]).unwrap()],
        )
        .unwrap();
        let g = DependencyGraph::build(&s, &[t1, t2]);
        assert!(!has_special_cycle_per_edge(&g));
        assert!(enumerate_special_cycles(&g, 100).is_empty());
        assert!(!find_special_sccs(&g).has_special_scc());
    }

    #[test]
    fn cap_limits_enumeration() {
        let g = self_loop_example();
        assert!(enumerate_special_cycles(&g, 0).is_empty());
    }
}
