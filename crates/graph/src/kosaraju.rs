//! Kosaraju's two-pass SCC algorithm (§5.2 mentions it as the simpler
//! alternative to Tarjan; the paper builds on Tarjan "as it is more
//! efficient in practice"). We keep Kosaraju as the ablation baseline
//! (`abl-scc`) and as an independent oracle for the Tarjan implementation.

use crate::depgraph::DependencyGraph;
use crate::tarjan::SccResult;

/// Runs Kosaraju's algorithm; produces the same [`SccResult`] shape as
/// [`crate::tarjan::find_special_sccs`] (component ids may be numbered
/// differently, but the partition and the special labels agree).
pub fn find_special_sccs_kosaraju(g: &DependencyGraph) -> SccResult {
    let n = g.num_nodes();
    // Pass 1: iterative DFS on the forward graph, recording finish order.
    let mut visited = vec![false; n];
    let mut finish_order: Vec<u32> = Vec::with_capacity(n);
    let mut stack: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if visited[root as usize] {
            continue;
        }
        visited[root as usize] = true;
        stack.push((root, 0));
        while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
            let out = g.successor_words(v);
            if let Some(&word) = out.get(*ei) {
                *ei += 1;
                let w = DependencyGraph::word_target(word);
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    stack.push((w, 0));
                }
            } else {
                finish_order.push(v);
                stack.pop();
            }
        }
    }

    // Pass 2: DFS on the reverse graph in decreasing finish order.
    let mut scc_of = vec![u32::MAX; n];
    let mut num_sccs = 0usize;
    let mut dfs: Vec<u32> = Vec::new();
    for &root in finish_order.iter().rev() {
        if scc_of[root as usize] != u32::MAX {
            continue;
        }
        let c = num_sccs as u32;
        num_sccs += 1;
        scc_of[root as usize] = c;
        dfs.push(root);
        while let Some(v) = dfs.pop() {
            for (w, _) in g.predecessors(v) {
                if scc_of[w as usize] == u32::MAX {
                    scc_of[w as usize] = c;
                    dfs.push(w);
                }
            }
        }
    }

    let mut special = vec![false; num_sccs];
    for e in g.edges() {
        if e.special && scc_of[e.from as usize] == scc_of[e.to as usize] {
            special[scc_of[e.from as usize] as usize] = true;
        }
    }

    SccResult {
        scc_of,
        num_sccs,
        special,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tarjan::find_special_sccs;
    use soct_model::{Atom, Schema, Term, Tgd, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// Partition refinement check: two SCC labelings describe the same
    /// partition iff the label pairs biject.
    fn same_partition(a: &[u32], b: &[u32]) -> bool {
        use std::collections::HashMap;
        let mut fwd: HashMap<u32, u32> = HashMap::new();
        let mut bwd: HashMap<u32, u32> = HashMap::new();
        for (&x, &y) in a.iter().zip(b.iter()) {
            if *fwd.entry(x).or_insert(y) != y {
                return false;
            }
            if *bwd.entry(y).or_insert(x) != x {
                return false;
            }
        }
        true
    }

    #[test]
    fn agrees_with_tarjan() {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        let q = s.add_predicate("q", 2).unwrap();
        let rules = vec![
            Tgd::new(
                vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&s, p, vec![v(1), v(2)]).unwrap()],
            )
            .unwrap(),
            Tgd::new(
                vec![Atom::new(&s, p, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            )
            .unwrap(),
            Tgd::new(
                vec![Atom::new(&s, q, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&s, q, vec![v(1), v(0)]).unwrap()],
            )
            .unwrap(),
        ];
        let g = crate::depgraph::DependencyGraph::build(&s, &rules);
        let t = find_special_sccs(&g);
        let k = find_special_sccs_kosaraju(&g);
        assert_eq!(t.num_sccs, k.num_sccs);
        assert!(same_partition(&t.scc_of, &k.scc_of));
        // Special labels agree component-wise.
        for e in g.edges() {
            let tc = t.scc_of[e.from as usize] as usize;
            let kc = k.scc_of[e.from as usize] as usize;
            if t.scc_of[e.from as usize] == t.scc_of[e.to as usize] {
                assert_eq!(t.special[tc], k.special[kc]);
            }
        }
        assert_eq!(t.has_special_scc(), k.has_special_scc());
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let mut s = Schema::new();
        s.add_predicate("lonely", 3).unwrap();
        let g = crate::depgraph::DependencyGraph::build(&s, &[]);
        let k = find_special_sccs_kosaraju(&g);
        assert_eq!(k.num_sccs, 3);
        assert!(!k.has_special_scc());
    }
}
