//! The `Supports` procedure (§5.3) and predicate-level reachability.
//!
//! A (possibly cyclic) path C in `dg(Σ)` is *D-supported* if some atom
//! `R(t̄) ∈ D` and some node `(P, i)` of C satisfy "P is reachable from R"
//! — where reachability means `R = P` or a path from *some* position of R to
//! *some* position of P (§2). Algorithm 1 therefore takes one node per
//! special SCC and asks whether any of them is reachable from a position of
//! an extensional (database) predicate.
//!
//! Following §5.3 this runs *backwards*: we traverse the reverse edges from
//! the special-SCC representatives and stop as soon as we touch a position
//! whose predicate occurs in the database. The reverse adjacency was built
//! for exactly this purpose (§5.1).

use crate::depgraph::DependencyGraph;
use soct_model::{PredId, Schema};

/// `Supports(D, P, G)`: true iff some node of `starts` is reachable (in the
/// forward direction) from a position of a predicate satisfying
/// `is_db_pred`. Implemented as a reverse BFS from `starts`.
///
/// `is_db_pred` abstracts "the predicate has at least one tuple in D" — the
/// catalog query of §5.3 — so callers can back it with an instance, a
/// storage-engine catalog, or the derivable-predicate closure used for
/// empty-frontier TGDs.
pub fn supports(
    g: &DependencyGraph,
    schema: &Schema,
    starts: &[u32],
    is_db_pred: impl Fn(PredId) -> bool,
) -> bool {
    let mut visited = vec![false; g.num_nodes()];
    let mut queue: Vec<u32> = Vec::with_capacity(starts.len());
    for &s in starts {
        if !visited[s as usize] {
            visited[s as usize] = true;
            queue.push(s);
        }
    }
    let mut qi = 0;
    while qi < queue.len() {
        let v = queue[qi];
        qi += 1;
        // The R = P base case: the node's own predicate is extensional.
        if is_db_pred(schema.position_at(v as usize).pred) {
            return true;
        }
        for (w, _) in g.predecessors(v) {
            if !visited[w as usize] {
                visited[w as usize] = true;
                queue.push(w);
            }
        }
    }
    false
}

/// All nodes from which some node of `starts` is reachable (inclusive) —
/// the full reverse closure, for diagnostics and tests.
pub fn reverse_closure(g: &DependencyGraph, starts: &[u32]) -> Vec<u32> {
    let mut visited = vec![false; g.num_nodes()];
    let mut queue: Vec<u32> = Vec::new();
    for &s in starts {
        if !visited[s as usize] {
            visited[s as usize] = true;
            queue.push(s);
        }
    }
    let mut qi = 0;
    while qi < queue.len() {
        let v = queue[qi];
        qi += 1;
        for (w, _) in g.predecessors(v) {
            if !visited[w as usize] {
                visited[w as usize] = true;
                queue.push(w);
            }
        }
    }
    queue.sort_unstable();
    queue
}

/// "P is reachable from R w.r.t. Σ" (§2): `R = P`, or a path in `dg(Σ)`
/// from a position of R to a position of P. Forward BFS; used in tests and
/// by the derivable-predicate closure.
pub fn predicate_reachable(g: &DependencyGraph, schema: &Schema, from: PredId, to: PredId) -> bool {
    if from == to {
        return true;
    }
    let mut visited = vec![false; g.num_nodes()];
    let mut queue: Vec<u32> = Vec::new();
    for i in 0..schema.arity(from) {
        let v = schema.position_index(soct_model::Position::new(from, i)) as u32;
        visited[v as usize] = true;
        queue.push(v);
    }
    let mut qi = 0;
    while qi < queue.len() {
        let v = queue[qi];
        qi += 1;
        if schema.position_at(v as usize).pred == to {
            return true;
        }
        for (w, _) in g.successors(v) {
            if !visited[w as usize] {
                visited[w as usize] = true;
                queue.push(w);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::DependencyGraph;
    use crate::tarjan::find_special_sccs;
    use soct_model::{Atom, Term, Tgd, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// s(x) → r(x,x);  r(x,y) → ∃z r(y,z): the special cycle on (r,2) is
    /// supported iff the database mentions s or r.
    fn chainable() -> (Schema, DependencyGraph, PredId, PredId, PredId) {
        let mut sch = Schema::new();
        let s = sch.add_predicate("s", 1).unwrap();
        let r = sch.add_predicate("r", 2).unwrap();
        let u = sch.add_predicate("u", 1).unwrap();
        let t1 = Tgd::new(
            vec![Atom::new(&sch, s, vec![v(0)]).unwrap()],
            vec![Atom::new(&sch, r, vec![v(0), v(0)]).unwrap()],
        )
        .unwrap();
        let t2 = Tgd::new(
            vec![Atom::new(&sch, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&sch, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let g = DependencyGraph::build(&sch, &[t1, t2]);
        (sch, g, s, r, u)
    }

    #[test]
    fn supported_via_direct_membership() {
        let (sch, g, _s, r, _u) = chainable();
        let scc = find_special_sccs(&g);
        let starts = scc.special_representatives();
        assert!(!starts.is_empty());
        assert!(supports(&g, &sch, &starts, |p| p == r));
    }

    #[test]
    fn supported_via_upstream_predicate() {
        let (sch, g, s, _r, _u) = chainable();
        let scc = find_special_sccs(&g);
        let starts = scc.special_representatives();
        // Database contains only s-atoms: s feeds r, so the cycle is
        // supported.
        assert!(supports(&g, &sch, &starts, |p| p == s));
    }

    #[test]
    fn unsupported_when_database_is_unrelated() {
        let (sch, g, _s, _r, u) = chainable();
        let scc = find_special_sccs(&g);
        let starts = scc.special_representatives();
        // Database contains only u-atoms: u has no path into the cycle.
        assert!(!supports(&g, &sch, &starts, |p| p == u));
        assert!(!supports(&g, &sch, &starts, |_| false));
    }

    #[test]
    fn predicate_reachability() {
        let (sch, g, s, r, u) = chainable();
        assert!(predicate_reachable(&g, &sch, s, r));
        assert!(predicate_reachable(&g, &sch, r, r));
        assert!(predicate_reachable(&g, &sch, u, u)); // R = P base case
        assert!(!predicate_reachable(&g, &sch, r, s));
        assert!(!predicate_reachable(&g, &sch, u, r));
    }

    #[test]
    fn reverse_closure_contains_starts_and_feeders() {
        let (sch, g, s, _r, _u) = chainable();
        let scc = find_special_sccs(&g);
        let starts = scc.special_representatives();
        let closure = reverse_closure(&g, &starts);
        // The s-position feeds the cycle, so it belongs to the closure.
        let s_pos = sch.position_index(soct_model::Position::new(s, 0)) as u32;
        assert!(closure.contains(&s_pos));
        for st in starts {
            assert!(closure.contains(&st));
        }
    }
}
