//! # soct-graph
//!
//! Dependency graphs of TGD sets and the graph algorithms behind the chase
//! termination checkers (§3, §5.1–§5.3 of the paper): linear-time
//! construction with forward *and* reverse adjacency, special-SCC detection
//! via an iterative Tarjan (with a Kosaraju baseline and naive cycle-search
//! strawmen for the ablations), and the `Supports` reverse traversal.

pub mod cycle;
pub mod depgraph;
pub mod kosaraju;
pub mod reach;
pub mod tarjan;

pub use cycle::{enumerate_special_cycles, has_special_cycle_per_edge};
pub use depgraph::{DependencyGraph, Edge};
pub use kosaraju::find_special_sccs_kosaraju;
pub use reach::{predicate_reachable, reverse_closure, supports};
pub use tarjan::{find_special_sccs, SccResult};
