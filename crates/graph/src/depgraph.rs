//! The dependency graph `dg(Σ)` of a set of TGDs (§3).
//!
//! Nodes are the predicate positions `pos(sch(Σ))`; for each TGD σ, each
//! frontier variable x, and each body position π of x:
//! - a *normal* edge `(π, π′)` to every head position π′ of x, and
//! - a *special* edge `(π, π′)` to every head position π′ of an
//!   existentially quantified variable.
//!
//! `dg(Σ)` is formally a multigraph, but parallel duplicates carry no
//! information for acyclicity, so construction deduplicates
//! `(from, to, special)` triples — the paper relies on the same fact when
//! discussing edge counts ("many TGDs simply lead to the same edges, which
//! are of course considered once in the graph", Appendix A).
//!
//! Following §5.1, the adjacency structure is doubly linked: every node
//! carries forward *and* reverse adjacency, so `Supports` (§5.3) can walk
//! the graph against the edge direction. Construction is linear in `|Σ|`
//! thanks to the dense position numbering provided by
//! [`soct_model::Schema`].
//!
//! After construction the graph is *sealed* into CSR (compressed sparse
//! row) form: one offset array plus one flat word array per direction,
//! with the special bit packed into the low bit of each target word. The
//! traversals (Tarjan, Kosaraju, `Supports`, the cycle strawmen) walk
//! contiguous successor slices with no per-node `Vec` indirection — see
//! `docs/ARCHITECTURE.md`, "Hot-path memory layout".

use soct_model::fxhash::FxHashSet;
use soct_model::{Position, Schema, Tgd};

/// A directed edge of the dependency graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    pub from: u32,
    pub to: u32,
    pub special: bool,
}

/// Packs an adjacency word: target node in the high 31 bits, special bit
/// in the low bit.
#[inline(always)]
fn pack_word(node: u32, special: bool) -> u32 {
    (node << 1) | special as u32
}

/// The dependency graph: an edge table plus sealed CSR adjacency in both
/// directions.
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    num_nodes: usize,
    edges: Vec<Edge>,
    /// CSR offsets: `fwd_words[fwd_off[v] .. fwd_off[v+1]]` are the packed
    /// `(target, special)` words of the edges leaving `v`, in insertion
    /// order (`len = num_nodes + 1`; empty until sealed).
    fwd_off: Vec<u32>,
    fwd_words: Vec<u32>,
    /// Reverse CSR: packed `(source, special)` words of the edges
    /// *entering* each node — the doubly-linked structure of §5.1.
    rev_off: Vec<u32>,
    rev_words: Vec<u32>,
    num_special: usize,
}

impl DependencyGraph {
    /// `BuildDepGraph` (§5.1): constructs `dg(Σ)` over the positions of
    /// `schema`. Predicates of `schema` not mentioned in `tgds` contribute
    /// isolated nodes, which is harmless.
    pub fn build(schema: &Schema, tgds: &[Tgd]) -> Self {
        let n = schema.num_positions();
        let mut g = DependencyGraph {
            num_nodes: n,
            ..DependencyGraph::default()
        };
        // Dedup key: from (high), to (low), special bit folded into `to`'s
        // high bit space — packed into one u64 for a cheap set.
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for tgd in tgds {
            for &x in tgd.frontier() {
                for body_atom in tgd.body() {
                    for pi in body_atom.positions_of_var(x) {
                        let from = schema.position_index(pi) as u32;
                        // Normal edges: to every head occurrence of x.
                        for head_atom in tgd.head() {
                            for pj in head_atom.positions_of_var(x) {
                                let to = schema.position_index(pj) as u32;
                                g.add_edge(&mut seen, from, to, false);
                            }
                            // Special edges: to every head occurrence of an
                            // existential variable.
                            for &z in tgd.existential() {
                                for pj in head_atom.positions_of_var(z) {
                                    let to = schema.position_index(pj) as u32;
                                    g.add_edge(&mut seen, from, to, true);
                                }
                            }
                        }
                    }
                }
            }
        }
        g.seal();
        g
    }

    fn add_edge(&mut self, seen: &mut FxHashSet<u64>, from: u32, to: u32, special: bool) {
        let key = ((from as u64) << 33) | ((to as u64) << 1) | special as u64;
        if !seen.insert(key) {
            return;
        }
        self.edges.push(Edge { from, to, special });
        if special {
            self.num_special += 1;
        }
    }

    /// Builds the CSR arrays from the edge table: two counting passes per
    /// direction, stable in edge-insertion order (so per-node adjacency
    /// order — and with it every DFS and the SCC numbering — matches the
    /// pre-CSR `Vec<Vec<_>>` layout exactly).
    fn seal(&mut self) {
        let n = self.num_nodes;
        assert!(
            n <= (u32::MAX >> 1) as usize,
            "node ids must fit 31 bits (special bit is packed alongside)"
        );
        let mut fwd_off = vec![0u32; n + 1];
        let mut rev_off = vec![0u32; n + 1];
        for e in &self.edges {
            fwd_off[e.from as usize + 1] += 1;
            rev_off[e.to as usize + 1] += 1;
        }
        for v in 0..n {
            fwd_off[v + 1] += fwd_off[v];
            rev_off[v + 1] += rev_off[v];
        }
        let mut fwd_words = vec![0u32; self.edges.len()];
        let mut rev_words = vec![0u32; self.edges.len()];
        let mut fwd_cur: Vec<u32> = fwd_off[..n].to_vec();
        let mut rev_cur: Vec<u32> = rev_off[..n].to_vec();
        for e in &self.edges {
            let f = &mut fwd_cur[e.from as usize];
            fwd_words[*f as usize] = pack_word(e.to, e.special);
            *f += 1;
            let r = &mut rev_cur[e.to as usize];
            rev_words[*r as usize] = pack_word(e.from, e.special);
            *r += 1;
        }
        self.fwd_off = fwd_off;
        self.fwd_words = fwd_words;
        self.rev_off = rev_off;
        self.rev_words = rev_words;
    }

    /// Number of nodes (= `|pos(sch(Σ))|`).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of distinct edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of distinct special edges.
    #[inline]
    pub fn num_special_edges(&self) -> usize {
        self.num_special
    }

    /// The edge table.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The packed outgoing adjacency words of `v` — the zero-abstraction
    /// CSR slice the iterative DFS machines walk. Decode with
    /// [`DependencyGraph::word_target`] / [`DependencyGraph::word_special`].
    #[inline]
    pub fn successor_words(&self, v: u32) -> &[u32] {
        &self.fwd_words[self.fwd_off[v as usize] as usize..self.fwd_off[v as usize + 1] as usize]
    }

    /// The packed incoming adjacency words of `v` (reverse CSR).
    #[inline]
    pub fn predecessor_words(&self, v: u32) -> &[u32] {
        &self.rev_words[self.rev_off[v as usize] as usize..self.rev_off[v as usize + 1] as usize]
    }

    /// The node half of a packed adjacency word.
    #[inline(always)]
    pub fn word_target(word: u32) -> u32 {
        word >> 1
    }

    /// The special bit of a packed adjacency word.
    #[inline(always)]
    pub fn word_special(word: u32) -> bool {
        word & 1 != 0
    }

    /// Outgoing `(target, special)` pairs of `v`.
    pub fn successors(&self, v: u32) -> impl Iterator<Item = (u32, bool)> + '_ {
        self.successor_words(v)
            .iter()
            .map(|&w| (Self::word_target(w), Self::word_special(w)))
    }

    /// Incoming `(source, special)` pairs of `v` (the reverse links of
    /// §5.1).
    pub fn predecessors(&self, v: u32) -> impl Iterator<Item = (u32, bool)> + '_ {
        self.predecessor_words(v)
            .iter()
            .map(|&w| (Self::word_target(w), Self::word_special(w)))
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: u32) -> usize {
        self.successor_words(v).len()
    }

    /// Resolves a node id back to its predicate position.
    pub fn position(&self, schema: &Schema, v: u32) -> Position {
        schema.position_at(v as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soct_model::{Atom, Term, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// D = {R(a,b)}, Σ = {R(x,y) → ∃z R(y,z)} — the §3 running example.
    fn running_example() -> (Schema, Vec<Tgd>) {
        let mut s = Schema::new();
        let r = s.add_predicate("R", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        (s, vec![tgd])
    }

    #[test]
    fn running_example_edges() {
        let (s, tgds) = running_example();
        let g = DependencyGraph::build(&s, &tgds);
        assert_eq!(g.num_nodes(), 2);
        // y: (R,2) → (R,1) normal; plus special (R,2) → (R,2).
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_special_edges(), 1);
        let normal: Vec<_> = g.successors(1).collect();
        assert!(normal.contains(&(0, false)));
        assert!(normal.contains(&(1, true)));
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let (s, tgds) = running_example();
        let doubled: Vec<Tgd> = tgds.iter().cloned().chain(tgds.iter().cloned()).collect();
        let g = DependencyGraph::build(&s, &doubled);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn weakly_acyclic_set_has_no_special_cycle_material() {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        // r(x,y) → ∃z p(x,z): copies x, invents z — no cycle back into r.
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        let g = DependencyGraph::build(&s, &[tgd]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_special_edges(), 1);
        // Edges only go r → p.
        for e in g.edges() {
            assert!(e.from < 2 && e.to >= 2);
        }
    }

    #[test]
    fn csr_slices_match_the_edge_table_in_insertion_order() {
        let (s, tgds) = running_example();
        let g = DependencyGraph::build(&s, &tgds);
        // Per-node forward slices concatenate to the edge table filtered by
        // source, in insertion order (the property the DFS order — and so
        // the SCC numbering — depends on).
        for v in 0..g.num_nodes() as u32 {
            let decoded: Vec<(u32, bool)> = g
                .successor_words(v)
                .iter()
                .map(|&w| {
                    (
                        DependencyGraph::word_target(w),
                        DependencyGraph::word_special(w),
                    )
                })
                .collect();
            let from_table: Vec<(u32, bool)> = g
                .edges()
                .iter()
                .filter(|e| e.from == v)
                .map(|e| (e.to, e.special))
                .collect();
            assert_eq!(decoded, from_table, "node {v}");
            assert_eq!(g.out_degree(v), from_table.len());
            let preds: Vec<(u32, bool)> = g.predecessors(v).collect();
            let preds_table: Vec<(u32, bool)> = g
                .edges()
                .iter()
                .filter(|e| e.to == v)
                .map(|e| (e.from, e.special))
                .collect();
            assert_eq!(preds, preds_table, "node {v} (reverse)");
        }
    }

    #[test]
    fn reverse_adjacency_mirrors_forward() {
        let (s, tgds) = running_example();
        let g = DependencyGraph::build(&s, &tgds);
        for e in g.edges() {
            assert!(g
                .successors(e.from)
                .any(|(t, sp)| t == e.to && sp == e.special));
            assert!(g
                .predecessors(e.to)
                .any(|(f, sp)| f == e.from && sp == e.special));
        }
    }

    #[test]
    fn repeated_frontier_var_in_head_multiplies_normal_edges() {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 1).unwrap();
        let p = s.add_predicate("p", 3).unwrap();
        // r(x) → p(x, x, x): three normal edges from (r,1).
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(0), v(0), v(0)]).unwrap()],
        )
        .unwrap();
        let g = DependencyGraph::build(&s, &[tgd]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_special_edges(), 0);
        assert_eq!(g.out_degree(0), 3);
    }

    #[test]
    fn empty_frontier_contributes_no_edges() {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 1).unwrap();
        let p = s.add_predicate("p", 1).unwrap();
        // r(x) → ∃z p(z): fr = ∅.
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(1)]).unwrap()],
        )
        .unwrap();
        let g = DependencyGraph::build(&s, &[tgd]);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn multi_head_tgd_links_all_head_atoms() {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        let q = s.add_predicate("q", 1).unwrap();
        // r(x,y) → ∃z p(y,z), q(z)
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![
                Atom::new(&s, p, vec![v(1), v(2)]).unwrap(),
                Atom::new(&s, q, vec![v(2)]).unwrap(),
            ],
        )
        .unwrap();
        let g = DependencyGraph::build(&s, &[tgd]);
        // y: (r,2) → (p,1) normal. z: (r,2) → (p,2) special, (r,2) → (q,1)
        // special.
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_special_edges(), 2);
    }
}
