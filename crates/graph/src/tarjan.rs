//! `FindSpecialSCC` (§5.2): strongly connected components via an iterative
//! Tarjan, with *special* SCCs — SCCs containing at least one special edge —
//! labelled for the termination checkers.
//!
//! The paper extends Tarjan with a dummy token pushed onto the SCC stack at
//! every special-edge traversal; an SCC is special when a token sits among
//! its popped nodes. We compute the same labels with one O(E) scan after the
//! SCC partition is known (`scc[from] == scc[to]` for a special edge): this
//! is exactly the definition of a special SCC, has the same asymptotics, and
//! avoids the token trick's subtlety around special edges that leave the
//! current component. The unit tests cross-check both formulations.
//!
//! Tarjan is implemented with explicit stacks: the paper's rule sets reach a
//! million TGDs and recursion would overflow on deep dependency chains.

use crate::depgraph::DependencyGraph;

/// The SCC partition of a dependency graph, with special labels.
#[derive(Clone, Debug)]
pub struct SccResult {
    /// `scc_of[v]` = component id of node `v`. Component ids are dense and
    /// in reverse topological order of the condensation (a Tarjan property).
    pub scc_of: Vec<u32>,
    /// Number of components.
    pub num_sccs: usize,
    /// `special[c]` = component `c` contains a special edge.
    pub special: Vec<bool>,
}

impl SccResult {
    /// Ids of the special components.
    pub fn special_sccs(&self) -> Vec<u32> {
        (0..self.num_sccs as u32)
            .filter(|&c| self.special[c as usize])
            .collect()
    }

    /// True if any component is special — for sets produced by dynamic
    /// simplification this alone decides non-termination (Lemma 4.5).
    pub fn has_special_scc(&self) -> bool {
        self.special.iter().any(|&b| b)
    }

    /// One representative node `v_C` per special component, as collected by
    /// line 3 of Algorithm 1 ("it is not important how v_C is selected" —
    /// we take the lowest-numbered member).
    pub fn special_representatives(&self) -> Vec<u32> {
        let mut rep: Vec<Option<u32>> = vec![None; self.num_sccs];
        for (v, &c) in self.scc_of.iter().enumerate() {
            let slot = &mut rep[c as usize];
            if slot.is_none() {
                *slot = Some(v as u32);
            }
        }
        (0..self.num_sccs)
            .filter(|&c| self.special[c])
            .map(|c| rep[c].expect("every component has a member"))
            .collect()
    }

    /// Members of each component (component id → nodes).
    pub fn components(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.num_sccs];
        for (v, &c) in self.scc_of.iter().enumerate() {
            out[c as usize].push(v as u32);
        }
        out
    }
}

/// Runs Tarjan's algorithm and labels special SCCs.
pub fn find_special_sccs(g: &DependencyGraph) -> SccResult {
    let n = g.num_nodes();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n]; // discovery number
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut scc_of = vec![0u32; n];
    let mut scc_stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut num_sccs = 0usize;

    // Explicit DFS machine: (node, iterator-position into fwd edge list).
    let mut call_stack: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        call_stack.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        scc_stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut ei)) = call_stack.last_mut() {
            // Find the next edge of v to process: a contiguous CSR slice,
            // no edge-table indirection.
            let words = &g.successor_words(v)[*ei..];
            if let Some(&word) = words.first() {
                *ei += 1;
                let w = DependencyGraph::word_target(word);
                if index[w as usize] == UNVISITED {
                    // Tree edge: descend.
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    scc_stack.push(w);
                    on_stack[w as usize] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w as usize] {
                    // Frond or cross-link within the current tree.
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                // All edges of v processed: pop and propagate lowlink.
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is the root of an SCC: pop the component.
                    let c = num_sccs as u32;
                    loop {
                        let w = scc_stack.pop().expect("component root is on the stack");
                        on_stack[w as usize] = false;
                        scc_of[w as usize] = c;
                        if w == v {
                            break;
                        }
                    }
                    num_sccs += 1;
                }
            }
        }
    }

    // Label special SCCs: a special edge whose endpoints share a component.
    let mut special = vec![false; num_sccs];
    for e in g.edges() {
        if e.special && scc_of[e.from as usize] == scc_of[e.to as usize] {
            special[scc_of[e.from as usize] as usize] = true;
        }
    }

    SccResult {
        scc_of,
        num_sccs,
        special,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::DependencyGraph;
    use soct_model::{Atom, Schema, Term, Tgd, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    #[test]
    fn self_special_loop_is_a_special_scc() {
        // R(x,y) → ∃z R(y,z): special self-loop on (R,2).
        let mut s = Schema::new();
        let r = s.add_predicate("R", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, r, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let g = DependencyGraph::build(&s, &[tgd]);
        let scc = find_special_sccs(&g);
        assert!(scc.has_special_scc());
        assert_eq!(scc.special_sccs().len(), 1);
        assert_eq!(scc.special_representatives(), vec![1]);
    }

    #[test]
    fn weakly_acyclic_copy_rule_has_no_special_scc() {
        // r(x,y) → ∃z p(x,z).
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        let g = DependencyGraph::build(&s, &[tgd]);
        let scc = find_special_sccs(&g);
        assert!(!scc.has_special_scc());
        // Every node is its own component (no cycles at all).
        assert_eq!(scc.num_sccs, g.num_nodes());
    }

    #[test]
    fn normal_cycle_without_special_edge_is_not_special() {
        // r(x,y) → p(y,x); p(x,y) → r(y,x): a pure copy cycle.
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        let t1 = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(1), v(0)]).unwrap()],
        )
        .unwrap();
        let t2 = Tgd::new(
            vec![Atom::new(&s, p, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, r, vec![v(1), v(0)]).unwrap()],
        )
        .unwrap();
        let g = DependencyGraph::build(&s, &[t1, t2]);
        let scc = find_special_sccs(&g);
        assert!(!scc.has_special_scc());
        // All four positions collapse into cycles.
        assert!(scc.num_sccs < g.num_nodes());
    }

    #[test]
    fn two_rule_special_cycle_detected() {
        // r(x) → ∃z p(z); p(x) → r(x): cycle (r,1) → (p,1) special,
        // (p,1) → (r,1) normal.
        let mut s = Schema::new();
        let r = s.add_predicate("r", 1).unwrap();
        let p = s.add_predicate("p", 1).unwrap();
        let t1 = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(1)]).unwrap()],
        );
        // fr(t1) = ∅ — that rule alone cannot drive a cycle. Use the frontier
        // version instead: r(x) → ∃z p(z) has empty frontier, so we model
        // r(x) → ∃z q(x, z); q(x, z) → r(z).
        drop(t1);
        let mut s = Schema::new();
        let r = s.add_predicate("r", 1).unwrap();
        let q = s.add_predicate("q", 2).unwrap();
        let t1 = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0)]).unwrap()],
            vec![Atom::new(&s, q, vec![v(0), v(1)]).unwrap()],
        )
        .unwrap();
        let t2 = Tgd::new(
            vec![Atom::new(&s, q, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, r, vec![v(1)]).unwrap()],
        )
        .unwrap();
        let _ = (r, p);
        let g = DependencyGraph::build(&s, &[t1, t2]);
        let scc = find_special_sccs(&g);
        assert!(scc.has_special_scc());
        // (r,1) and (q,2) form the special SCC; (q,1) hangs off it.
        let comps = scc.components();
        let special: Vec<_> = scc
            .special_sccs()
            .iter()
            .map(|&c| comps[c as usize].clone())
            .collect();
        assert_eq!(special.len(), 1);
        assert_eq!(special[0].len(), 2);
    }

    #[test]
    fn component_ids_are_reverse_topological() {
        // Chain a → b (no cycle): Tarjan numbers sinks first.
        let mut s = Schema::new();
        let a = s.add_predicate("a", 1).unwrap();
        let b = s.add_predicate("b", 1).unwrap();
        let _ = (a, b);
        let t = Tgd::new(
            vec![Atom::new(&s, a, vec![v(0)]).unwrap()],
            vec![Atom::new(&s, b, vec![v(0)]).unwrap()],
        )
        .unwrap();
        let g = DependencyGraph::build(&s, &[t]);
        let scc = find_special_sccs(&g);
        assert!(scc.scc_of[1] < scc.scc_of[0], "sink numbered first");
    }

    /// Brute-force special-SCC oracle: Floyd–Warshall reachability, then the
    /// definition directly.
    fn special_sccs_brute(g: &DependencyGraph) -> Vec<Vec<u32>> {
        let n = g.num_nodes();
        let mut reach = vec![vec![false; n]; n];
        for e in g.edges() {
            reach[e.from as usize][e.to as usize] = true;
        }
        for k in 0..n {
            let row_k = reach[k].clone();
            for row in reach.iter_mut() {
                if row[k] {
                    for (cell, &via_k) in row.iter_mut().zip(&row_k) {
                        if via_k {
                            *cell = true;
                        }
                    }
                }
            }
        }
        let same = |i: usize, j: usize| i == j || (reach[i][j] && reach[j][i]);
        let mut assigned = vec![false; n];
        let mut comps: Vec<Vec<u32>> = Vec::new();
        for i in 0..n {
            if assigned[i] {
                continue;
            }
            let mut comp = Vec::new();
            for (j, a) in assigned.iter_mut().enumerate() {
                if !*a && same(i, j) {
                    *a = true;
                    comp.push(j as u32);
                }
            }
            comps.push(comp);
        }
        comps
            .into_iter()
            .filter(|comp| {
                g.edges()
                    .iter()
                    .any(|e| e.special && comp.contains(&e.from) && comp.contains(&e.to))
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        let q = s.add_predicate("q", 1).unwrap();
        let rules = vec![
            Tgd::new(
                vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&s, p, vec![v(1), v(2)]).unwrap()],
            )
            .unwrap(),
            Tgd::new(
                vec![Atom::new(&s, p, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&s, r, vec![v(1), v(0)]).unwrap()],
            )
            .unwrap(),
            Tgd::new(
                vec![Atom::new(&s, p, vec![v(0), v(1)]).unwrap()],
                vec![Atom::new(&s, q, vec![v(0)]).unwrap()],
            )
            .unwrap(),
        ];
        let g = DependencyGraph::build(&s, &rules);
        let scc = find_special_sccs(&g);
        let brute = special_sccs_brute(&g);
        let mut ours: Vec<Vec<u32>> = scc
            .special_sccs()
            .iter()
            .map(|&c| scc.components()[c as usize].clone())
            .collect();
        for c in &mut ours {
            c.sort_unstable();
        }
        let mut brute = brute;
        for c in &mut brute {
            c.sort_unstable();
        }
        ours.sort();
        brute.sort();
        assert_eq!(ours, brute);
    }
}
