//! Subprocess tests of `soct check/chase --trace-out FILE` (ISSUE 9):
//! the Chrome-trace JSON must be schema-valid, and the span tree on a
//! fixed corpus entry at `--threads 1` must be deterministic — same
//! names, same nesting, same completion order on every run.
//!
//! Each test drives the real binary (`CARGO_BIN_EXE_soct`), so the
//! process-global trace collector starts from a clean slate regardless
//! of what other tests in this workspace are doing.

use std::path::{Path, PathBuf};
use std::process::Command;

fn corpus_entry() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus/linear_easy_00.dlog")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("soct_trace_{}_{name}", std::process::id()))
}

/// One `"ph":"X"` complete event, hand-parsed from the trace JSON.
#[derive(Debug, PartialEq)]
struct Event {
    name: String,
    ts: u64,
    dur: u64,
    tid: u64,
    depth: u64,
}

fn field(event: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let rest = &event[event
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {event}"))
        + pat.len()..];
    rest.trim_start_matches('"')
        .split(['"', ',', '}'])
        .next()
        .unwrap()
        .to_string()
}

/// Minimal schema check + parse: the body is a `{"traceEvents":[…]}`
/// object of complete events carrying name/cat/ph/ts/dur/pid/tid.
fn parse_trace(path: &Path) -> Vec<Event> {
    let body = std::fs::read_to_string(path).unwrap();
    assert!(body.starts_with("{\"traceEvents\":["), "bad envelope");
    assert!(body.ends_with("]}"), "bad envelope");
    let inner = &body["{\"traceEvents\":[".len()..body.len() - 2];
    if inner.is_empty() {
        return Vec::new();
    }
    inner
        .split("},{")
        .map(|ev| {
            assert_eq!(field(ev, "ph"), "X", "only complete events: {ev}");
            assert_eq!(field(ev, "cat"), "soct");
            assert_eq!(field(ev, "pid"), "1");
            Event {
                name: field(ev, "name"),
                ts: field(ev, "ts").parse().unwrap(),
                dur: field(ev, "dur").parse().unwrap(),
                tid: field(ev, "tid").parse().unwrap(),
                depth: field(ev, "depth").parse().unwrap(),
            }
        })
        .collect()
}

fn run_check(trace: &Path) {
    let out = Command::new(env!("CARGO_BIN_EXE_soct"))
        .args([
            "check",
            "--rules",
            corpus_entry().to_str().unwrap(),
            "--threads",
            "1",
            "--quiet",
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn check_trace_has_a_deterministic_span_tree() {
    let trace = tmp("check.json");
    run_check(&trace);
    let events = parse_trace(&trace);

    // linear_easy_00 is simple-linear: the checker runs graph → comp →
    // supports under the CLI's outer `check` span. Records are in
    // completion order — children before the parent.
    let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, ["graph", "comp", "supports", "check"]);
    let root = events.last().unwrap();
    assert_eq!(root.depth, 0);
    assert!(root.dur > 0, "the root span spans the whole check");
    for child in &events[..events.len() - 1] {
        assert_eq!(child.depth, 1, "{}", child.name);
        assert_eq!(child.tid, root.tid, "single-threaded run: one tid");
        assert!(child.ts >= root.ts, "{} starts inside the root", child.name);
        assert!(
            child.ts + child.dur <= root.ts + root.dur + 1,
            "{} ends inside the root (1µs rounding slack)",
            child.name
        );
    }
    // Children complete in phase order, back to back.
    for pair in events[..events.len() - 1].windows(2) {
        assert!(pair[0].ts <= pair[1].ts, "{pair:?}");
    }
    std::fs::remove_file(&trace).ok();
}

#[test]
fn check_trace_is_identical_in_shape_across_runs() {
    let (a, b) = (tmp("check_a.json"), tmp("check_b.json"));
    run_check(&a);
    run_check(&b);
    let (ea, eb) = (parse_trace(&a), parse_trace(&b));
    let shape = |evs: &[Event]| -> Vec<(String, u64, u64)> {
        evs.iter()
            .map(|e| (e.name.clone(), e.depth, e.tid))
            .collect()
    };
    assert_eq!(shape(&ea), shape(&eb), "span tree must be deterministic");
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn chase_trace_nests_rounds_under_the_run() {
    let rules = tmp("chase.dlog");
    let facts = tmp("chase.facts");
    std::fs::write(&rules, "r(X, Y) -> r(Y, Z).\n").unwrap();
    std::fs::write(&facts, "r(a, b).\n").unwrap();
    let trace = tmp("chase.json");
    let out = Command::new(env!("CARGO_BIN_EXE_soct"))
        .args([
            "chase",
            "--rules",
            rules.to_str().unwrap(),
            "--db",
            facts.to_str().unwrap(),
            "--max-rounds",
            "3",
            "--threads",
            "1",
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let events = parse_trace(&trace);
    let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(
        names,
        ["chase_round", "chase_round", "chase_round", "chase"],
        "three budgeted rounds inside one engine-run span"
    );
    assert!(events.last().unwrap().dur > 0);
    for f in [rules, facts, trace] {
        std::fs::remove_file(&f).ok();
    }
}
