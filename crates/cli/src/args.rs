//! Minimal command-line argument parsing (no external dependencies).
//!
//! Flags are `--key value` pairs; `parse` collects them after the
//! subcommand name and offers typed accessors with defaults.

use std::collections::BTreeMap;

/// Parsed flags of one invocation.
#[derive(Debug, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parses `--key value` pairs; bare `--key` (no value) stores `"true"`.
    pub fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = BTreeMap::new();
        let mut i = 0;
        while i < raw.len() {
            let k = &raw[i];
            let Some(key) = k.strip_prefix("--") else {
                return Err(format!("expected a --flag, found `{k}`"));
            };
            if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                flags.insert(key.to_string(), raw[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        }
        Ok(Args { flags })
    }

    /// String flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// String flag with default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    /// Numeric flag with default.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .replace('_', "")
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got `{v}`")),
        }
    }

    /// u64 flag with default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        Ok(self.get_usize(key, default as usize)? as u64)
    }

    /// Boolean flag (present or `--key true`).
    pub fn get_bool(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }

    /// Rejects any parsed flag not in `allowed` — a typo like
    /// `--thread 4` must fail loudly instead of silently running
    /// single-threaded. `cmd` names the subcommand for the error message.
    pub fn reject_unknown(&self, cmd: &str, allowed: &[&str]) -> Result<(), String> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                let mut valid: Vec<String> = allowed.iter().map(|f| format!("--{f}")).collect();
                valid.sort_unstable();
                return Err(format!(
                    "unknown flag --{key} for `soct {cmd}` (valid flags: {})",
                    valid.join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let a = Args::parse(&strs(&["--rules", "x.dlog", "--verbose", "--n", "42"])).unwrap();
        assert_eq!(a.get("rules"), Some("x.dlog"));
        assert!(a.get_bool("verbose"));
        assert_eq!(a.get_usize("n", 0).unwrap(), 42);
        assert_eq!(a.get_usize("missing", 7).unwrap(), 7);
    }

    #[test]
    fn rejects_stray_positionals() {
        assert!(Args::parse(&strs(&["oops"])).is_err());
    }

    #[test]
    fn underscores_in_numbers() {
        let a = Args::parse(&strs(&["--n", "1_000_000"])).unwrap();
        assert_eq!(a.get_usize("n", 0).unwrap(), 1_000_000);
    }

    #[test]
    fn require_reports_the_flag_name() {
        let a = Args::parse(&[]).unwrap();
        assert_eq!(a.require("rules").unwrap_err(), "missing --rules");
    }

    #[test]
    fn unknown_flags_are_rejected_with_the_valid_set() {
        let a = Args::parse(&strs(&["--rules", "x.dlog", "--thread", "4"])).unwrap();
        let err = a
            .reject_unknown("check", &["rules", "db", "threads"])
            .unwrap_err();
        assert!(err.contains("--thread"), "{err}");
        assert!(err.contains("soct check"), "{err}");
        assert!(err.contains("--threads"), "{err}");
        assert!(err.contains("--db"), "{err}");
    }

    #[test]
    fn known_flags_pass_the_rejection_check() {
        let a = Args::parse(&strs(&["--rules", "x.dlog", "--threads", "4"])).unwrap();
        assert!(a.reject_unknown("check", &["rules", "threads"]).is_ok());
        assert!(Args::parse(&[])
            .unwrap()
            .reject_unknown("stats", &[])
            .is_ok());
    }

    #[test]
    fn get_bool_edge_cases() {
        // Bare switch stores "true".
        let a = Args::parse(&strs(&["--quiet"])).unwrap();
        assert!(a.get_bool("quiet"));
        // Accepted truthy spellings.
        for v in ["true", "1", "yes"] {
            let a = Args::parse(&strs(&["--quiet", v])).unwrap();
            assert!(a.get_bool("quiet"), "--quiet {v} should be true");
        }
        // Anything else — including falsy spellings and typos — is false.
        for v in ["false", "0", "no", "TRUE", "on", "y"] {
            let a = Args::parse(&strs(&["--quiet", v])).unwrap();
            assert!(!a.get_bool("quiet"), "--quiet {v} should be false");
        }
        // Absent flag is false.
        assert!(!Args::parse(&[]).unwrap().get_bool("quiet"));
        // A bare switch followed by another flag still reads as true.
        let a = Args::parse(&strs(&["--quiet", "--rules", "x"])).unwrap();
        assert!(a.get_bool("quiet"));
        assert_eq!(a.get("rules"), Some("x"));
    }
}
