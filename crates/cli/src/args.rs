//! Minimal command-line argument parsing (no external dependencies).
//!
//! Flags are `--key value` pairs; `parse` collects them after the
//! subcommand name and offers typed accessors with defaults.

use std::collections::BTreeMap;

/// Parsed flags of one invocation.
#[derive(Debug, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parses `--key value` pairs; bare `--key` (no value) stores `"true"`.
    pub fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = BTreeMap::new();
        let mut i = 0;
        while i < raw.len() {
            let k = &raw[i];
            let Some(key) = k.strip_prefix("--") else {
                return Err(format!("expected a --flag, found `{k}`"));
            };
            if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                flags.insert(key.to_string(), raw[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        }
        Ok(Args { flags })
    }

    /// String flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// String flag with default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    /// Numeric flag with default.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .replace('_', "")
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got `{v}`")),
        }
    }

    /// u64 flag with default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        Ok(self.get_usize(key, default as usize)? as u64)
    }

    /// Boolean flag (present or `--key true`).
    pub fn get_bool(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let a = Args::parse(&strs(&["--rules", "x.dlog", "--verbose", "--n", "42"])).unwrap();
        assert_eq!(a.get("rules"), Some("x.dlog"));
        assert!(a.get_bool("verbose"));
        assert_eq!(a.get_usize("n", 0).unwrap(), 42);
        assert_eq!(a.get_usize("missing", 7).unwrap(), 7);
    }

    #[test]
    fn rejects_stray_positionals() {
        assert!(Args::parse(&strs(&["oops"])).is_err());
    }

    #[test]
    fn underscores_in_numbers() {
        let a = Args::parse(&strs(&["--n", "1_000_000"])).unwrap();
        assert_eq!(a.get_usize("n", 0).unwrap(), 1_000_000);
    }

    #[test]
    fn require_reports_the_flag_name() {
        let a = Args::parse(&[]).unwrap();
        assert_eq!(a.require("rules").unwrap_err(), "missing --rules");
    }
}
