//! Subcommand implementations.

use crate::args::Args;
use soct_core::{check_termination_threads, ms, FindShapesMode, Verdict};
use soct_model::{Database, Instance, Interner, Schema, TgdClass};
use soct_storage::InstanceSource;
use std::time::Instant;

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn write_out(args: &Args, content: &str) -> Result<(), String> {
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, content).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            println!("wrote {path} ({} bytes)", content.len());
            Ok(())
        }
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

fn mode_of(args: &Args) -> Result<FindShapesMode, String> {
    args.get_or("mode", "memory")
        .parse()
        .map_err(|e| format!("--{e}"))
}

/// Starts a span-collection session when `--trace-out FILE` is given.
/// Returns the session paired with the target path.
fn trace_session_of(args: &Args) -> Option<(soct_obs::TraceSession, &str)> {
    args.get("trace-out")
        .map(|path| (soct_obs::TraceSession::start(), path))
}

/// Finishes a trace session and writes the Chrome-trace JSON
/// (Perfetto / `chrome://tracing` loadable) to `path`.
fn write_trace(session: soct_obs::TraceSession, path: &str) -> Result<(), String> {
    let records = session.finish();
    let json = soct_obs::chrome_trace_json(&records);
    std::fs::write(path, &json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!("wrote trace {path} ({} spans)", records.len());
    Ok(())
}

/// Loads rules and (optionally) a fact file over one shared vocabulary.
fn load_program(args: &Args) -> Result<(Schema, Interner, Vec<soct_model::Tgd>, Database), String> {
    let rules_path = args.require("rules")?;
    let mut schema = Schema::new();
    let mut consts = Interner::new();
    let tgds = soct_parser::parse_tgds(&read(rules_path)?, &mut schema, &mut consts)
        .map_err(|e| format!("{rules_path}: {e}"))?;
    let db = match args.get("db") {
        Some(db_path) => soct_parser::parse_facts(&read(db_path)?, &mut schema, &mut consts)
            .map_err(|e| format!("{db_path}: {e}"))?,
        // D_Σ (Remark 1): one atom per predicate, distinct constants.
        None => soct_serve::critical_instance(&schema, &tgds, &mut consts),
    };
    Ok((schema, consts, tgds, db))
}

/// Worker-thread count: `--threads N`, default `0` = auto (the
/// `SOCT_THREADS` environment variable, else the machine's available
/// parallelism).
fn threads_of(args: &Args) -> Result<usize, String> {
    args.get_usize("threads", 0)
}

/// `soct check`.
pub fn check(args: &Args) -> Result<(), String> {
    let (schema, _consts, tgds, db) = load_program(args)?;
    let mode = mode_of(args)?;
    let threads = threads_of(args)?;
    let class = soct_model::tgd::classify(&tgds);
    let trace = trace_session_of(args);
    let t0 = Instant::now();
    let report = {
        let _span = soct_obs::span("check");
        check_termination_threads(&schema, &tgds, &db, mode, threads)
    };
    let elapsed = t0.elapsed();
    if let Some((session, path)) = trace {
        write_trace(session, path)?;
    }
    println!(
        "class: {class}  rules: {}  db-atoms: {}",
        tgds.len(),
        db.len()
    );
    match report.verdict {
        Verdict::Finite => println!("verdict: FINITE (chase terminates)"),
        Verdict::Infinite => println!("verdict: INFINITE (chase does not terminate)"),
        Verdict::Unknown => println!(
            "verdict: UNKNOWN (general TGDs: not D-weakly-acyclic; \
             termination is undecidable in general)"
        ),
    }
    println!("time: {:.3} ms", ms(elapsed));
    if args.get_bool("quiet") {
        return Ok(());
    }
    // Detailed breakdown for the linear classes.
    match class {
        TgdClass::SimpleLinear => {
            let db_preds: soct_model::FxHashSet<_> =
                db.non_empty_predicates().into_iter().collect();
            let rep = soct_core::is_chase_finite_sl(&schema, &tgds, &db_preds);
            println!(
                "breakdown: t-graph {:.3} ms | t-comp {:.3} ms | t-supports {:.3} ms \
                 | graph {} nodes / {} edges ({} special) | special SCCs: {}",
                ms(rep.timings.t_graph),
                ms(rep.timings.t_comp),
                ms(rep.timings.t_supports),
                rep.graph_nodes,
                rep.graph_edges,
                rep.special_edges,
                rep.num_special_sccs
            );
        }
        TgdClass::Linear => {
            let src = InstanceSource::new(&schema, &db);
            let rep = soct_core::is_chase_finite_l_parallel(&schema, &tgds, &src, mode, threads);
            println!(
                "breakdown: t-shapes {:.3} ms | t-graph {:.3} ms | t-comp {:.3} ms \
                 | db-shapes {} | derived shapes {} | simplified rules {}",
                ms(rep.timings.t_shapes),
                ms(rep.timings.t_graph),
                ms(rep.timings.t_comp),
                rep.n_db_shapes,
                rep.shapes_derived,
                rep.n_simplified_tgds
            );
        }
        TgdClass::General => {}
    }
    Ok(())
}

/// `soct chase`.
pub fn chase(args: &Args) -> Result<(), String> {
    let (schema, consts, tgds, db) = load_program(args)?;
    let variant: soct_chase::ChaseVariant = args
        .get_or("variant", "so")
        .parse()
        .map_err(|e| format!("--{e}"))?;
    let cfg = soct_chase::ChaseConfig {
        variant,
        max_atoms: args.get_usize("max-atoms", 1_000_000)?,
        max_rounds: args.get_usize("max-rounds", usize::MAX)?,
        threads: threads_of(args)?,
    };
    // `--backend memory` chases over the in-memory columnar store;
    // `--backend storage` loads the database into the embedded storage
    // engine first and chases it there, writing derived atoms back to the
    // engine's tables (the paper's in-database mode).
    let trace = trace_session_of(args);
    let t0 = Instant::now();
    let (res, pages) = match args.get_or("backend", "memory") {
        "memory" | "mem" => (soct_chase::run_chase_columnar(&db, &tgds, &cfg), None),
        "storage" | "db" => {
            let mut engine = soct_storage::StorageEngine::new();
            engine.load_instance(&schema, &db);
            let res = soct_chase::run_chase_on_engine(&schema, &mut engine, &tgds, &cfg);
            let pages: usize = engine.tables().map(|(_, t)| t.page_count()).sum();
            let tables = engine.tables().count();
            (res, Some((pages, tables)))
        }
        other => return Err(format!("--backend must be memory|storage, got `{other}`")),
    };
    let elapsed = t0.elapsed();
    if let Some((session, path)) = trace {
        write_trace(session, path)?;
    }
    println!(
        "outcome: {:?}  rounds: {} ({} parallel)  atoms: {} ({} derived)  triggers: {}  nulls: {}  time: {:.3} ms",
        res.outcome,
        res.rounds,
        res.parallel_rounds,
        res.store.len(),
        res.derived_atoms(db.len()),
        res.triggers_applied,
        res.nulls_created,
        ms(elapsed)
    );
    if let Some((pages, tables)) = pages {
        println!("storage: {pages} pages across {tables} tables");
    }
    if args.get("out").is_some() {
        let rendered = soct_parser::write_facts(&res.store.to_instance(), &schema, &consts);
        write_out(args, &rendered)?;
    }
    Ok(())
}

/// `soct shapes`.
pub fn shapes(args: &Args) -> Result<(), String> {
    let db_path = args.require("db")?;
    let mut schema = Schema::new();
    let mut consts = Interner::new();
    let db = soct_parser::parse_facts(&read(db_path)?, &mut schema, &mut consts)
        .map_err(|e| format!("{db_path}: {e}"))?;
    let mode = mode_of(args)?;
    let src = InstanceSource::new(&schema, &db);
    let t0 = Instant::now();
    let rep = soct_core::find_shapes_parallel(&src, mode, threads_of(args)?);
    let elapsed = t0.elapsed();
    println!(
        "{} shapes in {} atoms ({:.3} ms, mode {:?})",
        rep.shapes.len(),
        db.len(),
        ms(elapsed),
        mode
    );
    for s in &rep.shapes {
        println!("  {}_{}", schema.name(s.pred), s.rgs);
    }
    if mode == FindShapesMode::InDatabase {
        println!(
            "queries: {} relaxed, {} exact, {} pruned lattice nodes",
            rep.stats.relaxed_queries, rep.stats.exact_queries, rep.stats.pruned_nodes
        );
    }
    Ok(())
}

/// `soct stats`.
pub fn stats(args: &Args) -> Result<(), String> {
    let rules_path = args.require("rules")?;
    let mut schema = Schema::new();
    let mut consts = Interner::new();
    let t0 = Instant::now();
    let tgds = soct_parser::parse_tgds(&read(rules_path)?, &mut schema, &mut consts)
        .map_err(|e| format!("{rules_path}: {e}"))?;
    let t_parse = t0.elapsed();
    let class = soct_model::tgd::classify(&tgds);
    let graph = soct_graph::DependencyGraph::build(&schema, &tgds);
    let scc = soct_graph::find_special_sccs(&graph);
    println!(
        "rules: {}  class: {class}  predicates: {}  positions: {}",
        tgds.len(),
        schema.len(),
        schema.num_positions()
    );
    println!(
        "dependency graph: {} nodes, {} edges ({} special), {} SCCs ({} special)",
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_special_edges(),
        scc.num_sccs,
        scc.special_sccs().len()
    );
    println!(
        "weakly acyclic: {}  t-parse: {:.3} ms",
        !scc.has_special_scc(),
        ms(t_parse)
    );
    Ok(())
}

/// `soct generate-tgds`.
pub fn generate_tgds(args: &Args) -> Result<(), String> {
    let ssize = args.get_usize("ssize", 50)?;
    let tsize = args.get_usize("tsize", 1000)?;
    let min = args.get_usize("min", 1)?;
    let max = args.get_usize("max", 5)?;
    let seed = args.get_u64("seed", 42)?;
    let tclass = match args.get_or("class", "sl") {
        "sl" => TgdClass::SimpleLinear,
        "l" | "linear" => TgdClass::Linear,
        other => return Err(format!("--class must be sl|l, got `{other}`")),
    };
    let mut schema = Schema::new();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let pool =
        soct_gen::datagen::make_predicates(&mut schema, "p", ssize.max(10) * 2, min, max, &mut rng);
    let cfg = soct_gen::TgdGenConfig {
        ssize,
        min_arity: min,
        max_arity: max,
        tsize,
        tclass,
        existential_prob: 0.1,
        seed,
    };
    let tgds = soct_gen::generate_tgds(&cfg, &schema, &pool);
    let consts = Interner::new();
    let rendered = soct_parser::write_tgds(&tgds, &schema, &consts);
    write_out(args, &rendered)
}

/// `soct gen`: the scenario foundry — difficulty-calibrated, deduplicated,
/// byte-deterministic workloads, plus corpus maintenance (`--corpus` to
/// (re)write the standard corpus, `--check-corpus` as the CI drift gate).
pub fn gen(args: &Args) -> Result<(), String> {
    if let Some(dir) = args.get("check-corpus") {
        let drift = soct_gen::check_corpus(std::path::Path::new(dir))?;
        if drift.is_empty() {
            let n = soct_gen::load_manifest(std::path::Path::new(dir))?.len();
            println!("corpus {dir}: {n} entries, no drift");
            return Ok(());
        }
        for d in &drift {
            eprintln!("drift: {d}");
        }
        return Err(format!("corpus {dir}: {} entries drifted", drift.len()));
    }
    if let Some(dir) = args.get("corpus") {
        let seed = args.get_u64("seed", soct_gen::CORPUS_SEED)?;
        let n = soct_gen::write_corpus(std::path::Path::new(dir), seed)?;
        println!(
            "wrote corpus {dir}: {n} rulesets + {} (seed {seed})",
            soct_gen::MANIFEST
        );
        return Ok(());
    }
    let family: soct_gen::Family = args
        .get_or("family", "linear")
        .parse()
        .map_err(|e| format!("--{e}"))?;
    let difficulty: soct_gen::Difficulty = args
        .get_or("difficulty", "easy")
        .parse()
        .map_err(|e| format!("--{e}"))?;
    let seed = args.get_u64("seed", 42)?;
    let count = args.get_usize("count", 1)?;
    let cfg = soct_gen::FoundryConfig {
        family,
        difficulty,
        seed,
        count,
    };
    let rulesets = soct_gen::foundry::generate(&cfg)?;
    if let Some(dir) = args.get("out-dir") {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create `{}`: {e}", dir.display()))?;
        for (i, r) in rulesets.iter().enumerate() {
            let name = soct_gen::corpus::entry_file_name(family, difficulty, i);
            std::fs::write(dir.join(&name), &r.text)
                .map_err(|e| format!("cannot write `{name}`: {e}"))?;
            println!(
                "{name}: rules {} fp {:032x} verdict {}",
                r.tgds.len(),
                r.fingerprint.0,
                soct_gen::verdict_name(r.verdict)
            );
        }
        return Ok(());
    }
    let mut rendered = String::new();
    for r in &rulesets {
        rendered.push_str(&format!(
            "# family={} difficulty={} subseed={} fingerprint={:032x} verdict={}\n",
            r.family,
            r.difficulty,
            r.subseed,
            r.fingerprint.0,
            soct_gen::verdict_name(r.verdict)
        ));
        rendered.push_str(&r.text);
    }
    write_out(args, &rendered)
}

/// `soct generate-data`.
pub fn generate_data(args: &Args) -> Result<(), String> {
    let cfg = soct_gen::DataGenConfig {
        preds: args.get_usize("preds", 10)?,
        min_arity: args.get_usize("min", 1)?,
        max_arity: args.get_usize("max", 5)?,
        dsize: args.get_usize("dsize", 1000)?,
        rsize: args.get_usize("rsize", 100)?,
        seed: args.get_u64("seed", 42)?,
    };
    let mut schema = Schema::new();
    let (_preds, inst) = soct_gen::generate_instance(&cfg, &mut schema);
    let rendered = render_generated_facts(&schema, &inst);
    write_out(args, &rendered)
}

/// `soct serve`: run the termination-checking service until killed (or,
/// on Unix, until SIGTERM/SIGINT triggers a graceful drain: stop
/// accepting, finish in-flight work, persist the cache, checkpoint and
/// flush the WAL).
pub fn serve(args: &Args) -> Result<(), String> {
    let host = args.get_or("host", "127.0.0.1");
    let port = args.get_usize("port", 7171)?;
    let workers = soct_chase::resolve_threads(threads_of(args)?);
    let wal = args.get_bool("wal");
    let wal_sync: soct_storage::SyncPolicy = args.get_or("wal-sync", "always").parse()?;
    if args.get("wal-sync").is_some() && !wal {
        return Err("--wal-sync requires --wal".to_string());
    }
    if args.get("db-seed").is_some() && !wal {
        return Err("--db-seed requires --wal (without it, --db is itself the facts file)".into());
    }
    if wal && args.get("db").is_none() {
        return Err("--wal requires --db DIR (the durable database directory)".to_string());
    }
    let cfg = soct_serve::ServiceConfig {
        mode: mode_of(args)?,
        check_threads: 1,
        cache_capacity: args.get_usize("cache-cap", 1 << 16)?,
        cache_dir: args.get("cache-dir").map(std::path::PathBuf::from),
        max_chase_atoms: args.get_usize("max-atoms", 1_000_000)?,
        db_path: args.get("db").map(std::path::PathBuf::from),
        wal,
        wal_sync,
        db_seed: args.get("db-seed").map(std::path::PathBuf::from),
    };
    let persisted = cfg.cache_dir.is_some();
    let live_db = cfg.db_path.clone();
    let service = std::sync::Arc::new(
        soct_serve::TerminationService::new(cfg)
            .map_err(|e| format!("cannot initialise service: {e}"))?,
    );
    let warm = service.cache().len();
    let server_cfg = soct_serve::ServerConfig {
        workers,
        queue_depth: args.get_usize("queue-depth", 256)?,
        deadline: std::time::Duration::from_millis(args.get_u64("deadline-ms", 10_000)?),
        max_connections: args.get_usize("max-conns", 1024)?,
        ..soct_serve::ServerConfig::default()
    };
    let (queue_depth, deadline) = (server_cfg.queue_depth, server_cfg.deadline);
    let server =
        soct_serve::Server::bind_with(format!("{host}:{port}"), service.clone(), server_cfg)
            .map_err(|e| format!("cannot bind {host}:{port}: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "soct serve: listening on {addr} ({workers} worker threads, queue depth {queue_depth}, \
         async deadline {deadline:?}, {} cache{})",
        if persisted { "persistent" } else { "in-memory" },
        if warm > 0 {
            format!(", {warm} verdicts warm")
        } else {
            String::new()
        }
    );
    if let Some(path) = live_db {
        if wal {
            println!(
                "soct serve: durable live database at {} (write-ahead log, sync {wal_sync}; \
                 POST /db/insert, POST /db/delete, POST /db/batch, GET /db/stats, /check?db=live)",
                path.display()
            );
        } else {
            println!(
                "soct serve: resident live database loaded from {} \
                 (POST /db/insert, POST /db/delete, POST /db/batch, GET /db/stats, /check?db=live)",
                path.display()
            );
        }
    }
    soct_serve::install_shutdown_signal();
    let handle = server.start().map_err(|e| e.to_string())?;
    // Park until a shutdown signal arrives. The reactor owns the
    // sockets; this thread only watches the flag the handler sets.
    while !soct_serve::shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    println!("soct serve: shutdown signal received, draining");
    handle.shutdown();
    service.shutdown();
    println!("soct serve: drained and checkpointed, bye");
    Ok(())
}

/// `soct client <check|shapes|chase|stats|job|insert|delete|batch|db-stats>`:
/// one request against a running service; prints the JSON response.
/// `--expect VERDICT`, `--expect-cached`, and (for writes)
/// `--expect-fp-changed true|false` turn the invocation into an assertion
/// (non-zero exit on mismatch) for CI and smoke tests. `check --async`
/// submits via the job queue (`202 Accepted`); add `--wait` to poll the
/// job to completion (assertions then run against the finished job's
/// body). `job --id N [--wait]` polls an already-submitted job.
/// `check --live` checks the body's rules against the server's resident
/// database; `insert`/`delete` stream line-oriented facts to it, and
/// `batch` sends one mixed insert/delete batch (`- r(a,b).` lines
/// delete) applied as a single WAL record.
pub fn client(sub: &str, args: &Args) -> Result<(), String> {
    let addr = args.get_or("addr", "127.0.0.1:7171");
    let client = soct_serve::Client::new(addr);
    let timeout = std::time::Duration::from_millis(args.get_u64("timeout-ms", 60_000)?);
    let resp = match sub {
        "check" => {
            let mut params: Vec<String> = Vec::new();
            if args.get_bool("live") {
                params.push("db=live".to_string());
            }
            if let Some(mode) = args.get("mode") {
                params.push(format!("mode={mode}"));
            }
            let mut path = "/check".to_string();
            if !params.is_empty() {
                path.push('?');
                path.push_str(&params.join("&"));
            }
            // With --live the resident database is the instance; a --db
            // facts file would be silently ignored, so refuse the combination.
            let body = if args.get_bool("live") {
                if args.get("db").is_some() {
                    return Err("--live checks the resident database; drop --db".to_string());
                }
                read(args.require("rules")?)?
            } else {
                program_text(args)?
            };
            if args.get_bool("async") {
                let id = client
                    .post_async(&path, &body)
                    .map_err(|e| format!("request to {addr} failed: {e}"))?;
                if !args.get_bool("wait") {
                    println!("{{\"job\":{id},\"poll\":\"/jobs/{id}\"}}");
                    return Ok(());
                }
                client.wait_job(id, timeout).map(check_job_done)
            } else {
                client.post(&path, &body)
            }
        }
        "job" => {
            let id: u64 = args
                .require("id")?
                .parse()
                .map_err(|_| "--id expects a job id".to_string())?;
            if args.get_bool("wait") {
                client.wait_job(id, timeout).map(check_job_done)
            } else {
                client.job(id)
            }
        }
        "shapes" => {
            let mut path = "/shapes".to_string();
            if let Some(mode) = args.get("mode") {
                path.push_str(&format!("?mode={mode}"));
            }
            let db_path = args.require("db")?;
            client.post(&path, &read(db_path)?)
        }
        "chase" => {
            let mut path = format!("/chase?variant={}", args.get_or("variant", "so"));
            if let Some(n) = args.get("max-atoms") {
                path.push_str(&format!("&max-atoms={n}"));
            }
            client.post(&path, &program_text(args)?)
        }
        "stats" => client.get("/stats"),
        "insert" | "delete" | "batch" => client.post(&format!("/db/{sub}"), &facts_text(args)?),
        "db-stats" => client.get("/db/stats"),
        other => {
            return Err(format!(
                "unknown client subcommand `{other}` \
                 (try check|shapes|chase|stats|job|insert|delete|batch|db-stats)"
            ))
        }
    }
    .map_err(|e| format!("request to {addr} failed: {e}"))?;
    println!("{}", resp.body);
    if !resp.is_ok() {
        return Err(format!("server answered status {}", resp.status));
    }
    if let Some(expected) = args.get("expect") {
        let got = soct_serve::get_field(&resp.body, "verdict").unwrap_or("<none>");
        if got != expected {
            return Err(format!("expected verdict `{expected}`, got `{got}`"));
        }
    }
    if args.get_bool("expect-cached") && soct_serve::get_field(&resp.body, "cached") != Some("true")
    {
        return Err("expected a cache hit, got a miss".to_string());
    }
    if let Some(expected) = args.get("expect-fp-changed") {
        let got = soct_serve::get_field(&resp.body, "shape_fp_changed").unwrap_or("<none>");
        if got != expected {
            return Err(format!("expected shape_fp_changed={expected}, got {got}"));
        }
    }
    Ok(())
}

/// Request body for client insert/delete/batch: `--tuples 'r(a,b).'`
/// inline, or `--facts FILE` for a batch file of line-oriented facts
/// (for `batch`, lines starting with `-` are deletes).
fn facts_text(args: &Args) -> Result<String, String> {
    match (args.get("tuples"), args.get("facts")) {
        (Some(t), None) => Ok(t.to_string()),
        (None, Some(path)) => read(path),
        (None, None) => Err("provide --tuples 'r(a,b).' or --facts FILE".to_string()),
        (Some(_), Some(_)) => Err("--tuples and --facts are mutually exclusive".to_string()),
    }
}

/// Adopts a finished job's inner request status as the response status,
/// so `--expect`-style assertions and the non-2xx exit path act on the
/// job's actual outcome rather than the `/jobs/<id>` envelope's 200.
fn check_job_done(resp: soct_serve::Response) -> soct_serve::Response {
    if resp.status == 200 && soct_serve::get_field(&resp.body, "state") == Some("done") {
        if let Some(inner) =
            soct_serve::get_field(&resp.body, "status").and_then(|s| s.parse().ok())
        {
            return soct_serve::Response {
                status: inner,
                body: resp.body,
            };
        }
    }
    resp
}

/// Request body for client check/chase: the rules file, with the facts
/// file appended when given (the service parses one program text).
fn program_text(args: &Args) -> Result<String, String> {
    let mut text = read(args.require("rules")?)?;
    if let Some(db_path) = args.get("db") {
        if !text.ends_with('\n') {
            text.push('\n');
        }
        text.push_str(&read(db_path)?);
    }
    Ok(text)
}

/// Renders generated facts with synthetic constant names `c{i}` (the
/// generator works on raw constant ids without an interner).
fn render_generated_facts(schema: &Schema, inst: &Instance) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(inst.len() * 24);
    for atom in inst.atoms() {
        out.push_str(schema.name(atom.pred));
        out.push('(');
        for (i, t) in atom.terms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "c{}", t.raw());
        }
        out.push_str(").\n");
    }
    out
}
