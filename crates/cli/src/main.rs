//! `soct` — semi-oblivious chase termination toolkit.
//!
//! ```text
//! soct check          --rules FILE [--db FILE] [--mode memory|db] [--threads N]
//! soct chase          --rules FILE --db FILE [--variant so|oblivious|restricted]
//!                     [--max-atoms N] [--threads N] [--out FILE]
//! soct shapes         --db FILE [--mode memory|db] [--threads N]
//! soct stats          --rules FILE
//! soct generate-tgds  --ssize N --tsize N [--class sl|l] [--seed N] [--out FILE]
//! soct generate-data  [--preds N] [--min N] [--max N] [--dsize N] [--rsize N]
//!                     [--seed N] [--out FILE]
//! ```
//!
//! `--threads 0` (the default) auto-sizes the worker pool from the
//! `SOCT_THREADS` environment variable or the machine's available
//! parallelism; results never depend on the thread count.

mod args;
mod commands;

use args::Args;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("soct: {e}");
            2
        }
    };
    std::process::exit(code);
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        print_usage();
        return Ok(());
    };
    let args = Args::parse(&argv[1..])?;
    match cmd.as_str() {
        "check" => commands::check(&args),
        "chase" => commands::chase(&args),
        "shapes" => commands::shapes(&args),
        "stats" => commands::stats(&args),
        "generate-tgds" => commands::generate_tgds(&args),
        "generate-data" => commands::generate_data(&args),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `soct help`)")),
    }
}

fn print_usage() {
    println!(
        "soct — semi-oblivious chase termination for linear existential rules

USAGE:
  soct check          --rules FILE [--db FILE] [--mode memory|db] [--threads N]
                      decide whether chase(D, Σ) is finite
  soct chase          --rules FILE --db FILE [--variant so|oblivious|restricted]
                      [--max-atoms N] [--max-rounds N] [--threads N] [--out FILE]
                      materialise the chase
  soct shapes         --db FILE [--mode memory|db] [--threads N]
                      list the database shapes
  soct stats          --rules FILE
                      rule-set statistics and dependency-graph profile
  soct generate-tgds  --ssize N --tsize N [--class sl|l] [--min N] [--max N]
                      [--seed N] [--out FILE]
  soct generate-data  [--preds N] [--min N] [--max N] [--dsize N] [--rsize N]
                      [--seed N] [--out FILE]

Rule files use `body -> head.` / `head :- body.` syntax with implicit
existentials; fact files hold `r(a,b).` lines. `--threads 0` (default)
auto-sizes the worker pool (SOCT_THREADS env, else available cores);
results never depend on the thread count."
    );
}
