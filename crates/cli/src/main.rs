//! `soct` — semi-oblivious chase termination toolkit.
//!
//! ```text
//! soct check          --rules FILE [--db FILE] [--mode memory|db] [--threads N]
//!                     [--trace-out FILE]
//! soct chase          --rules FILE --db FILE [--variant so|oblivious|restricted]
//!                     [--max-atoms N] [--threads N] [--out FILE] [--trace-out FILE]
//! soct shapes         --db FILE [--mode memory|db] [--threads N]
//! soct stats          --rules FILE
//! soct gen            [--family F] [--difficulty T] [--seed N] [--count N]
//!                     [--out FILE | --out-dir DIR] | --corpus DIR | --check-corpus DIR
//! soct generate-tgds  --ssize N --tsize N [--class sl|l] [--seed N] [--out FILE]
//! soct generate-data  [--preds N] [--min N] [--max N] [--dsize N] [--rsize N]
//!                     [--seed N] [--out FILE]
//! soct serve          [--port N] [--host ADDR] [--threads N] [--cache-dir PATH]
//!                     [--cache-cap N] [--mode memory|db] [--max-atoms N]
//!                     [--queue-depth N] [--deadline-ms N] [--max-conns N]
//!                     [--db FACTS-FILE | --db DIR --wal [--wal-sync always|batch|off]
//!                     [--db-seed FACTS-FILE]]
//! soct client         <check|shapes|chase|stats|job|insert|delete|batch|db-stats>
//!                     [--addr HOST:PORT] ...
//! ```
//!
//! `--threads 0` (the default) auto-sizes the worker pool from the
//! `SOCT_THREADS` environment variable or the machine's available
//! parallelism; results never depend on the thread count. Unknown flags
//! are rejected with the valid set for the subcommand.

mod args;
mod commands;

use args::Args;

/// Valid flags per subcommand — `Args::reject_unknown` turns typos into
/// errors instead of silently ignored settings.
const CHECK_FLAGS: &[&str] = &["rules", "db", "mode", "threads", "quiet", "trace-out"];
const CHASE_FLAGS: &[&str] = &[
    "rules",
    "db",
    "variant",
    "max-atoms",
    "max-rounds",
    "threads",
    "out",
    "backend",
    "trace-out",
];
const SHAPES_FLAGS: &[&str] = &["db", "mode", "threads"];
const STATS_FLAGS: &[&str] = &["rules"];
const GEN_TGDS_FLAGS: &[&str] = &["ssize", "tsize", "min", "max", "class", "seed", "out"];
const GEN_FLAGS: &[&str] = &[
    "family",
    "difficulty",
    "seed",
    "count",
    "out",
    "out-dir",
    "corpus",
    "check-corpus",
];
const GEN_DATA_FLAGS: &[&str] = &["preds", "min", "max", "dsize", "rsize", "seed", "out"];
const SERVE_FLAGS: &[&str] = &[
    "port",
    "host",
    "threads",
    "cache-dir",
    "cache-cap",
    "mode",
    "max-atoms",
    "queue-depth",
    "deadline-ms",
    "max-conns",
    "db",
    "wal",
    "wal-sync",
    "db-seed",
];
const CLIENT_CHECK_FLAGS: &[&str] = &[
    "addr",
    "rules",
    "db",
    "live",
    "mode",
    "expect",
    "expect-cached",
    "async",
    "wait",
    "timeout-ms",
];
const CLIENT_WRITE_FLAGS: &[&str] = &["addr", "tuples", "facts", "expect-fp-changed"];
const CLIENT_DB_STATS_FLAGS: &[&str] = &["addr"];
const CLIENT_SHAPES_FLAGS: &[&str] = &["addr", "db", "mode"];
const CLIENT_CHASE_FLAGS: &[&str] = &["addr", "rules", "db", "variant", "max-atoms"];
const CLIENT_STATS_FLAGS: &[&str] = &["addr"];
const CLIENT_JOB_FLAGS: &[&str] = &[
    "addr",
    "id",
    "wait",
    "timeout-ms",
    "expect",
    "expect-cached",
];

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("soct: {e}");
            2
        }
    };
    std::process::exit(code);
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        print_usage();
        return Ok(());
    };
    if cmd == "client" {
        let Some(sub) = argv.get(1) else {
            return Err(
                "usage: soct client <check|shapes|chase|stats|job|insert|delete|batch|db-stats> \
                 [--addr HOST:PORT] ..."
                    .to_string(),
            );
        };
        let args = Args::parse(&argv[2..])?;
        let allowed = match sub.as_str() {
            "check" => CLIENT_CHECK_FLAGS,
            "shapes" => CLIENT_SHAPES_FLAGS,
            "chase" => CLIENT_CHASE_FLAGS,
            "stats" => CLIENT_STATS_FLAGS,
            "job" => CLIENT_JOB_FLAGS,
            "insert" | "delete" | "batch" => CLIENT_WRITE_FLAGS,
            "db-stats" => CLIENT_DB_STATS_FLAGS,
            other => {
                return Err(format!(
                    "unknown client subcommand `{other}` \
                     (try check|shapes|chase|stats|job|insert|delete|batch|db-stats)"
                ))
            }
        };
        args.reject_unknown(&format!("client {sub}"), allowed)?;
        return commands::client(sub, &args);
    }
    let args = Args::parse(&argv[1..])?;
    match cmd.as_str() {
        "check" => {
            args.reject_unknown("check", CHECK_FLAGS)?;
            commands::check(&args)
        }
        "chase" => {
            args.reject_unknown("chase", CHASE_FLAGS)?;
            commands::chase(&args)
        }
        "shapes" => {
            args.reject_unknown("shapes", SHAPES_FLAGS)?;
            commands::shapes(&args)
        }
        "stats" => {
            args.reject_unknown("stats", STATS_FLAGS)?;
            commands::stats(&args)
        }
        "gen" => {
            args.reject_unknown("gen", GEN_FLAGS)?;
            commands::gen(&args)
        }
        "generate-tgds" => {
            args.reject_unknown("generate-tgds", GEN_TGDS_FLAGS)?;
            commands::generate_tgds(&args)
        }
        "generate-data" => {
            args.reject_unknown("generate-data", GEN_DATA_FLAGS)?;
            commands::generate_data(&args)
        }
        "serve" => {
            args.reject_unknown("serve", SERVE_FLAGS)?;
            commands::serve(&args)
        }
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `soct help`)")),
    }
}

fn print_usage() {
    println!(
        "soct — semi-oblivious chase termination for linear existential rules

USAGE:
  soct check          --rules FILE [--db FILE] [--mode memory|db] [--threads N]
                      [--trace-out FILE]
                      decide whether chase(D, Σ) is finite
  soct chase          --rules FILE --db FILE [--variant so|oblivious|restricted]
                      [--max-atoms N] [--max-rounds N] [--threads N] [--out FILE]
                      [--trace-out FILE]
                      materialise the chase
  soct shapes         --db FILE [--mode memory|db] [--threads N]
                      list the database shapes
  soct stats          --rules FILE
                      rule-set statistics and dependency-graph profile
  soct gen            [--family linear|multi-head|sticky|guarded|ontology]
                      [--difficulty trivial|easy|medium|hard] [--seed N]
                      [--count N] [--out FILE | --out-dir DIR]
                      scenario foundry: difficulty-calibrated, deduplicated
                      rulesets, byte-deterministic per seed;
                      --corpus DIR regenerates the standard corpus,
                      --check-corpus DIR is the CI drift gate
  soct generate-tgds  --ssize N --tsize N [--class sl|l] [--min N] [--max N]
                      [--seed N] [--out FILE]
  soct generate-data  [--preds N] [--min N] [--max N] [--dsize N] [--rsize N]
                      [--seed N] [--out FILE]
  soct serve          [--port N] [--host ADDR] [--threads N] [--cache-dir PATH]
                      [--cache-cap N] [--mode memory|db] [--max-atoms N]
                      [--queue-depth N] [--deadline-ms N] [--max-conns N]
                      [--db FACTS-FILE | --db DIR --wal
                       [--wal-sync always|batch|off] [--db-seed FACTS-FILE]]
                      run the termination-checking service (POST /check,
                      POST /shapes, POST /chase, GET /stats, GET /jobs/<id>);
                      keep-alive HTTP/1.1, bounded job queue (429 + Retry-After
                      when full), checks exceeding --deadline-ms answer
                      202 Accepted with a pollable job id; verdicts are
                      cached by canonical ruleset/shape fingerprints.
                      --db loads a resident writable database (shape tracking
                      on) served via POST /db/insert, POST /db/delete,
                      POST /db/batch, GET /db/stats, and /check?db=live;
                      with --wal, --db names a durable directory: writes are
                      logged (checksummed, segment-rotated WAL) before they
                      are acknowledged, restart recovers snapshot + log, and
                      SIGTERM drains, checkpoints, and flushes cleanly;
                      --db-seed seeds a new directory from a facts file
  soct client         <check|shapes|chase|stats|job|insert|delete|batch|db-stats>
                      [--addr HOST:PORT] [--rules FILE] [--db FILE]
                      [--expect VERDICT] [--expect-cached] [--async] [--wait]
                      [--timeout-ms N]
                      — exercise a running service; `job --id N [--wait]`
                      polls an async job; `check --live` checks rules against
                      the server's resident database; `insert|delete|batch`
                      (--tuples 'r(a,b).' | --facts FILE)
                      [--expect-fp-changed true|false] stream writes to it
                      (batch: `- r(a,b).` lines delete, one WAL record);
                      `db-stats` prints its counters and fingerprints

Rule files use `body -> head.` / `head :- body.` syntax with implicit
existentials; fact files hold `r(a,b).` lines. `--threads 0` (default)
auto-sizes the worker pool (SOCT_THREADS env, else available cores);
results never depend on the thread count. `--trace-out FILE` writes a
Chrome-trace JSON of the run's spans (loadable in Perfetto or
chrome://tracing); SOCT_LOG=debug turns on key=value stderr logging."
    );
}
