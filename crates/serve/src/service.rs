//! The in-process service: routing, request handling, and the verdict
//! cache — everything the HTTP layer does *except* sockets, so tests and
//! benchmarks can exercise the full request path without binding a port.

use crate::json::JsonObject;
use soct_chase::{run_chase_columnar, ChaseConfig, ChaseOutcome, ChaseVariant};
use soct_core::{
    check_termination_cached, check_termination_live, find_shapes_parallel, FindShapesMode,
    Verdict, VerdictCache,
};
use soct_model::{
    Atom, ConstId, Database, FxHashMap, Interner, PredId, Schema, SymbolId, Term, Tgd, TgdClass,
};
use soct_obs::PromText;
use soct_parser::{parse_facts, Program};
use soct_storage::{
    InstanceSource, RealIo, RecoveryReport, StorageEngine, SyncPolicy, TupleSource, Wal, WalEntry,
};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// File name of the persisted verdict cache inside `cache_dir`.
pub const CACHE_FILE: &str = "verdicts.soctvc";

/// Below this many cached entries, every miss persists immediately (a
/// small file write); above it, writes batch to bound the O(cache) cost.
const PERSIST_IMMEDIATE_LIMIT: usize = 4096;

/// Batch size for persistence once the cache is past
/// [`PERSIST_IMMEDIATE_LIMIT`]: at most one full rewrite per this many
/// newly computed verdicts. At worst the last `PERSIST_BATCH - 1`
/// verdicts are lost on a crash — recomputable by definition.
const PERSIST_BATCH: u64 = 64;

/// Replay debt at which the write path takes a checkpoint: once this
/// many WAL bytes accumulate since the last snapshot, the next write
/// compacts them so restart cost stays bounded.
const WAL_CHECKPOINT_BYTES: u64 = 32 << 20;

/// Configuration of a [`TerminationService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// `FindShapes` mode used by the linear checker.
    pub mode: FindShapesMode,
    /// Worker threads for the db-dependent phase of one check (`0` =
    /// auto, as in [`soct_chase::resolve_threads`]). The default of `1`
    /// keeps each request single-threaded — concurrency comes from the
    /// HTTP worker pool serving requests in parallel.
    pub check_threads: usize,
    /// LRU bound of the verdict cache (entries).
    pub cache_capacity: usize,
    /// When set, the verdict cache is loaded from
    /// `cache_dir/verdicts.soctvc` at startup and re-written after newly
    /// computed verdicts, so restarts start warm. Writes are immediate
    /// while the cache is small and batched (one snapshot per 64 misses)
    /// once it grows, bounding the per-miss serialisation cost.
    pub cache_dir: Option<PathBuf>,
    /// Hard ceiling on the atom budget a `/chase` request may ask for.
    pub max_chase_atoms: usize,
    /// When set, a resident live database is served through
    /// `POST /db/insert`, `POST /db/delete`, `POST /db/batch`,
    /// `GET /db/stats`, and `/check?db=live`. Without `wal` this is a
    /// facts *file* loaded into memory at startup; with `wal` it is a
    /// durable *directory* (write-ahead log + snapshots) recovered at
    /// startup.
    pub db_path: Option<PathBuf>,
    /// Serve `db_path` as a durable directory: every write is logged to
    /// a checksummed WAL before it is applied or acknowledged, and
    /// startup recovers the last snapshot plus the log's acked suffix.
    pub wal: bool,
    /// How eagerly acknowledged writes reach stable storage (only
    /// meaningful with `wal`). `Always` fsyncs every record before the
    /// ack; `Batch` every [`soct_storage::wal::BATCH_SYNC_EVERY`]
    /// records; `Off` leaves it to the OS (and clean shutdown).
    pub wal_sync: SyncPolicy,
    /// Facts file used to seed a *virgin* durable directory (only
    /// meaningful with `wal`). An existing database ignores the seed.
    pub db_seed: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            mode: FindShapesMode::InMemory,
            check_threads: 1,
            cache_capacity: 1 << 16,
            cache_dir: None,
            max_chase_atoms: 1_000_000,
            db_path: None,
            wal: false,
            wal_sync: SyncPolicy::Always,
            db_seed: None,
        }
    }
}

/// Per-endpoint request counters (monotonic).
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// `POST /check` requests served (any status).
    pub checks: AtomicU64,
    /// `POST /shapes` requests served.
    pub shapes: AtomicU64,
    /// `POST /chase` requests served.
    pub chases: AtomicU64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: AtomicU64,
    /// Cache persistence failures (best-effort writes that did not land).
    pub persist_failures: AtomicU64,
    /// `POST /db/insert` and `POST /db/delete` requests served.
    pub db_writes: AtomicU64,
    /// `/check?db=live` requests answered from cache after fingerprint
    /// revalidation (no recomputation touched the database).
    pub live_revalidations: AtomicU64,
}

/// The resident live database: a writable engine with shape tracking on,
/// plus the schema/constant interners its facts were parsed against. One
/// `RwLock` guards the whole thing — writes are short (O(arity²) per tuple
/// for inserts), and checks take the read side so they can proceed
/// concurrently with each other.
#[derive(Debug)]
struct LiveDb {
    schema: Schema,
    consts: Interner,
    engine: StorageEngine,
    inserts: u64,
    deletes: u64,
    delete_misses: u64,
    /// The write-ahead log, when the database is durable. Every write
    /// batch is logged (vocabulary delta first, then one ops record)
    /// *before* it is applied to the engine or acknowledged.
    wal: Option<Wal>,
    /// Constants already logged to the WAL (dense-id high-water mark).
    /// Advances only after a successful append, so a failed append is
    /// retried as part of the next batch's delta.
    logged_syms: usize,
    /// Predicates already logged to the WAL (same contract).
    logged_preds: usize,
    /// What recovery observed at startup, surfaced on `/db/stats`.
    recovery: Option<RecoveryReport>,
}

/// Counters and fingerprint movement of one applied write batch.
#[derive(Debug, Default)]
struct BatchOutcome {
    inserted: u64,
    deleted: u64,
    missed: u64,
    shapes: u64,
    fp_changed: bool,
    fp_after: String,
}

fn wal_err(e: io::Error) -> (u16, String) {
    (500, format!("write-ahead log failure: {e}"))
}

impl LiveDb {
    /// Parses a facts file and loads it into a tracking-enabled engine.
    fn load(path: &PathBuf) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_text(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }

    fn from_text(text: &str) -> Result<Self, String> {
        let mut schema = Schema::new();
        let mut consts = Interner::new();
        let db = parse_facts(text, &mut schema, &mut consts).map_err(|e| e.to_string())?;
        let mut engine = StorageEngine::new();
        engine.load_instance(&schema, &db);
        // Register empty tables for every declared predicate too, so the
        // engine knows names/arities even before the first insert.
        for p in schema.predicates() {
            engine.create_table(p, schema.name(p), schema.arity(p));
        }
        engine.enable_shape_tracking();
        Ok(LiveDb {
            schema,
            consts,
            engine,
            inserts: 0,
            deletes: 0,
            delete_misses: 0,
            wal: None,
            logged_syms: 0,
            logged_preds: 0,
            recovery: None,
        })
    }

    /// Opens (or creates) a durable database directory: recovers the
    /// last snapshot plus the log's acked suffix, then — only if the
    /// directory was virgin — seeds it from the optional facts file and
    /// checkpoints, so restarts load the snapshot instead of replaying
    /// the seed.
    fn open_durable(dir: &PathBuf, policy: SyncPolicy, seed: Option<&PathBuf>) -> io::Result<Self> {
        let d = soct_storage::open_durable(dir, policy, Box::new(RealIo::new()))?;
        let mut live = LiveDb {
            logged_syms: d.symbols.len(),
            logged_preds: d.schema.len(),
            schema: d.schema,
            consts: d.symbols,
            engine: d.engine,
            inserts: 0,
            deletes: 0,
            delete_misses: 0,
            wal: Some(d.wal),
            recovery: Some(d.report),
        };
        // Recovery registers tables lazily (on first insert); declared
        // predicates that never held a tuple still need empty tables so
        // names/arities are known, mirroring `from_text`.
        for p in live.schema.predicates() {
            live.engine
                .create_table(p, live.schema.name(p), live.schema.arity(p));
        }
        let virgin = live.schema.is_empty() && live.consts.is_empty();
        match seed {
            Some(path) if virgin => {
                let text = std::fs::read_to_string(path)?;
                live.seed(&text).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: {e}", path.display()),
                    )
                })?;
            }
            Some(path) => {
                soct_obs::log_info!(
                    "serve",
                    "event=db_seed_skipped reason=existing_database seed={}",
                    path.display()
                );
            }
            None => {}
        }
        Ok(live)
    }

    /// Seeds a virgin durable directory: parse, log, apply, checkpoint.
    /// Seed tuples are not charged to the write counters.
    fn seed(&mut self, text: &str) -> Result<(), String> {
        let facts =
            parse_facts(text, &mut self.schema, &mut self.consts).map_err(|e| e.to_string())?;
        let entries: Vec<(bool, Atom)> = facts.atoms().iter().map(|a| (true, a.clone())).collect();
        self.apply_batch(&entries).map_err(|(_, e)| e)?;
        for p in self.schema.predicates() {
            self.engine
                .create_table(p, self.schema.name(p), self.schema.arity(p));
        }
        self.inserts = 0;
        let wal = self.wal.as_mut().expect("seed requires a durable db");
        wal.checkpoint(&self.engine, &self.schema, &self.consts)
            .map_err(|e| e.to_string())?;
        Ok(())
    }

    /// Logs any vocabulary the parser interned since the last logged
    /// high-water mark. Called before the ops record of every batch, so
    /// replay can rebuild the interner/schema with identical dense ids.
    fn log_vocab_delta(&mut self) -> io::Result<()> {
        let Some(wal) = self.wal.as_mut() else {
            return Ok(());
        };
        if self.logged_syms < self.consts.len() {
            let delta: Vec<(u32, &str)> = (self.logged_syms..self.consts.len())
                .map(|i| (i as u32, self.consts.resolve(SymbolId(i as u32))))
                .collect();
            wal.append_symbols(&delta)?;
            self.logged_syms = self.consts.len();
        }
        if self.logged_preds < self.schema.len() {
            let delta: Vec<(u32, &str, usize)> = (self.logged_preds..self.schema.len())
                .map(|i| {
                    let p = PredId(i as u32);
                    (i as u32, self.schema.name(p), self.schema.arity(p))
                })
                .collect();
            wal.append_predicates(&delta)?;
            self.logged_preds = self.schema.len();
        }
        Ok(())
    }

    /// Applies one write batch under the durability contract: the batch
    /// is logged as a single WAL record (after the vocabulary delta) and
    /// only on `Ok` applied to the engine — so the in-memory state never
    /// runs ahead of what a restart would recover, and an acknowledged
    /// write is exactly as durable as the sync policy promises. Deletes
    /// that miss are logged too; replay is a deterministic no-op for
    /// them. On a WAL error nothing is applied and the client sees a
    /// 500 (interned-but-unlogged vocabulary is re-logged with the next
    /// batch via the high-water marks).
    fn apply_batch(&mut self, entries: &[(bool, Atom)]) -> Result<BatchOutcome, (u16, String)> {
        if self.wal.is_some() {
            self.log_vocab_delta().map_err(wal_err)?;
            let rows: Vec<WalEntry> = entries
                .iter()
                .map(|(insert, a)| WalEntry {
                    insert: *insert,
                    pred: a.pred,
                    name: self.schema.name(a.pred).to_string(),
                    row: a.terms.iter().map(|t| t.pack()).collect(),
                })
                .collect();
            self.wal
                .as_mut()
                .expect("checked above")
                .append_ops(&rows)
                .map_err(wal_err)?;
        }
        let fp_before = self.engine.shape_fingerprint().expect("tracking enabled");
        let mut out = BatchOutcome::default();
        for (insert, a) in entries {
            if *insert {
                self.engine
                    .create_table(a.pred, self.schema.name(a.pred), a.arity());
                self.engine.insert(a.pred, &a.terms);
                out.inserted += 1;
            } else if self.engine.delete(a.pred, &a.terms) {
                out.deleted += 1;
            } else {
                out.missed += 1;
            }
        }
        self.inserts += out.inserted;
        self.deletes += out.deleted;
        self.delete_misses += out.missed;
        let fp_after = self.engine.shape_fingerprint().expect("tracking enabled");
        out.shapes = self
            .engine
            .shape_catalog()
            .expect("tracking enabled")
            .num_shapes() as u64;
        out.fp_changed = fp_before != fp_after;
        out.fp_after = fp_after.to_string();
        self.maybe_checkpoint();
        Ok(out)
    }

    /// Checkpoints once the replay debt passes [`WAL_CHECKPOINT_BYTES`].
    /// Failure is non-fatal: the log still holds everything.
    fn maybe_checkpoint(&mut self) {
        let Some(wal) = self.wal.as_mut() else {
            return;
        };
        if wal.bytes_since_checkpoint() < WAL_CHECKPOINT_BYTES {
            return;
        }
        if let Err(e) = wal.checkpoint(&self.engine, &self.schema, &self.consts) {
            soct_obs::log_warn!("serve", "event=wal_checkpoint_failed error={e}");
        }
    }
}

/// The termination-checking service: parses line-oriented ruleset bodies,
/// dispatches to the checkers/chase/`FindShapes`, and fronts everything
/// with the fingerprint-keyed [`VerdictCache`].
#[derive(Debug)]
pub struct TerminationService {
    cfg: ServiceConfig,
    cache: VerdictCache,
    stats: ServiceStats,
    /// Serialises best-effort cache writes so concurrent misses do not
    /// interleave partial files.
    persist_lock: Mutex<()>,
    /// Verdicts inserted since the last persisted snapshot.
    dirty: AtomicU64,
    /// The resident live database, when `db_path` is configured.
    live: Option<RwLock<LiveDb>>,
}

impl TerminationService {
    /// Builds the service, loading a persisted verdict cache when
    /// `cache_dir` is configured and holds one. A corrupt cache file is an
    /// error (delete it to start cold) — silently dropping it would mask
    /// operational mistakes.
    pub fn new(cfg: ServiceConfig) -> io::Result<Self> {
        let cache = VerdictCache::new(cfg.cache_capacity);
        if let Some(dir) = &cfg.cache_dir {
            std::fs::create_dir_all(dir)?;
            let file = dir.join(CACHE_FILE);
            if file.exists() {
                cache.load(&file)?;
            }
        }
        let live = match &cfg.db_path {
            Some(path) if cfg.wal => Some(RwLock::new(LiveDb::open_durable(
                path,
                cfg.wal_sync,
                cfg.db_seed.as_ref(),
            )?)),
            Some(path) => Some(RwLock::new(LiveDb::load(path)?)),
            None => None,
        };
        Ok(TerminationService {
            cfg,
            cache,
            stats: ServiceStats::default(),
            persist_lock: Mutex::new(()),
            dirty: AtomicU64::new(0),
            live,
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The verdict cache (exposed for tests and warm-up).
    pub fn cache(&self) -> &VerdictCache {
        &self.cache
    }

    /// Routes one request. `target` is the request path with an optional
    /// query string (`/check?mode=db`); returns `(status, JSON body)`.
    pub fn handle(&self, method: &str, target: &str, body: &str) -> (u16, String) {
        let (path, query) = split_target(target);
        let response = match (method, path) {
            ("POST", "/check") => {
                self.stats.checks.fetch_add(1, Ordering::Relaxed);
                self.check(body, &query)
            }
            ("POST", "/shapes") => {
                self.stats.shapes.fetch_add(1, Ordering::Relaxed);
                self.shapes(body, &query)
            }
            ("POST", "/chase") => {
                self.stats.chases.fetch_add(1, Ordering::Relaxed);
                self.chase(body, &query)
            }
            ("GET", "/stats") => Ok(self.stats_json()),
            ("POST", "/db/insert") => {
                self.stats.db_writes.fetch_add(1, Ordering::Relaxed);
                self.db_write(body, WriteOp::Insert)
            }
            ("POST", "/db/delete") => {
                self.stats.db_writes.fetch_add(1, Ordering::Relaxed);
                self.db_write(body, WriteOp::Delete)
            }
            ("POST", "/db/batch") => {
                self.stats.db_writes.fetch_add(1, Ordering::Relaxed);
                self.db_batch(body)
            }
            ("GET", "/db/stats") => self.db_stats(),
            (
                _,
                "/check" | "/shapes" | "/chase" | "/stats" | "/db/insert" | "/db/delete"
                | "/db/batch" | "/db/stats",
            ) => Err((
                405,
                "method not allowed (POST /check, POST /shapes, POST /chase, GET /stats, \
                 POST /db/insert, POST /db/delete, POST /db/batch, GET /db/stats)"
                    .to_string(),
            )),
            _ => Err((404, format!("no such endpoint: {path}"))),
        };
        match response {
            Ok(body) => (200, body),
            Err((status, msg)) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                let mut o = JsonObject::new();
                o.str_field("error", &msg);
                (status, o.finish())
            }
        }
    }

    /// `POST /check`: decide termination for the ruleset (and optional
    /// facts) in the body. Supports `?mode=memory|db`, and `?db=live` to
    /// check the rules against the resident live database instead of the
    /// body's facts / the critical instance.
    fn check(&self, body: &str, query: &FxHashMap<String, String>) -> ServiceResult {
        match query.get("db").map(String::as_str) {
            Some("live") => return self.check_live(body, query),
            Some(other) => return Err((400, format!("db expects `live`, got `{other}`"))),
            None => {}
        }
        let program = parse_program(body)?;
        let mode = mode_from(query, self.cfg.mode)?;
        let (schema, tgds, db) = (program.schema, program.tgds, program.db);
        let checked = check_termination_cached(
            &schema,
            &tgds,
            &db,
            mode,
            self.cfg.check_threads,
            &self.cache,
        );
        if !checked.hit {
            self.persist_best_effort();
        }
        let mut o = JsonObject::new();
        o.str_field("verdict", verdict_str(checked.report.verdict))
            .str_field("class", class_str(checked.report.class))
            .u64_field("rules", tgds.len() as u64)
            .u64_field("db_atoms", db.len() as u64)
            .str_field("rule_fp", &checked.rules_fp.to_string())
            .str_field("db_fp", &checked.db_fp.to_string())
            .bool_field("cached", checked.hit);
        Ok(o.finish())
    }

    /// `/check?db=live`: decide termination for the body's rules against
    /// the resident live database. Rules parse against a *clone* of the
    /// live schema, so rule-only predicates intern freely without mutating
    /// the shared vocabulary — a predicate with no table is simply an
    /// empty relation, exactly the semantics the checkers expect. With
    /// shape tracking on, the db half of the cache key is an O(1)
    /// accumulator read: revalidation after shape-preserving writes is a
    /// pure cache hit, independent of database size.
    fn check_live(&self, body: &str, query: &FxHashMap<String, String>) -> ServiceResult {
        let live = self.live.as_ref().ok_or_else(no_live_db)?;
        let mode = mode_from(query, self.cfg.mode)?;
        let guard = live.read().expect("live db poisoned");
        let mut schema = guard.schema.clone();
        let mut consts = guard.consts.clone();
        let tgds = soct_parser::parse_tgds(body, &mut schema, &mut consts)
            .map_err(|e| (400, e.to_string()))?;
        let checked = check_termination_live(
            &schema,
            &tgds,
            &guard.engine,
            mode,
            self.cfg.check_threads,
            &self.cache,
        );
        if checked.hit {
            self.stats
                .live_revalidations
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.persist_best_effort();
        }
        let mut o = JsonObject::new();
        o.str_field("verdict", verdict_str(checked.report.verdict))
            .str_field("class", class_str(checked.report.class))
            .u64_field("rules", tgds.len() as u64)
            .u64_field("db_atoms", guard.engine.total_rows())
            .str_field("rule_fp", &checked.rules_fp.to_string())
            .str_field("db_fp", &checked.db_fp.to_string())
            .bool_field("cached", checked.hit);
        Ok(o.finish())
    }

    /// `POST /db/insert` and `POST /db/delete`: apply a batch of
    /// line-oriented facts (same syntax as a database file) to the
    /// resident engine. Inserts create tables on the fly for new
    /// predicates; deletes remove one matching tuple each (multiset
    /// semantics) and report misses without failing the batch. The
    /// response carries the shape fingerprint before/after, so a client
    /// can tell whether the write invalidated cached verdicts.
    fn db_write(&self, body: &str, op: WriteOp) -> ServiceResult {
        let live = self.live.as_ref().ok_or_else(no_live_db)?;
        let mut guard = live.write().expect("live db poisoned");
        let g = &mut *guard;
        let facts =
            parse_facts(body, &mut g.schema, &mut g.consts).map_err(|e| (400, e.to_string()))?;
        let entries: Vec<(bool, Atom)> = facts
            .atoms()
            .iter()
            .map(|a| (op == WriteOp::Insert, a.clone()))
            .collect();
        let out = g.apply_batch(&entries)?;
        let mut o = JsonObject::new();
        o.str_field(
            "op",
            match op {
                WriteOp::Insert => "insert",
                WriteOp::Delete => "delete",
            },
        )
        .u64_field("applied", out.inserted + out.deleted)
        .u64_field("missed", out.missed)
        .u64_field("tuples", g.engine.total_rows())
        .u64_field("shapes", out.shapes)
        .bool_field("shape_fp_changed", out.fp_changed)
        .str_field("shape_fp", &out.fp_after);
        Ok(o.finish())
    }

    /// `POST /db/batch`: one request, one WAL record, one fingerprint
    /// touch — a line-oriented mix of inserts and deletes. A leading
    /// `-` marks a line as a delete batch; everything else inserts.
    /// Lines are applied in order with multiset semantics, and under
    /// `--wal` the entire batch becomes a single log record, so batched
    /// ingest pays one fsync (policy `always`) instead of one per
    /// request.
    fn db_batch(&self, body: &str) -> ServiceResult {
        let live = self.live.as_ref().ok_or_else(no_live_db)?;
        let mut guard = live.write().expect("live db poisoned");
        let g = &mut *guard;
        let mut entries: Vec<(bool, Atom)> = Vec::new();
        for (n, line) in body.lines().enumerate() {
            let t = line.trim();
            if t.is_empty() {
                continue;
            }
            let (insert, fact) = match t.strip_prefix('-') {
                Some(rest) => (false, rest.trim_start()),
                None => (true, t),
            };
            let facts = parse_facts(fact, &mut g.schema, &mut g.consts)
                .map_err(|e| (400, format!("line {}: {e}", n + 1)))?;
            for a in facts.atoms() {
                entries.push((insert, a.clone()));
            }
        }
        if entries.is_empty() {
            return Err((400, "empty batch (no facts in body)".to_string()));
        }
        let out = g.apply_batch(&entries)?;
        let mut o = JsonObject::new();
        o.str_field("op", "batch")
            .u64_field("applied", out.inserted + out.deleted)
            .u64_field("inserted", out.inserted)
            .u64_field("deleted", out.deleted)
            .u64_field("missed", out.missed)
            .u64_field("tuples", g.engine.total_rows())
            .u64_field("shapes", out.shapes)
            .bool_field("shape_fp_changed", out.fp_changed)
            .str_field("shape_fp", &out.fp_after);
        Ok(o.finish())
    }

    /// `GET /db/stats`: size, shape, and write counters of the resident
    /// database, plus the two maintained fingerprints.
    fn db_stats(&self) -> ServiceResult {
        let live = self.live.as_ref().ok_or_else(no_live_db)?;
        let g = live.read().expect("live db poisoned");
        let cat = g.engine.shape_catalog().expect("tracking enabled");
        let mut o = JsonObject::new();
        o.u64_field("tuples", g.engine.total_rows())
            .u64_field("tables", g.engine.tables().count() as u64)
            .u64_field(
                "relations_nonempty",
                g.engine.non_empty_predicates().len() as u64,
            )
            .u64_field("shapes", cat.num_shapes() as u64)
            .u64_field("inserts", g.inserts)
            .u64_field("deletes", g.deletes)
            .u64_field("delete_misses", g.delete_misses)
            .u64_field("catalog_rebuilds", g.engine.catalog_rebuilds())
            .str_field(
                "shape_fp",
                &g.engine
                    .shape_fingerprint()
                    .expect("tracking enabled")
                    .to_string(),
            )
            .str_field(
                "pred_fp",
                &g.engine
                    .predicate_fingerprint()
                    .expect("tracking enabled")
                    .to_string(),
            )
            .bool_field("durable", g.wal.is_some());
        if let Some(wal) = &g.wal {
            let r = g.recovery.unwrap_or_default();
            o.u64_field("wal_segment_seq", wal.segment_seq())
                .u64_field("wal_bytes_since_checkpoint", wal.bytes_since_checkpoint())
                .str_field("wal_sync", &wal.sync_policy().to_string())
                .u64_field("recovered_records", r.replayed_records)
                .u64_field("torn_truncations", r.torn_truncations);
        }
        Ok(o.finish())
    }

    /// `POST /shapes`: list the database shapes of the facts in the body.
    /// Supports `?mode=memory|db`.
    fn shapes(&self, body: &str, query: &FxHashMap<String, String>) -> ServiceResult {
        let parsed = Program::parse(body).map_err(|e| (400, e.to_string()))?;
        let mode = mode_from(query, self.cfg.mode)?;
        let src = InstanceSource::new(&parsed.schema, &parsed.database);
        let report = find_shapes_parallel(&src, mode, self.cfg.check_threads);
        let list: Vec<String> = report
            .shapes
            .iter()
            .map(|s| format!("{}_{}", parsed.schema.name(s.pred), s.rgs))
            .collect();
        let mut o = JsonObject::new();
        o.u64_field("shapes", report.shapes.len() as u64)
            .u64_field("atoms", parsed.database.len() as u64)
            .str_field("mode", mode_str(mode))
            .str_array_field("list", &list);
        Ok(o.finish())
    }

    /// `POST /chase`: materialise the chase of the body's program.
    /// Supports `?variant=so|oblivious|restricted&max-atoms=N`.
    fn chase(&self, body: &str, query: &FxHashMap<String, String>) -> ServiceResult {
        let program = parse_program(body)?;
        let variant = match query.get("variant") {
            None => ChaseVariant::SemiOblivious,
            Some(v) => v.parse().map_err(|e: String| (400, e))?,
        };
        let max_atoms = match query.get("max-atoms") {
            None => self.cfg.max_chase_atoms,
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| (400, format!("max-atoms expects an integer, got `{v}`")))?
                .min(self.cfg.max_chase_atoms),
        };
        let cfg =
            ChaseConfig::with_max_atoms(variant, max_atoms).with_threads(self.cfg.check_threads);
        let res = run_chase_columnar(&program.db, &program.tgds, &cfg);
        let mut o = JsonObject::new();
        o.str_field("outcome", outcome_str(res.outcome))
            .u64_field("atoms", res.store.len() as u64)
            .u64_field("derived", res.derived_atoms(program.db.len()) as u64)
            .u64_field("rounds", res.rounds as u64)
            .u64_field("triggers", res.triggers_applied as u64)
            .u64_field("nulls", res.nulls_created as u64);
        Ok(o.finish())
    }

    /// `GET /stats`: request counters and cache counters.
    pub fn stats_json(&self) -> String {
        let cache_stats = self.cache.stats();
        let mut requests = JsonObject::new();
        requests
            .u64_field("check", self.stats.checks.load(Ordering::Relaxed))
            .u64_field("shapes", self.stats.shapes.load(Ordering::Relaxed))
            .u64_field("chase", self.stats.chases.load(Ordering::Relaxed))
            .u64_field("db_writes", self.stats.db_writes.load(Ordering::Relaxed))
            .u64_field("errors", self.stats.errors.load(Ordering::Relaxed))
            .u64_field(
                "persist_failures",
                self.stats.persist_failures.load(Ordering::Relaxed),
            );
        let mut cache = JsonObject::new();
        cache
            .u64_field("entries", self.cache.len() as u64)
            .u64_field("capacity", self.cache.capacity() as u64)
            .u64_field("hits", cache_stats.hits)
            .u64_field("misses", cache_stats.misses)
            .u64_field("insertions", cache_stats.insertions)
            .u64_field("evictions", cache_stats.evictions);
        let mut o = JsonObject::new();
        o.raw_field("requests", &requests.finish())
            .raw_field("cache", &cache.finish());
        o.finish()
    }

    /// Renders the service-level metric families for `GET /metrics`:
    /// per-endpoint request counters, the verdict cache, the resident
    /// live database (when configured), then the process-global
    /// families (chase engine, storage write path, checker phases).
    pub fn metrics_prometheus(&self, out: &mut PromText) {
        out.header(
            "soct_service_requests_total",
            "counter",
            "Service requests served by endpoint",
        );
        for (ep, v) in [
            ("check", self.stats.checks.load(Ordering::Relaxed)),
            ("shapes", self.stats.shapes.load(Ordering::Relaxed)),
            ("chase", self.stats.chases.load(Ordering::Relaxed)),
            ("db_write", self.stats.db_writes.load(Ordering::Relaxed)),
        ] {
            out.sample("soct_service_requests_total", &[("endpoint", ep)], v);
        }
        out.counter(
            "soct_service_errors_total",
            "Requests answered with a 4xx/5xx status",
            self.stats.errors.load(Ordering::Relaxed),
        );
        out.counter(
            "soct_service_persist_failures_total",
            "Best-effort verdict-cache writes that did not land",
            self.stats.persist_failures.load(Ordering::Relaxed),
        );
        let cs = self.cache.stats();
        for (name, help, v) in [
            (
                "soct_cache_hits_total",
                "Verdict-cache lookups answered from cache",
                cs.hits,
            ),
            (
                "soct_cache_misses_total",
                "Verdict-cache lookups that required a fresh check",
                cs.misses,
            ),
            (
                "soct_cache_insertions_total",
                "Verdicts inserted into the cache",
                cs.insertions,
            ),
            (
                "soct_cache_evictions_total",
                "Verdicts evicted by the LRU bound",
                cs.evictions,
            ),
        ] {
            out.counter(name, help, v);
        }
        out.gauge(
            "soct_cache_entries",
            "Verdict-cache resident entries",
            self.cache.len() as u64,
        );
        out.gauge(
            "soct_cache_capacity",
            "Verdict-cache LRU capacity",
            self.cache.capacity() as u64,
        );
        out.counter(
            "soct_livedb_revalidations_total",
            "Live checks answered via fingerprint revalidation (pure cache hits)",
            self.stats.live_revalidations.load(Ordering::Relaxed),
        );
        if let Some(live) = &self.live {
            let g = live.read().expect("live db poisoned");
            out.gauge(
                "soct_livedb_tuples",
                "Tuples resident in the live database",
                g.engine.total_rows(),
            );
            if let Some(cat) = g.engine.shape_catalog() {
                out.gauge(
                    "soct_livedb_shapes",
                    "Distinct database shapes in the live database",
                    cat.num_shapes() as u64,
                );
            }
            out.header(
                "soct_livedb_writes_total",
                "counter",
                "Live-database write outcomes by operation",
            );
            for (op, v) in [
                ("insert", g.inserts),
                ("delete", g.deletes),
                ("delete_miss", g.delete_misses),
            ] {
                out.sample("soct_livedb_writes_total", &[("op", op)], v);
            }
        }
        soct_obs::global().render_into(out);
    }

    /// Writes the verdict cache to `cache_dir`, if configured.
    pub fn persist(&self) -> io::Result<()> {
        let Some(dir) = &self.cfg.cache_dir else {
            return Ok(());
        };
        let _guard = self.persist_lock.lock().expect("persist lock poisoned");
        // Write-then-rename so a crash mid-write never leaves a corrupt
        // cache for the next startup to choke on.
        let tmp = dir.join(format!("{CACHE_FILE}.tmp"));
        self.cache.save(&tmp)?;
        std::fs::rename(&tmp, dir.join(CACHE_FILE))?;
        soct_obs::global().cache_persists.inc();
        soct_obs::log_debug!(
            "serve",
            "event=cache_persisted entries={}",
            self.cache.len()
        );
        Ok(())
    }

    /// Persists after a newly computed verdict: immediately while the
    /// cache is small, every [`PERSIST_BATCH`] misses once it is large —
    /// a full snapshot write is O(cache), which must not be a per-request
    /// cost at scale.
    fn persist_best_effort(&self) {
        if self.cfg.cache_dir.is_none() {
            return;
        }
        let dirty = self.dirty.fetch_add(1, Ordering::Relaxed) + 1;
        if self.cache.len() > PERSIST_IMMEDIATE_LIMIT && dirty < PERSIST_BATCH {
            return;
        }
        self.dirty.store(0, Ordering::Relaxed);
        if let Err(e) = self.persist() {
            self.stats.persist_failures.fetch_add(1, Ordering::Relaxed);
            soct_obs::log_warn!("serve", "event=persist_failed error={e}");
        }
    }

    /// Graceful shutdown: persists the verdict cache, then checkpoints
    /// the live database's WAL (which flushes pending records first) so
    /// a restart recovers from the snapshot instead of replaying the
    /// whole log. Under sync policies `batch`/`off` this is also what
    /// makes the tail of acknowledged writes durable on a clean exit.
    pub fn shutdown(&self) {
        if let Err(e) = self.persist() {
            self.stats.persist_failures.fetch_add(1, Ordering::Relaxed);
            soct_obs::log_warn!("serve", "event=shutdown_persist_failed error={e}");
        }
        let Some(live) = &self.live else {
            return;
        };
        let mut guard = live.write().expect("live db poisoned");
        let g = &mut *guard;
        let Some(wal) = g.wal.as_mut() else {
            return;
        };
        if let Err(e) = wal.checkpoint(&g.engine, &g.schema, &g.consts) {
            soct_obs::log_warn!("serve", "event=shutdown_checkpoint_failed error={e}");
            // The snapshot didn't land, but the log is still the source
            // of truth — at least force it to stable storage.
            if let Err(e) = wal.flush() {
                soct_obs::log_warn!("serve", "event=shutdown_flush_failed error={e}");
            }
        }
        soct_obs::log_info!("serve", "event=shutdown_complete");
    }
}

type ServiceResult = Result<String, (u16, String)>;

/// Which mutation a `/db/*` write request performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WriteOp {
    Insert,
    Delete,
}

fn no_live_db() -> (u16, String) {
    (
        409,
        "no resident database (start serve with --db <facts-file>)".to_string(),
    )
}

/// A parsed request body: vocabulary, rules, and the database actually
/// checked (the body's facts, or the critical instance when none given).
struct ParsedProgram {
    schema: Schema,
    tgds: Vec<Tgd>,
    db: Database,
}

fn parse_program(body: &str) -> Result<ParsedProgram, (u16, String)> {
    let parsed = Program::parse(body).map_err(|e| (400, e.to_string()))?;
    let mut consts = parsed.consts;
    let db = if parsed.database.is_empty() {
        critical_instance(&parsed.schema, &parsed.tgds, &mut consts)
    } else {
        parsed.database
    };
    Ok(ParsedProgram {
        schema: parsed.schema,
        tgds: parsed.tgds,
        db,
    })
}

/// The critical instance `D_Σ` (Remark 1): one atom per predicate of the
/// ruleset, every position filled with a distinct fresh constant. Used
/// when a request (or CLI invocation) supplies rules but no database —
/// the verdict then characterises termination on *all* databases.
pub fn critical_instance(schema: &Schema, tgds: &[Tgd], consts: &mut Interner) -> Database {
    let mut db = Database::new();
    let mut i = 0usize;
    for p in soct_model::tgd::predicates_of(tgds) {
        let terms: Vec<Term> = (0..schema.arity(p))
            .map(|_| {
                let c = ConstId::from_symbol(consts.intern(&format!("crit{i}")));
                i += 1;
                Term::Const(c)
            })
            .collect();
        db.insert(Atom::new(schema, p, terms).expect("arity matches"));
    }
    db
}

fn split_target(target: &str) -> (&str, FxHashMap<String, String>) {
    match target.split_once('?') {
        None => (target, FxHashMap::default()),
        Some((path, query)) => {
            let mut map = FxHashMap::default();
            for pair in query.split('&').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').unwrap_or((pair, "true"));
                map.insert(k.to_string(), v.to_string());
            }
            (path, map)
        }
    }
}

fn mode_from(
    query: &FxHashMap<String, String>,
    default: FindShapesMode,
) -> Result<FindShapesMode, (u16, String)> {
    match query.get("mode") {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e: String| (400, e)),
    }
}

fn mode_str(mode: FindShapesMode) -> &'static str {
    match mode {
        FindShapesMode::InMemory => "memory",
        FindShapesMode::InDatabase => "db",
    }
}

fn verdict_str(v: Verdict) -> &'static str {
    match v {
        Verdict::Finite => "finite",
        Verdict::Infinite => "infinite",
        Verdict::Unknown => "unknown",
    }
}

fn class_str(c: TgdClass) -> &'static str {
    match c {
        TgdClass::SimpleLinear => "SL",
        TgdClass::Linear => "L",
        TgdClass::General => "TGD",
    }
}

fn outcome_str(o: ChaseOutcome) -> &'static str {
    match o {
        ChaseOutcome::Terminated => "terminated",
        ChaseOutcome::AtomBudgetExceeded => "atom-budget-exceeded",
        ChaseOutcome::RoundBudgetExceeded => "round-budget-exceeded",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::get_field;

    fn svc() -> TerminationService {
        TerminationService::new(ServiceConfig::default()).unwrap()
    }

    const INFINITE_SL: &str = "person(X) -> adv(X, Y).\nadv(X, Y) -> person(Y).\nperson(alice).\n";
    const FINITE_SL: &str = "r(X, Y) -> s(Y).\nr(a, b).\n";

    #[test]
    fn check_reports_verdict_and_cache_state() {
        let s = svc();
        let (status, body) = s.handle("POST", "/check", INFINITE_SL);
        assert_eq!(status, 200, "{body}");
        assert_eq!(get_field(&body, "verdict"), Some("infinite"));
        assert_eq!(get_field(&body, "class"), Some("SL"));
        assert_eq!(get_field(&body, "cached"), Some("false"));
        let (status2, body2) = s.handle("POST", "/check", INFINITE_SL);
        assert_eq!(status2, 200);
        assert_eq!(get_field(&body2, "cached"), Some("true"));
        // Byte-identical apart from the cached flag.
        assert_eq!(body.replace("\"cached\":false", "\"cached\":true"), body2);
    }

    #[test]
    fn rules_only_check_uses_the_critical_instance() {
        let s = svc();
        let (status, body) = s.handle("POST", "/check", "r(X, Y) -> s(Y).\n");
        assert_eq!(status, 200, "{body}");
        assert_eq!(get_field(&body, "verdict"), Some("finite"));
        assert_eq!(get_field(&body, "db_atoms"), Some("2"));
    }

    #[test]
    fn shapes_endpoint_lists_shapes() {
        let s = svc();
        let (status, body) = s.handle("POST", "/shapes", "r(a, a).\nr(a, b).\ns(c).\n");
        assert_eq!(status, 200, "{body}");
        assert_eq!(get_field(&body, "shapes"), Some("3"));
        assert!(body.contains("\"r_(1,1)\""), "{body}");
        assert!(body.contains("\"r_(1,2)\""), "{body}");
        assert!(body.contains("\"s_(1)\""), "{body}");
    }

    #[test]
    fn chase_endpoint_runs_variants() {
        let s = svc();
        let (status, body) = s.handle("POST", "/chase?variant=so&max-atoms=50", FINITE_SL);
        assert_eq!(status, 200, "{body}");
        assert_eq!(get_field(&body, "outcome"), Some("terminated"));
        assert_eq!(get_field(&body, "atoms"), Some("2"));
        let (status, body) = s.handle("POST", "/chase?variant=bogus", FINITE_SL);
        assert_eq!(status, 400, "{body}");
    }

    #[test]
    fn chase_budget_is_clamped_to_the_service_ceiling() {
        let cfg = ServiceConfig {
            max_chase_atoms: 100,
            ..ServiceConfig::default()
        };
        let s = TerminationService::new(cfg).unwrap();
        let diverging = "r(X, Y) -> r(Y, Z).\nr(a, b).\n";
        let (status, body) = s.handle("POST", "/chase?max-atoms=999999999", diverging);
        assert_eq!(status, 200, "{body}");
        assert_eq!(get_field(&body, "outcome"), Some("atom-budget-exceeded"));
        let atoms: u64 = get_field(&body, "atoms").unwrap().parse().unwrap();
        assert!(atoms <= 110, "budget not clamped: {atoms}");
    }

    #[test]
    fn errors_and_unknown_routes() {
        let s = svc();
        let (status, body) = s.handle("POST", "/check", "this is not a ruleset");
        assert_eq!(status, 400);
        assert!(get_field(&body, "error").is_some());
        let (status, _) = s.handle("GET", "/nope", "");
        assert_eq!(status, 404);
        let (status, _) = s.handle("GET", "/check", "");
        assert_eq!(status, 405);
        let (status, _) = s.handle("POST", "/check?mode=bogus", FINITE_SL);
        assert_eq!(status, 400);
        let stats = s.stats_json();
        // bad ruleset + 404 + 405 + bad mode
        assert_eq!(get_field(&stats, "errors"), Some("4"));
    }

    #[test]
    fn stats_counts_requests_and_cache() {
        let s = svc();
        s.handle("POST", "/check", FINITE_SL);
        s.handle("POST", "/check", FINITE_SL);
        let (status, body) = s.handle("GET", "/stats", "");
        assert_eq!(status, 200);
        assert_eq!(get_field(&body, "check"), Some("2"));
        assert_eq!(get_field(&body, "hits"), Some("1"));
        assert_eq!(get_field(&body, "misses"), Some("1"));
    }

    #[test]
    fn persisted_cache_warms_a_new_service() {
        let dir = std::env::temp_dir().join("soct_serve_cache_test");
        std::fs::remove_dir_all(&dir).ok();
        let cfg = ServiceConfig {
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        };
        let first = TerminationService::new(cfg.clone()).unwrap();
        let (_, body) = first.handle("POST", "/check", INFINITE_SL);
        assert_eq!(get_field(&body, "cached"), Some("false"));
        drop(first);
        let second = TerminationService::new(cfg).unwrap();
        let (_, body) = second.handle("POST", "/check", INFINITE_SL);
        assert_eq!(get_field(&body, "cached"), Some("true"));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Linear ruleset whose verdict flips on the presence of the shape
    /// `r_(1,1)`: the s/t loop only fires once some `r(c, c)` exists.
    const SHAPE_SENSITIVE_L: &str = "r(X, X) -> s(X).\ns(X) -> t(X, Y).\nt(X, Y) -> s(Y).\n";

    fn live_svc(name: &str, facts: &str) -> (TerminationService, PathBuf) {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, facts).unwrap();
        let cfg = ServiceConfig {
            db_path: Some(path.clone()),
            ..ServiceConfig::default()
        };
        (TerminationService::new(cfg).unwrap(), path)
    }

    #[test]
    fn live_check_revalidates_through_shape_preserving_writes() {
        let (s, path) = live_svc("soct_serve_live_test.facts", "r(a, b).\nr(b, c).\n");
        let (status, body) = s.handle("POST", "/check?db=live", SHAPE_SENSITIVE_L);
        assert_eq!(status, 200, "{body}");
        assert_eq!(get_field(&body, "verdict"), Some("finite"));
        assert_eq!(get_field(&body, "class"), Some("L"));
        assert_eq!(get_field(&body, "cached"), Some("false"));

        // Shape-preserving insert: r_(1,2) already present.
        let (status, w) = s.handle("POST", "/db/insert", "r(c, d).\n");
        assert_eq!(status, 200, "{w}");
        assert_eq!(get_field(&w, "applied"), Some("1"));
        assert_eq!(get_field(&w, "shape_fp_changed"), Some("false"));
        let (_, body2) = s.handle("POST", "/check?db=live", SHAPE_SENSITIVE_L);
        assert_eq!(get_field(&body2, "cached"), Some("true"), "{body2}");
        assert_eq!(get_field(&body2, "verdict"), Some("finite"));

        // Shape-changing insert: r_(1,1) appears, the loop arms.
        let (_, w) = s.handle("POST", "/db/insert", "r(e, e).\n");
        assert_eq!(get_field(&w, "shape_fp_changed"), Some("true"), "{w}");
        let (_, body3) = s.handle("POST", "/check?db=live", SHAPE_SENSITIVE_L);
        assert_eq!(get_field(&body3, "cached"), Some("false"));
        assert_eq!(get_field(&body3, "verdict"), Some("infinite"));

        // Delete restores the fingerprint bit-exactly: cache hit, old verdict.
        let (_, w) = s.handle("POST", "/db/delete", "r(e, e).\n");
        assert_eq!(get_field(&w, "applied"), Some("1"));
        assert_eq!(get_field(&w, "shape_fp_changed"), Some("true"));
        let (_, body4) = s.handle("POST", "/check?db=live", SHAPE_SENSITIVE_L);
        assert_eq!(get_field(&body4, "cached"), Some("true"), "{body4}");
        assert_eq!(get_field(&body4, "verdict"), Some("finite"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn db_stats_counts_writes_and_misses() {
        let (s, path) = live_svc("soct_serve_live_stats.facts", "r(a, b).\n");
        s.handle("POST", "/db/insert", "r(b, c).\ns(a).\n");
        let (status, w) = s.handle("POST", "/db/delete", "r(a, b).\nr(zz, zz).\n");
        assert_eq!(status, 200, "{w}");
        assert_eq!(get_field(&w, "applied"), Some("1"));
        assert_eq!(get_field(&w, "missed"), Some("1"));
        let (status, body) = s.handle("GET", "/db/stats", "");
        assert_eq!(status, 200, "{body}");
        assert_eq!(get_field(&body, "tuples"), Some("2"));
        assert_eq!(get_field(&body, "inserts"), Some("2"));
        assert_eq!(get_field(&body, "deletes"), Some("1"));
        assert_eq!(get_field(&body, "delete_misses"), Some("1"));
        assert_eq!(get_field(&body, "catalog_rebuilds"), Some("0"));
        assert_eq!(get_field(&body, "relations_nonempty"), Some("2"));
        let (_, stats) = s.handle("GET", "/stats", "");
        assert_eq!(get_field(&stats, "db_writes"), Some("2"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn db_batch_applies_mixed_writes_in_one_request() {
        let (s, path) = live_svc("soct_serve_batch.facts", "r(a, b).\n");
        let (status, w) = s.handle(
            "POST",
            "/db/batch",
            "r(b, c).\ns(a).\n- r(a, b).\n- r(zz, zz).\n",
        );
        assert_eq!(status, 200, "{w}");
        assert_eq!(get_field(&w, "op"), Some("batch"));
        assert_eq!(get_field(&w, "inserted"), Some("2"));
        assert_eq!(get_field(&w, "deleted"), Some("1"));
        assert_eq!(get_field(&w, "missed"), Some("1"));
        assert_eq!(get_field(&w, "applied"), Some("3"));
        assert_eq!(get_field(&w, "tuples"), Some("2"));
        let (_, stats) = s.handle("GET", "/db/stats", "");
        assert_eq!(get_field(&stats, "inserts"), Some("2"));
        assert_eq!(get_field(&stats, "deletes"), Some("1"));
        assert_eq!(get_field(&stats, "delete_misses"), Some("1"));
        assert_eq!(get_field(&stats, "durable"), Some("false"));
        let (status, _) = s.handle("GET", "/db/batch", "");
        assert_eq!(status, 405);
        let (status, _) = s.handle("POST", "/db/batch", "\n  \n");
        assert_eq!(status, 400);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn durable_service_recovers_acked_writes_across_restart() {
        let dir = std::env::temp_dir().join("soct_serve_durable_test");
        std::fs::remove_dir_all(&dir).ok();
        let seed = std::env::temp_dir().join("soct_serve_durable_seed.facts");
        std::fs::write(&seed, "r(a, b).\n").unwrap();
        let cfg = ServiceConfig {
            db_path: Some(dir.clone()),
            wal: true,
            wal_sync: SyncPolicy::Always,
            db_seed: Some(seed.clone()),
            ..ServiceConfig::default()
        };
        let s = TerminationService::new(cfg.clone()).unwrap();
        let (status, w) = s.handle("POST", "/db/insert", "r(b, c).\n");
        assert_eq!(status, 200, "{w}");
        let (status, w) = s.handle("POST", "/db/batch", "s(a).\n- r(a, b).\n");
        assert_eq!(status, 200, "{w}");
        let (_, before) = s.handle("GET", "/db/stats", "");
        assert_eq!(get_field(&before, "tuples"), Some("2"));
        assert_eq!(get_field(&before, "durable"), Some("true"));
        // Drop without shutdown(): a crash. With `always`, everything
        // acknowledged above must come back.
        drop(s);
        let s2 = TerminationService::new(cfg).unwrap();
        let (_, after) = s2.handle("GET", "/db/stats", "");
        assert_eq!(get_field(&after, "tuples"), Some("2"));
        assert_eq!(
            get_field(&before, "shape_fp"),
            get_field(&after, "shape_fp"),
            "recovered fingerprint must match the pre-crash one"
        );
        assert_eq!(get_field(&before, "pred_fp"), get_field(&after, "pred_fp"));
        // The seed was checkpointed, so only the post-seed writes replay:
        // symbols(c) + ops(insert), then preds(s) + ops(batch).
        assert_eq!(get_field(&after, "recovered_records"), Some("4"));
        assert_eq!(get_field(&after, "torn_truncations"), Some("0"));
        // A clean shutdown checkpoints: the next restart replays nothing.
        s2.shutdown();
        drop(s2);
        let s3 = TerminationService::new(ServiceConfig {
            db_path: Some(dir.clone()),
            wal: true,
            db_seed: Some(seed.clone()),
            ..ServiceConfig::default()
        })
        .unwrap();
        let (_, third) = s3.handle("GET", "/db/stats", "");
        assert_eq!(get_field(&third, "recovered_records"), Some("0"));
        assert_eq!(get_field(&third, "tuples"), Some("2"));
        // Live checks see the recovered contents: the batch inserted
        // `s(a)`, which arms the s/t loop of the ruleset directly.
        let (_, verdict) = s3.handle("POST", "/check?db=live", SHAPE_SENSITIVE_L);
        assert_eq!(get_field(&verdict, "verdict"), Some("infinite"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(seed).ok();
    }

    #[test]
    fn db_endpoints_require_a_resident_database() {
        let s = svc();
        for (method, target) in [
            ("POST", "/db/insert"),
            ("POST", "/db/delete"),
            ("GET", "/db/stats"),
            ("POST", "/check?db=live"),
        ] {
            let (status, body) = s.handle(method, target, "r(a, b).\n");
            assert_eq!(status, 409, "{target}: {body}");
            assert!(
                get_field(&body, "error").unwrap().contains("--db"),
                "{body}"
            );
        }
        // And a bogus db selector is a 400, not a 409.
        let (status, _) = s.handle("POST", "/check?db=other", FINITE_SL);
        assert_eq!(status, 400);
    }

    #[test]
    fn critical_instance_covers_every_rule_predicate() {
        let p = Program::parse("r(X, Y) -> s(Y, Z).\ns(X, Y) -> t(X).\n").unwrap();
        let mut consts = p.consts;
        let db = critical_instance(&p.schema, &p.tgds, &mut consts);
        assert_eq!(db.len(), 3); // r, s, t
        assert!(db.atoms().iter().all(Atom::is_fact));
        // All constants are distinct.
        assert_eq!(db.active_domain().len(), 2 + 2 + 1);
    }
}
