//! A small hand-rolled JSON writer (and a matching flat-field reader) for
//! the service's wire format — in the spirit of `soct_bench::report`:
//! deterministic, dependency-free, and exactly as much JSON as the
//! endpoints need. Field order is insertion order, numbers are emitted in
//! Rust's default formatting, and strings are escaped per RFC 8259.

use std::fmt::Write as _;

/// Escapes a string for use inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An incrementally-built JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(k));
        &mut self.buf
    }

    /// Adds a string field (escaped).
    pub fn str_field(&mut self, k: &str, v: &str) -> &mut Self {
        let escaped = escape(v);
        let buf = self.key(k);
        let _ = write!(buf, "\"{escaped}\"");
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64_field(&mut self, k: &str, v: u64) -> &mut Self {
        let buf = self.key(k);
        let _ = write!(buf, "{v}");
        self
    }

    /// Adds a float field (finite values only; non-finite renders `null`).
    pub fn f64_field(&mut self, k: &str, v: f64) -> &mut Self {
        let buf = self.key(k);
        if v.is_finite() {
            let _ = write!(buf, "{v}");
        } else {
            buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool_field(&mut self, k: &str, v: bool) -> &mut Self {
        let buf = self.key(k);
        buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value (nested object or array) verbatim.
    pub fn raw_field(&mut self, k: &str, json: &str) -> &mut Self {
        let buf = self.key(k);
        buf.push_str(json);
        self
    }

    /// Adds an array of strings.
    pub fn str_array_field(&mut self, k: &str, items: &[String]) -> &mut Self {
        let rendered: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
        self.raw_field(k, &format!("[{}]", rendered.join(",")))
    }

    /// Renders the object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Splices two rendered JSON objects into one: `{a…}` + `{b…}` →
/// `{a…,b…}`. Inputs must each be a rendered object (as produced by
/// [`JsonObject::finish`]); keys are not deduplicated — callers keep the
/// namespaces disjoint (the server uses this to append its `server`
/// object to the service's `/stats` body).
pub fn merge_objects(a: &str, b: &str) -> String {
    let inner = |s: &str| -> String {
        s.trim()
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .unwrap_or(s)
            .trim()
            .to_string()
    };
    let (ia, ib) = (inner(a), inner(b));
    match (ia.is_empty(), ib.is_empty()) {
        (true, true) => "{}".to_string(),
        (true, false) => format!("{{{ib}}}"),
        (false, true) => format!("{{{ia}}}"),
        (false, false) => format!("{{{ia},{ib}}}"),
    }
}

/// Extracts the raw value token of a top-level field from JSON produced by
/// [`JsonObject`] — strings come back unquoted (but still escaped),
/// numbers/booleans verbatim. This is a *flat* reader for the service's
/// own output, not a general JSON parser: it scans for the first
/// occurrence of the quoted key at nesting depth ≥ 1 and stops the value
/// at the next unquoted `,`, `}` or `]`.
pub fn get_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{}\":", escape(key));
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    if let Some(quoted) = rest.strip_prefix('"') {
        // String value: scan to the closing unescaped quote.
        let mut escaped = false;
        for (i, b) in quoted.bytes().enumerate() {
            match b {
                b'\\' if !escaped => escaped = true,
                b'"' if !escaped => return Some(&quoted[..i]),
                _ => escaped = false,
            }
        }
        None
    } else {
        let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_render_in_insertion_order() {
        let mut o = JsonObject::new();
        o.str_field("verdict", "finite")
            .u64_field("rules", 3)
            .bool_field("cached", false)
            .f64_field("ms", 1.5);
        assert_eq!(
            o.finish(),
            r#"{"verdict":"finite","rules":3,"cached":false,"ms":1.5}"#
        );
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        let mut o = JsonObject::new();
        o.str_field("error", "bad \"rule\"");
        assert_eq!(o.finish(), r#"{"error":"bad \"rule\""}"#);
    }

    #[test]
    fn arrays_and_raw() {
        let mut o = JsonObject::new();
        o.str_array_field("list", &["r_(1,2)".to_string(), "s_(1,1)".to_string()])
            .raw_field("nested", r#"{"x":1}"#);
        assert_eq!(
            o.finish(),
            r#"{"list":["r_(1,2)","s_(1,1)"],"nested":{"x":1}}"#
        );
    }

    #[test]
    fn get_field_reads_back() {
        let mut o = JsonObject::new();
        o.str_field("verdict", "finite")
            .u64_field("rules", 12)
            .bool_field("cached", true);
        let json = o.finish();
        assert_eq!(get_field(&json, "verdict"), Some("finite"));
        assert_eq!(get_field(&json, "rules"), Some("12"));
        assert_eq!(get_field(&json, "cached"), Some("true"));
        assert_eq!(get_field(&json, "missing"), None);
    }

    #[test]
    fn merge_objects_splices_and_handles_empties() {
        assert_eq!(
            merge_objects(r#"{"a":1}"#, r#"{"b":{"c":2}}"#),
            r#"{"a":1,"b":{"c":2}}"#
        );
        assert_eq!(merge_objects("{}", r#"{"b":2}"#), r#"{"b":2}"#);
        assert_eq!(merge_objects(r#"{"a":1}"#, "{}"), r#"{"a":1}"#);
        assert_eq!(merge_objects("{}", "{}"), "{}");
    }

    #[test]
    fn get_field_handles_escaped_strings() {
        let mut o = JsonObject::new();
        o.str_field("error", "a \"quoted\" thing");
        let json = o.finish();
        assert_eq!(get_field(&json, "error"), Some("a \\\"quoted\\\" thing"));
    }
}
