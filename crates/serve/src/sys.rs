//! Readiness notification for the reactor — a dependency-free wrapper
//! around `poll(2)` on Unix with a portable degraded fallback — plus
//! graceful-shutdown signal handling (SIGTERM/SIGINT → a flag).
//!
//! The workspace denies `unsafe_code`; this module holds the audited
//! exceptions (scoped `allow`s on the FFI below). The surface kept
//! unsafe-free for callers is deliberately tiny: register sockets with
//! read/write interests, block until one is ready (or a timeout), then
//! ask which slots became readable/writable/closed; and for signals,
//! install once and poll a boolean.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; read by [`shutdown_requested`].
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs SIGTERM/SIGINT handlers that set a process-wide shutdown
/// flag (readable via [`shutdown_requested`]) instead of killing the
/// process, so `soct serve` can drain, checkpoint, and flush before
/// exiting. No-op on non-Unix platforms, where the default signal
/// disposition keeps applying.
pub fn install_shutdown_signal() {
    #[cfg(unix)]
    signal::install();
}

/// True once SIGTERM or SIGINT has been received after
/// [`install_shutdown_signal`].
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// One registered socket's interests and readiness results.
#[derive(Clone, Copy, Debug, Default)]
struct Slot {
    // Interests are echoed back as readiness by the non-unix fallback;
    // on unix the kernel decides and these two are write-only.
    #[cfg_attr(unix, allow(dead_code))]
    read: bool,
    #[cfg_attr(unix, allow(dead_code))]
    write: bool,
    readable: bool,
    writable: bool,
    closed: bool,
}

/// A reusable poll set. `clear` + `register_*` each iteration, then
/// `wait`, then query by the slot index `register_*` returned.
#[derive(Debug, Default)]
pub(crate) struct PollSet {
    slots: Vec<Slot>,
    #[cfg(unix)]
    fds: Vec<unix::PollFd>,
}

impl PollSet {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Drops all registrations (capacity is kept across iterations).
    pub(crate) fn clear(&mut self) {
        self.slots.clear();
        #[cfg(unix)]
        self.fds.clear();
    }

    fn push(&mut self, #[cfg(unix)] fd: i32, read: bool, write: bool) -> usize {
        self.slots.push(Slot {
            read,
            write,
            ..Slot::default()
        });
        #[cfg(unix)]
        self.fds.push(unix::PollFd::new(fd, read, write));
        self.slots.len() - 1
    }

    /// Registers a listener for accept-readiness; returns its slot.
    pub(crate) fn register_listener(&mut self, l: &TcpListener) -> usize {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            self.push(l.as_raw_fd(), true, false)
        }
        #[cfg(not(unix))]
        {
            let _ = l;
            self.push(true, false)
        }
    }

    /// Registers a stream with the given interests; returns its slot.
    /// Registering with no interests still reports `closed` (error/hangup).
    pub(crate) fn register_stream(&mut self, s: &TcpStream, read: bool, write: bool) -> usize {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            self.push(s.as_raw_fd(), read, write)
        }
        #[cfg(not(unix))]
        {
            let _ = s;
            self.push(read, write)
        }
    }

    /// Blocks until a registered socket is ready or `timeout_ms` elapses.
    /// `EINTR` is treated as a zero-ready wakeup, not an error.
    pub(crate) fn wait(&mut self, timeout_ms: i32) -> io::Result<()> {
        #[cfg(unix)]
        {
            let ready = unix::poll(&mut self.fds, timeout_ms)?;
            if ready > 0 {
                for (slot, fd) in self.slots.iter_mut().zip(self.fds.iter()) {
                    slot.readable = fd.readable();
                    slot.writable = fd.writable();
                    slot.closed = fd.closed();
                }
            }
            Ok(())
        }
        #[cfg(not(unix))]
        {
            // Degraded portable mode: sleep briefly, then report every
            // interest as ready. All reactor I/O is nonblocking and treats
            // `WouldBlock` as "not actually ready", so optimistic readiness
            // is correct — it merely costs spurious syscalls.
            std::thread::sleep(std::time::Duration::from_millis(
                timeout_ms.clamp(0, 2) as u64
            ));
            for slot in &mut self.slots {
                slot.readable = slot.read;
                slot.writable = slot.write;
                slot.closed = false;
            }
            Ok(())
        }
    }

    pub(crate) fn readable(&self, slot: usize) -> bool {
        self.slots[slot].readable
    }

    pub(crate) fn writable(&self, slot: usize) -> bool {
        self.slots[slot].writable
    }

    /// Error/hangup: the peer is gone in both directions (a half-close
    /// arrives as a readable slot whose read returns 0, not as `closed`).
    pub(crate) fn closed(&self, slot: usize) -> bool {
        self.slots[slot].closed
    }
}

#[cfg(unix)]
#[allow(unsafe_code)] // audited FFI: registering an async-signal-safe flag setter
mod signal {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: core::ffi::c_int = 2;
    const SIGTERM: core::ffi::c_int = 15;

    extern "C" fn on_signal(_sig: core::ffi::c_int) {
        // A relaxed atomic store is async-signal-safe: no locks, no
        // allocation, no reentry into the runtime.
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    mod ffi {
        extern "C" {
            /// `signal(2)` from the platform libc that `std` already
            /// links. The handler is passed and returned as a plain
            /// address (`usize` and a function pointer have identical
            /// size/ABI on every platform std supports).
            pub(super) fn signal(signum: core::ffi::c_int, handler: usize) -> usize;
        }
    }

    pub(super) fn install() {
        // SAFETY: `on_signal` is an `extern "C" fn(c_int)` matching the
        // handler ABI `signal(2)` expects, lives for the whole program,
        // and only performs an async-signal-safe atomic store. The call
        // itself touches no memory owned by Rust.
        let handler = on_signal as *const () as usize;
        unsafe {
            ffi::signal(SIGTERM, handler);
            ffi::signal(SIGINT, handler);
        }
    }
}

#[cfg(unix)]
#[allow(unsafe_code)] // the one poll(2) FFI call; see the safety argument below
mod unix {
    use std::io;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    /// Mirror of `struct pollfd` (POSIX): layout fixed by `repr(C)`.
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub(super) struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    impl PollFd {
        pub(super) fn new(fd: i32, read: bool, write: bool) -> Self {
            let mut events = 0;
            if read {
                events |= POLLIN;
            }
            if write {
                events |= POLLOUT;
            }
            PollFd {
                fd,
                events,
                revents: 0,
            }
        }

        pub(super) fn readable(&self) -> bool {
            self.revents & (POLLIN | POLLHUP) != 0
        }

        pub(super) fn writable(&self) -> bool {
            self.revents & POLLOUT != 0
        }

        pub(super) fn closed(&self) -> bool {
            self.revents & (POLLERR | POLLNVAL) != 0
        }
    }

    mod ffi {
        extern "C" {
            /// `poll(2)` from the platform libc that `std` already links.
            pub(super) fn poll(
                fds: *mut super::PollFd,
                nfds: core::ffi::c_ulong,
                timeout: core::ffi::c_int,
            ) -> core::ffi::c_int;
        }
    }

    /// Safe wrapper: blocks until readiness or timeout, returns the number
    /// of ready descriptors. `EINTR` reads as zero-ready.
    pub(super) fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        for fd in fds.iter_mut() {
            fd.revents = 0;
        }
        // SAFETY: `fds` is a live, exclusively borrowed slice of
        // `repr(C)` pollfd records for the duration of the call;
        // `poll(2)` reads `events` and writes `revents` strictly within
        // `fds.len()` elements and retains no pointer after returning.
        let rc = unsafe {
            ffi::poll(
                fds.as_mut_ptr(),
                fds.len() as core::ffi::c_ulong,
                timeout_ms,
            )
        };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(rc as usize)
    }
}
