//! The bounded job queue between the reactor and the check worker pool,
//! the job table behind `GET /jobs/<id>`, and the server-side metrics
//! (admission counters + per-endpoint latency histograms) surfaced by
//! `GET /stats`.

use crate::json::JsonObject;
use crate::service::TerminationService;
use soct_obs::{Histogram, PromText};
use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use std::{fmt, io};

/// One parsed request waiting for a worker.
#[derive(Debug)]
pub(crate) struct Job {
    pub id: u64,
    pub method: String,
    pub target: String,
    pub body: String,
    pub endpoint: Endpoint,
    pub enqueued: Instant,
}

/// Endpoint classification for the latency histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Endpoint {
    Check,
    Shapes,
    Chase,
    Stats,
    Db,
    Jobs,
    Other,
}

pub(crate) const ENDPOINTS: [Endpoint; 7] = [
    Endpoint::Check,
    Endpoint::Shapes,
    Endpoint::Chase,
    Endpoint::Stats,
    Endpoint::Db,
    Endpoint::Jobs,
    Endpoint::Other,
];

impl Endpoint {
    pub(crate) fn of(path: &str) -> Endpoint {
        match path {
            "/check" => Endpoint::Check,
            "/shapes" => Endpoint::Shapes,
            "/chase" => Endpoint::Chase,
            "/stats" => Endpoint::Stats,
            _ if path.starts_with("/db/") => Endpoint::Db,
            _ if path.starts_with("/jobs") => Endpoint::Jobs,
            _ => Endpoint::Other,
        }
    }

    pub(crate) fn name(self) -> &'static str {
        match self {
            Endpoint::Check => "check",
            Endpoint::Shapes => "shapes",
            Endpoint::Chase => "chase",
            Endpoint::Stats => "stats",
            Endpoint::Db => "db",
            Endpoint::Jobs => "jobs",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Check => 0,
            Endpoint::Shapes => 1,
            Endpoint::Chase => 2,
            Endpoint::Stats => 3,
            Endpoint::Db => 4,
            Endpoint::Jobs => 5,
            Endpoint::Other => 6,
        }
    }
}

/// Lifecycle of a job in the table.
#[derive(Debug)]
pub(crate) enum JobState {
    Queued,
    Running,
    Done { status: u16, body: String },
}

/// The `GET /jobs/<id>` lookup table: every dispatched request gets an
/// entry; completed entries are evicted oldest-first past `capacity`
/// (queued/running entries are never evicted — their count is already
/// bounded by queue depth + workers).
#[derive(Debug)]
pub(crate) struct JobTable {
    jobs: HashMap<u64, JobState>,
    done_order: VecDeque<u64>,
    capacity: usize,
}

impl JobTable {
    pub(crate) fn new(capacity: usize) -> Self {
        JobTable {
            jobs: HashMap::new(),
            done_order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    pub(crate) fn insert_queued(&mut self, id: u64) {
        self.jobs.insert(id, JobState::Queued);
    }

    pub(crate) fn set_running(&mut self, id: u64) {
        if let Some(s) = self.jobs.get_mut(&id) {
            *s = JobState::Running;
        }
    }

    pub(crate) fn complete(&mut self, id: u64, status: u16, body: String) {
        self.jobs.insert(id, JobState::Done { status, body });
        self.done_order.push_back(id);
        while self.done_order.len() > self.capacity {
            if let Some(old) = self.done_order.pop_front() {
                if matches!(self.jobs.get(&old), Some(JobState::Done { .. })) {
                    self.jobs.remove(&old);
                }
            }
        }
    }

    pub(crate) fn get(&self, id: u64) -> Option<&JobState> {
        self.jobs.get(&id)
    }

    /// (queued, running, done) entry counts.
    pub(crate) fn counts(&self) -> (u64, u64, u64) {
        let mut c = (0, 0, 0);
        for s in self.jobs.values() {
            match s {
                JobState::Queued => c.0 += 1,
                JobState::Running => c.1 += 1,
                JobState::Done { .. } => c.2 += 1,
            }
        }
        c
    }
}

/// Queue state under the mutex: FIFO jobs + the shutdown latch.
#[derive(Debug, Default)]
pub(crate) struct QueueState {
    pub q: VecDeque<Job>,
    pub shutdown: bool,
}

/// A finished job travelling back from a worker to the reactor.
#[derive(Debug)]
pub(crate) struct Completion {
    pub job: u64,
    pub status: u16,
    pub body: String,
}

/// Wakes the reactor out of `poll` by writing one byte to the loopback
/// wake connection. Nonblocking: a full pipe means a wakeup is already
/// pending, so dropping the byte is correct.
pub(crate) struct Waker {
    tx: TcpStream,
}

impl fmt::Debug for Waker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Waker")
    }
}

impl Waker {
    pub(crate) fn new(tx: TcpStream) -> Self {
        Waker { tx }
    }

    pub(crate) fn wake(&self) {
        let _ = (&self.tx).write(&[1]);
    }
}

/// Builds the reactor's wake channel: a loopback pair `(tx, rx)`, both
/// nonblocking. `tx` is cloned into every worker and the server handle;
/// `rx` joins the reactor's poll set.
pub(crate) fn waker_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let local = tx.local_addr()?;
    // Accept until we see our own connection, discarding any stranger
    // that raced onto the ephemeral port.
    let rx = loop {
        let (s, peer) = listener.accept()?;
        if peer == local {
            break s;
        }
    };
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    let _ = tx.set_nodelay(true);
    Ok((tx, rx))
}

/// `{"count":…,"p50_us":…,"p90_us":…,"p99_us":…,"max_us":…}` — the
/// `/stats` rendering of a latency [`Histogram`] (the log₂ histogram
/// itself now lives in `soct_obs`; this keeps the wire format
/// byte-identical to when it lived here).
pub(crate) fn histogram_json(h: &Histogram) -> String {
    let snap = h.snapshot();
    let mut o = JsonObject::new();
    o.u64_field("count", snap.count);
    if snap.count > 0 {
        o.u64_field("p50_us", snap.quantile_us(0.50))
            .u64_field("p90_us", snap.quantile_us(0.90))
            .u64_field("p99_us", snap.quantile_us(0.99))
            .u64_field("max_us", snap.max_us);
    }
    o.finish()
}

/// Monotonic server-side counters (the service keeps its own request
/// counters; these cover what only the front end can see).
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Connections turned away with `503` at the connection cap.
    pub refused_503: AtomicU64,
    /// Requests shed with `429` because the job queue was full.
    pub shed_429: AtomicU64,
    /// Requests answered `202 Accepted` (explicit `async=1` or a
    /// deadline conversion).
    pub async_202: AtomicU64,
    /// Malformed-request error responses written by the HTTP layer.
    pub http_errors: AtomicU64,
    hist: [Histogram; 7],
}

impl Metrics {
    pub(crate) fn record(&self, ep: Endpoint, us: u64) {
        self.hist[ep.index()].record_us(us);
    }

    /// Latency object keyed by endpoint name (endpoints with no samples
    /// are omitted).
    pub(crate) fn latency_json(&self) -> String {
        let mut o = JsonObject::new();
        for ep in ENDPOINTS {
            let h = &self.hist[ep.index()];
            if h.count() > 0 {
                o.raw_field(ep.name(), &histogram_json(h));
            }
        }
        o.finish()
    }

    /// Renders the serve-tier families (`soct_serve_*` admission
    /// counters and per-endpoint latency histograms) for `/metrics`.
    pub(crate) fn render_prometheus(&self, out: &mut PromText) {
        out.header(
            "soct_serve_requests_total",
            "counter",
            "Server admission outcomes by kind",
        );
        for (kind, v) in [
            ("accepted", self.accepted.load(Ordering::Relaxed)),
            ("refused_503", self.refused_503.load(Ordering::Relaxed)),
            ("shed_429", self.shed_429.load(Ordering::Relaxed)),
            ("async_202", self.async_202.load(Ordering::Relaxed)),
            ("http_error", self.http_errors.load(Ordering::Relaxed)),
        ] {
            out.sample("soct_serve_requests_total", &[("kind", kind)], v);
        }
        out.header(
            "soct_serve_request_us",
            "histogram",
            "Queue-to-completion request latency (µs) by endpoint",
        );
        for ep in ENDPOINTS {
            let snap = self.hist[ep.index()].snapshot();
            if snap.count > 0 {
                out.histogram_series("soct_serve_request_us", &[("endpoint", ep.name())], &snap);
            }
        }
    }
}

/// Everything the reactor, the workers, and the server handle share.
#[derive(Debug)]
pub(crate) struct Shared {
    pub service: Arc<TerminationService>,
    pub queue: Mutex<QueueState>,
    pub cv: Condvar,
    pub queue_depth: usize,
    pub jobs: Mutex<JobTable>,
    pub completions: Mutex<Vec<Completion>>,
    pub waker: Waker,
    pub metrics: Metrics,
    next_job: AtomicU64,
}

impl Shared {
    pub(crate) fn new(
        service: Arc<TerminationService>,
        queue_depth: usize,
        jobs_capacity: usize,
        waker: Waker,
    ) -> Self {
        Shared {
            service,
            queue: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            queue_depth: queue_depth.max(1),
            jobs: Mutex::new(JobTable::new(jobs_capacity)),
            completions: Mutex::new(Vec::new()),
            waker,
            metrics: Metrics::default(),
            next_job: AtomicU64::new(1),
        }
    }

    pub(crate) fn next_job_id(&self) -> u64 {
        self.next_job.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn take_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().expect("completions poisoned"))
    }

    /// Tells the workers to exit once the queue drains.
    pub(crate) fn shutdown_queue(&self) {
        self.queue.lock().expect("queue poisoned").shutdown = true;
        self.cv.notify_all();
    }
}

/// The worker loop: pop a job, run it through the service, store the
/// result in the job table, hand a completion to the reactor, wake it.
/// A panicking handler (a bug, by definition) is converted into a `500`
/// so the worker — and the connection — survive.
pub(crate) fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(j) = st.q.pop_front() {
                    break j;
                }
                if st.shutdown {
                    return;
                }
                st = shared.cv.wait(st).expect("queue poisoned");
            }
        };
        shared
            .jobs
            .lock()
            .expect("jobs poisoned")
            .set_running(job.id);
        let svc = Arc::clone(&shared.service);
        let (method, target, body) = (job.method, job.target, job.body);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            svc.handle(&method, &target, &body)
        }));
        let (status, body) = result.unwrap_or_else(|_| {
            (
                500,
                "{\"error\":\"internal error: request handler panicked\"}".to_string(),
            )
        });
        let us = job.enqueued.elapsed().as_micros() as u64;
        shared.metrics.record(job.endpoint, us);
        soct_obs::log_info!(
            "serve",
            "event=job_done job={} endpoint={} status={status} us={us}",
            job.id,
            job.endpoint.name()
        );
        shared
            .jobs
            .lock()
            .expect("jobs poisoned")
            .complete(job.id, status, body.clone());
        shared
            .completions
            .lock()
            .expect("completions poisoned")
            .push(Completion {
                job: job.id,
                status,
                body,
            });
        shared.waker.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::get_field;

    #[test]
    fn job_table_evicts_only_done_entries_oldest_first() {
        let mut t = JobTable::new(2);
        for id in 1..=4 {
            t.insert_queued(id);
        }
        t.set_running(1);
        t.complete(1, 200, "{}".into());
        t.complete(2, 200, "{}".into());
        t.complete(3, 200, "{}".into());
        assert!(t.get(1).is_none(), "oldest done entry evicted");
        assert!(matches!(t.get(2), Some(JobState::Done { .. })));
        assert!(matches!(t.get(3), Some(JobState::Done { .. })));
        assert!(matches!(t.get(4), Some(JobState::Queued)));
        assert_eq!(t.counts(), (1, 0, 2));
    }

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record_us(100); // bucket [64,128)
        }
        for _ in 0..10 {
            h.record_us(10_000); // bucket [8192,16384)
        }
        let json = histogram_json(&h);
        assert_eq!(get_field(&json, "count"), Some("100"));
        let p50: u64 = get_field(&json, "p50_us").unwrap().parse().unwrap();
        let p99: u64 = get_field(&json, "p99_us").unwrap().parse().unwrap();
        assert!((100..=128).contains(&p50), "p50 {p50}");
        assert!((10_000..=16_384).contains(&p99), "p99 {p99}");
        assert_eq!(get_field(&json, "max_us"), Some("10000"));
    }

    #[test]
    fn endpoint_classification() {
        assert_eq!(Endpoint::of("/check"), Endpoint::Check);
        assert_eq!(Endpoint::of("/db/insert"), Endpoint::Db);
        assert_eq!(Endpoint::of("/jobs/17"), Endpoint::Jobs);
        assert_eq!(Endpoint::of("/nope"), Endpoint::Other);
    }
}
