//! The event loop: one thread, all sockets. Connections are read and
//! written nonblockingly under `poll` readiness; complete requests are
//! admitted to the bounded job queue (or shed with `429`), cheap
//! introspection routes (`GET /stats`, `GET /jobs/<id>`) are answered
//! inline, and worker completions flow back over the wake channel.
//!
//! Ordering contract: a connection has at most one request in flight at
//! a time — pipelined requests queue in the connection's read buffer
//! and are parsed strictly after the previous response was written, so
//! responses can never reorder. A request that outlives the deadline is
//! answered `202` and its job detached; the connection then advances to
//! the next pipelined request immediately.

use crate::http::{
    parse_request, render_response, render_response_typed, Parse, ParsedRequest, ServerConfig,
    CONTINUE,
};
use crate::json::{merge_objects, JsonObject};
use crate::queue::{Endpoint, Job, JobState, Shared};
use crate::sys::PollSet;
use soct_obs::PromText;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Bytes read per `fill` call before yielding back to the loop, so one
/// firehose connection cannot starve the rest.
const READ_QUANTUM: usize = 256 * 1024;
/// Grace period for draining in-flight responses on shutdown.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// A request dispatched to the queue, still attached to its connection.
struct InFlight {
    job: u64,
    is_head: bool,
    close: bool,
    deadline: Instant,
}

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    inflight: Option<InFlight>,
    continue_sent: bool,
    close_after_flush: bool,
    peer_eof: bool,
    last_active: Instant,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Self {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            inflight: None,
            continue_sent: false,
            close_after_flush: false,
            peer_eof: false,
            last_active: now,
        }
    }

    fn has_pending_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    fn push_response(&mut self, status: u16, body: &str, is_head: bool, close: bool, shed: bool) {
        render_response(&mut self.wbuf, status, body, is_head, close, shed);
        if close {
            self.close_after_flush = true;
        }
    }

    /// [`Conn::push_response`] with an explicit `Content-Type`
    /// (Prometheus text for `/metrics`).
    fn push_response_typed(
        &mut self,
        status: u16,
        content_type: &str,
        body: &str,
        is_head: bool,
        close: bool,
    ) {
        render_response_typed(
            &mut self.wbuf,
            status,
            content_type,
            body,
            is_head,
            close,
            false,
        );
        if close {
            self.close_after_flush = true;
        }
    }

    /// Writes as much of `wbuf` as the socket accepts right now.
    fn flush(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match (&self.stream).write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > 64 * 1024 {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        Ok(())
    }

    /// Reads up to [`READ_QUANTUM`] bytes into `rbuf`. `Ok(true)` means
    /// the peer half-closed (EOF); pending responses still flush.
    fn fill(&mut self) -> io::Result<bool> {
        let mut tmp = [0u8; 16 * 1024];
        let mut taken = 0;
        while taken < READ_QUANTUM {
            match (&self.stream).read(&mut tmp) {
                Ok(0) => return Ok(true),
                Ok(n) => {
                    self.rbuf.extend_from_slice(&tmp[..n]);
                    taken += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(false)
    }
}

fn error_json(msg: &str) -> String {
    let mut o = JsonObject::new();
    o.str_field("error", msg);
    o.finish()
}

fn job_accepted_json(id: u64) -> String {
    let mut o = JsonObject::new();
    o.u64_field("job", id)
        .str_field("poll", &format!("/jobs/{id}"));
    o.finish()
}

fn path_of(target: &str) -> &str {
    target.split_once('?').map_or(target, |(p, _)| p)
}

/// `?async=1` (or bare `?async`) asks for an immediate `202` + job id.
fn wants_async(target: &str) -> bool {
    let Some((_, query)) = target.split_once('?') else {
        return false;
    };
    query
        .split('&')
        .any(|p| matches!(p, "async" | "async=1" | "async=true"))
}

/// Runs the event loop until `stop` is observed; returns after draining
/// in-flight responses (bounded by [`DRAIN_GRACE`]).
pub(crate) fn run_reactor(
    listener: TcpListener,
    shared: &Shared,
    cfg: &ServerConfig,
    stop: &AtomicBool,
    wake_rx: TcpStream,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn: u64 = 0;
    // job id → connection id, for jobs whose response is still owed to a
    // connection (absent for detached/async jobs).
    let mut waiting: HashMap<u64, u64> = HashMap::new();
    let mut set = PollSet::new();
    let mut drain_started: Option<Instant> = None;

    loop {
        let draining = if stop.load(Ordering::SeqCst) {
            Some(*drain_started.get_or_insert_with(Instant::now))
        } else {
            None
        };
        if let Some(since) = draining {
            let idle = waiting.is_empty() && conns.values().all(|c| !c.has_pending_write());
            if idle || since.elapsed() > DRAIN_GRACE {
                break;
            }
        }

        set.clear();
        let listener_slot = if draining.is_none() {
            Some(set.register_listener(&listener))
        } else {
            None
        };
        let wake_slot = set.register_stream(&wake_rx, true, false);
        let mut slots: Vec<(u64, usize)> = Vec::with_capacity(conns.len());
        for (&cid, c) in &conns {
            let want_read = c.inflight.is_none() && !c.peer_eof && draining.is_none();
            slots.push((
                cid,
                set.register_stream(&c.stream, want_read, c.has_pending_write()),
            ));
        }
        let timeout = poll_timeout(&conns, cfg, draining.is_some());
        if set.wait(timeout).is_err() {
            // poll itself failing is unrecoverable; drop everything.
            break;
        }
        let now = Instant::now();

        // 1. Drain the wake channel.
        if set.readable(wake_slot) {
            let mut sink = [0u8; 256];
            while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        }

        // 2. Deliver completions to the connections still waiting.
        for comp in shared.take_completions() {
            let Some(cid) = waiting.remove(&comp.job) else {
                continue; // detached (202 already sent) — result lives in the job table
            };
            let Some(c) = conns.get_mut(&cid) else {
                continue; // connection died while the job ran
            };
            let Some(inf) = c.inflight.take() else {
                continue;
            };
            debug_assert_eq!(inf.job, comp.job);
            c.push_response(comp.status, &comp.body, inf.is_head, inf.close, false);
            c.last_active = now;
            advance(
                c,
                cid,
                shared,
                cfg,
                &mut waiting,
                now,
                conns_len_hint(&slots),
            );
        }

        // 3. Deadline conversions: in-flight too long → 202 + detach.
        for &(cid, _) in &slots {
            let Some(c) = conns.get_mut(&cid) else {
                continue;
            };
            let convert = c.inflight.as_ref().is_some_and(|inf| now >= inf.deadline);
            if convert {
                let inf = c.inflight.take().expect("checked above");
                waiting.remove(&inf.job);
                shared.metrics.async_202.fetch_add(1, Ordering::Relaxed);
                soct_obs::log_info!("serve", "event=deadline_202 job={} conn={cid}", inf.job);
                c.push_response(
                    202,
                    &job_accepted_json(inf.job),
                    inf.is_head,
                    inf.close,
                    false,
                );
                advance(
                    c,
                    cid,
                    shared,
                    cfg,
                    &mut waiting,
                    now,
                    conns_len_hint(&slots),
                );
            }
        }

        // 4. Accept new connections (shedding past the cap with 503).
        if listener_slot.is_some_and(|s| set.readable(s)) {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if conns.len() >= cfg.max_connections {
                            shared.metrics.refused_503.fetch_add(1, Ordering::Relaxed);
                            soct_obs::log_warn!(
                                "serve",
                                "event=refuse_503 conns={} cap={}",
                                conns.len(),
                                cfg.max_connections
                            );
                            let _ = stream.set_nonblocking(true);
                            let mut turn_away = Vec::new();
                            render_response(
                                &mut turn_away,
                                503,
                                &error_json("server at connection capacity"),
                                false,
                                true,
                                true,
                            );
                            let _ = (&stream).write(&turn_away);
                            continue;
                        }
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                        soct_obs::log_info!(
                            "serve",
                            "event=accept conn={next_conn} conns={}",
                            conns.len() + 1
                        );
                        conns.insert(next_conn, Conn::new(stream, now));
                        next_conn += 1;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        // 5. Per-connection I/O.
        let mut dead: Vec<u64> = Vec::new();
        for &(cid, slot) in &slots {
            let Some(c) = conns.get_mut(&cid) else {
                continue;
            };
            if set.closed(slot) {
                dead.push(cid);
                continue;
            }
            if set.writable(slot) {
                if c.flush().is_err() {
                    dead.push(cid);
                    continue;
                }
                c.last_active = now;
            }
            if set.readable(slot) {
                match c.fill() {
                    Err(_) => {
                        dead.push(cid);
                        continue;
                    }
                    Ok(eof) => c.peer_eof = c.peer_eof || eof,
                }
                c.last_active = now;
                advance(
                    c,
                    cid,
                    shared,
                    cfg,
                    &mut waiting,
                    now,
                    conns_len_hint(&slots),
                );
            }
        }
        for cid in dead {
            if let Some(c) = conns.remove(&cid) {
                if let Some(inf) = c.inflight {
                    waiting.remove(&inf.job);
                }
            }
        }

        // 6. Reap finished and idle connections.
        conns.retain(|_, c| {
            let _ = c.flush();
            if c.close_after_flush && !c.has_pending_write() {
                return false;
            }
            if c.peer_eof && c.inflight.is_none() && !c.has_pending_write() {
                return false;
            }
            if c.inflight.is_none()
                && !c.has_pending_write()
                && now.duration_since(c.last_active) > cfg.keep_alive
            {
                return false;
            }
            true
        });
    }
}

/// The number of live connections as of this iteration's registration
/// pass (cheap, and fresh enough for `/stats`).
fn conns_len_hint(slots: &[(u64, usize)]) -> u64 {
    slots.len() as u64
}

/// Poll timeout: tight when a deadline or keep-alive expiry is near,
/// 250 ms otherwise (the wake channel handles all urgent signals).
fn poll_timeout(conns: &HashMap<u64, Conn>, cfg: &ServerConfig, draining: bool) -> i32 {
    let now = Instant::now();
    let mut t: u64 = if draining { 20 } else { 250 };
    for c in conns.values() {
        let next = match &c.inflight {
            Some(inf) => inf.deadline,
            None => c.last_active + cfg.keep_alive,
        };
        let ms = next.saturating_duration_since(now).as_millis() as u64;
        t = t.min(ms.max(1));
    }
    t.min(i32::MAX as u64) as i32
}

/// Parses and dispatches as many pipelined requests as the connection's
/// buffer holds, stopping at the first one that must wait (incomplete
/// bytes or an in-flight job).
#[allow(clippy::too_many_arguments)]
fn advance(
    c: &mut Conn,
    cid: u64,
    shared: &Shared,
    cfg: &ServerConfig,
    waiting: &mut HashMap<u64, u64>,
    now: Instant,
    conn_count: u64,
) {
    while c.inflight.is_none() && !c.close_after_flush {
        match parse_request(&c.rbuf) {
            Parse::Incomplete { needs_continue } => {
                if needs_continue && !c.continue_sent {
                    c.wbuf.extend_from_slice(CONTINUE);
                    c.continue_sent = true;
                }
                break;
            }
            Parse::Bad { status, msg } => {
                shared.metrics.http_errors.fetch_add(1, Ordering::Relaxed);
                c.rbuf.clear();
                c.push_response(status, &error_json(msg), false, true, false);
                break;
            }
            Parse::Done(req, consumed) => {
                c.rbuf.drain(..consumed);
                c.continue_sent = false;
                dispatch(c, cid, req, shared, cfg, waiting, now, conn_count);
            }
        }
    }
    let _ = c.flush(); // opportunistic; write errors surface next poll
}

/// Routes one parsed request: introspection inline, everything else
/// through the bounded queue (or shed).
#[allow(clippy::too_many_arguments)]
fn dispatch(
    c: &mut Conn,
    cid: u64,
    req: ParsedRequest,
    shared: &Shared,
    cfg: &ServerConfig,
    waiting: &mut HashMap<u64, u64>,
    now: Instant,
    conn_count: u64,
) {
    let path = path_of(&req.target);
    let endpoint = Endpoint::of(path);

    // Introspection answers inline from the reactor: these must reflect
    // queue state even (especially) when the queue is saturated.
    if path == "/stats" && req.method == "GET" {
        let body = stats_json(shared, cfg, conn_count);
        shared.metrics.record(Endpoint::Stats, elapsed_us(now));
        c.push_response(200, &body, req.is_head, req.close, false);
        return;
    }
    if path == "/metrics" && req.method == "GET" {
        let body = metrics_text(shared, cfg, conn_count);
        shared.metrics.record(endpoint, elapsed_us(now));
        c.push_response_typed(
            200,
            "text/plain; version=0.0.4",
            &body,
            req.is_head,
            req.close,
        );
        return;
    }
    if let Some(rest) = path.strip_prefix("/jobs/") {
        let (status, body) = if req.method == "GET" {
            job_status_json(shared, rest)
        } else {
            (405, error_json("method not allowed (GET /jobs/<id>)"))
        };
        shared.metrics.record(Endpoint::Jobs, elapsed_us(now));
        c.push_response(status, &body, req.is_head, req.close, false);
        return;
    }
    // Admission control: a full queue sheds instead of buffering.
    let mut q = shared.queue.lock().expect("queue poisoned");
    if q.q.len() >= shared.queue_depth {
        drop(q);
        shared.metrics.shed_429.fetch_add(1, Ordering::Relaxed);
        soct_obs::log_warn!(
            "serve",
            "event=shed_429 endpoint={} depth={}",
            endpoint.name(),
            shared.queue_depth
        );
        c.push_response(
            429,
            &error_json("job queue is full; retry shortly"),
            req.is_head,
            req.close,
            true,
        );
        return;
    }
    let id = shared.next_job_id();
    shared.jobs.lock().expect("jobs poisoned").insert_queued(id);
    q.q.push_back(Job {
        id,
        method: req.method,
        target: req.target.clone(),
        body: req.body,
        endpoint,
        enqueued: now,
    });
    drop(q);
    shared.cv.notify_one();
    soct_obs::log_debug!(
        "serve",
        "event=enqueue job={id} endpoint={} conn={cid}",
        endpoint.name()
    );

    if wants_async(&req.target) || cfg.deadline.is_zero() {
        shared.metrics.async_202.fetch_add(1, Ordering::Relaxed);
        c.push_response(202, &job_accepted_json(id), req.is_head, req.close, false);
    } else {
        waiting.insert(id, cid);
        c.inflight = Some(InFlight {
            job: id,
            is_head: req.is_head,
            close: req.close,
            deadline: now + cfg.deadline,
        });
    }
}

fn elapsed_us(since: Instant) -> u64 {
    since.elapsed().as_micros() as u64
}

/// `GET /jobs/<id>`.
fn job_status_json(shared: &Shared, raw_id: &str) -> (u16, String) {
    let Ok(id) = raw_id.parse::<u64>() else {
        return (400, error_json("job id must be an integer"));
    };
    let jobs = shared.jobs.lock().expect("jobs poisoned");
    match jobs.get(id) {
        None => (
            404,
            error_json(
                "no such job (completed jobs are retained only up to the configured capacity)",
            ),
        ),
        Some(JobState::Queued) => {
            let mut o = JsonObject::new();
            o.u64_field("job", id).str_field("state", "queued");
            (200, o.finish())
        }
        Some(JobState::Running) => {
            let mut o = JsonObject::new();
            o.u64_field("job", id).str_field("state", "running");
            (200, o.finish())
        }
        Some(JobState::Done { status, body }) => {
            let mut o = JsonObject::new();
            o.u64_field("job", id)
                .str_field("state", "done")
                .u64_field("status", u64::from(*status))
                .raw_field("response", body);
            (200, o.finish())
        }
    }
}

/// `GET /stats`: the service's own counters merged with the server
/// object (connections, queue, job states, latency histograms).
fn stats_json(shared: &Shared, cfg: &ServerConfig, conn_count: u64) -> String {
    let queue_len = shared.queue.lock().expect("queue poisoned").q.len() as u64;
    let (queued, running, done) = shared.jobs.lock().expect("jobs poisoned").counts();
    let m = &shared.metrics;
    let mut queue = JsonObject::new();
    queue
        .u64_field("depth", queue_len)
        .u64_field("capacity", shared.queue_depth as u64)
        .u64_field("queued", queued)
        .u64_field("running", running)
        .u64_field("done", done);
    let mut server = JsonObject::new();
    server
        .u64_field("connections", conn_count)
        .u64_field("accepted", m.accepted.load(Ordering::Relaxed))
        .u64_field("refused_503", m.refused_503.load(Ordering::Relaxed))
        .u64_field("shed_429", m.shed_429.load(Ordering::Relaxed))
        .u64_field("async_202", m.async_202.load(Ordering::Relaxed))
        .u64_field("http_errors", m.http_errors.load(Ordering::Relaxed))
        .u64_field("queue_depth_limit", shared.queue_depth as u64)
        .u64_field("max_connections", cfg.max_connections as u64)
        .raw_field("queue", &queue.finish())
        .raw_field("latency_us", &m.latency_json());
    let mut wrap = JsonObject::new();
    wrap.raw_field("server", &server.finish());
    merge_objects(&shared.service.stats_json(), &wrap.finish())
}

/// `GET /metrics`: the full Prometheus text exposition — serve-tier
/// gauges and admission/latency families first, then the service-level
/// (cache, live db) and process-global (chase, storage, checker-phase)
/// families, one body. Answered inline by the reactor so scrapes
/// reflect queue state even when the workers are saturated.
fn metrics_text(shared: &Shared, cfg: &ServerConfig, conn_count: u64) -> String {
    let queue_len = shared.queue.lock().expect("queue poisoned").q.len() as u64;
    let (queued, running, done) = shared.jobs.lock().expect("jobs poisoned").counts();
    let mut out = PromText::new();
    out.gauge("soct_serve_connections", "Open connections", conn_count);
    out.gauge(
        "soct_serve_max_connections",
        "Connection-table cap (refused with 503 past it)",
        cfg.max_connections as u64,
    );
    out.gauge(
        "soct_serve_queue_depth",
        "Undispatched jobs in the bounded queue",
        queue_len,
    );
    out.gauge(
        "soct_serve_queue_capacity",
        "Bounded job-queue depth (shed with 429 past it)",
        shared.queue_depth as u64,
    );
    out.header("soct_serve_jobs", "gauge", "Job-table entries by state");
    for (state, v) in [("queued", queued), ("running", running), ("done", done)] {
        out.sample("soct_serve_jobs", &[("state", state)], v);
    }
    shared.metrics.render_prometheus(&mut out);
    shared.service.metrics_prometheus(&mut out);
    out.finish()
}
