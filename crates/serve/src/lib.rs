//! # soct-serve
//!
//! The termination checkers as a long-running service. The paper's key
//! practical observation — checking factors into a database-independent
//! phase over the ruleset and a database-dependent phase over the shapes
//! — means verdicts are *reusable* across requests that share a ruleset
//! and shape fingerprint. This crate exploits that with three layers:
//!
//! - [`TerminationService`] — the in-process request handler: parses
//!   line-oriented ruleset bodies (`soct_parser` syntax), dispatches to
//!   `soct_core`'s checkers / the chase / `FindShapes`, and fronts every
//!   check with the fingerprint-keyed, LRU-bounded
//!   [`soct_core::VerdictCache`] (optionally persisted across restarts).
//! - [`Server`] — a dependency-free, event-driven HTTP/1.1 front end: a
//!   single poll-based reactor thread owns every socket (keep-alive and
//!   pipelined requests included) and feeds a bounded job queue drained
//!   by a worker pool. Checks that outrun the configured deadline (or
//!   arrive with `?async=1`) are converted to `202 Accepted` with a job
//!   id, pollable at `GET /jobs/<id>`; a full queue sheds load with
//!   `429` + `Retry-After`, and a connection cap answers `503`.
//!   `GET /stats` surfaces queue depth, in-flight counts, and
//!   per-endpoint latency histograms next to the cache counters. Tune
//!   it with [`ServerConfig`] via [`Server::bind_with`].
//! - [`Client`] — a plain-[`std::net::TcpStream`] keep-alive client
//!   (one persistent connection per value, fresh connection per clone)
//!   used by the `soct client` subcommand, CI, and the end-to-end
//!   tests, with `post_async`/`wait_job` helpers for the job flow.
//!
//! Repeated checks of a known ruleset are O(fingerprint + lookup): the
//! db-dependent phase re-runs only when the shape fingerprint changes.
//!
//! ```
//! use soct_serve::{Client, Server, ServiceConfig, TerminationService};
//! use std::sync::Arc;
//!
//! let service = Arc::new(TerminationService::new(ServiceConfig::default()).unwrap());
//! let server = Server::bind("127.0.0.1:0", service, 2).unwrap();
//! let handle = server.start().unwrap();
//!
//! let client = Client::new(handle.addr().to_string());
//! let ruleset = "person(X) -> adv(X, Y).\nadv(X, Y) -> person(Y).\nperson(alice).\n";
//! let first = client.post("/check", ruleset).unwrap();
//! assert!(first.body.contains("\"verdict\":\"infinite\""));
//! assert!(first.body.contains("\"cached\":false"));
//! let second = client.post("/check", ruleset).unwrap();
//! assert!(second.body.contains("\"cached\":true"));
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
mod queue;
mod reactor;
pub mod service;
mod sys;

pub use client::{request, Client, Response};
pub use http::{status_text, Server, ServerConfig, ServerHandle};
pub use json::{escape, get_field, merge_objects, JsonObject};
pub use service::{critical_instance, ServiceConfig, ServiceStats, TerminationService, CACHE_FILE};
pub use sys::{install_shutdown_signal, shutdown_requested};
