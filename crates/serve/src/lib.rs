//! # soct-serve
//!
//! The termination checkers as a long-running service. The paper's key
//! practical observation — checking factors into a database-independent
//! phase over the ruleset and a database-dependent phase over the shapes
//! — means verdicts are *reusable* across requests that share a ruleset
//! and shape fingerprint. This crate exploits that with three layers:
//!
//! - [`TerminationService`] — the in-process request handler: parses
//!   line-oriented ruleset bodies (`soct_parser` syntax), dispatches to
//!   `soct_core`'s checkers / the chase / `FindShapes`, and fronts every
//!   check with the fingerprint-keyed, LRU-bounded
//!   [`soct_core::VerdictCache`] (optionally persisted across restarts).
//! - [`Server`] — a dependency-free HTTP/1.1 front end on
//!   [`std::net::TcpListener`] with a fixed-size acceptor/worker pool,
//!   serving `POST /check`, `POST /shapes`, `POST /chase`, and
//!   `GET /stats` with JSON responses.
//! - [`Client`] — a plain-[`std::net::TcpStream`] client used by the
//!   `soct client` subcommand, CI, and the end-to-end tests.
//!
//! Repeated checks of a known ruleset are O(fingerprint + lookup): the
//! db-dependent phase re-runs only when the shape fingerprint changes.
//!
//! ```
//! use soct_serve::{Client, Server, ServiceConfig, TerminationService};
//! use std::sync::Arc;
//!
//! let service = Arc::new(TerminationService::new(ServiceConfig::default()).unwrap());
//! let server = Server::bind("127.0.0.1:0", service, 2).unwrap();
//! let handle = server.start().unwrap();
//!
//! let client = Client::new(handle.addr().to_string());
//! let ruleset = "person(X) -> adv(X, Y).\nadv(X, Y) -> person(Y).\nperson(alice).\n";
//! let first = client.post("/check", ruleset).unwrap();
//! assert!(first.body.contains("\"verdict\":\"infinite\""));
//! assert!(first.body.contains("\"cached\":false"));
//! let second = client.post("/check", ruleset).unwrap();
//! assert!(second.body.contains("\"cached\":true"));
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
pub mod service;

pub use client::{request, Client, Response};
pub use http::{Server, ServerHandle};
pub use json::{escape, get_field, JsonObject};
pub use service::{critical_instance, ServiceConfig, ServiceStats, TerminationService, CACHE_FILE};
