//! The HTTP/1.1 front end over [`TerminationService`]: a poll-based
//! reactor thread owns every socket (keep-alive, pipelined requests,
//! bounded per-connection buffers) and hands parsed requests to a
//! bounded job queue drained by a fixed check-worker pool. Requests
//! that outlive the configured deadline — or that ask with `?async=1` —
//! are answered `202 Accepted` with a job id pollable at
//! `GET /jobs/<id>`; a full queue sheds load with `429` + `Retry-After`
//! and a full connection table with `503`, instead of accepting
//! unboundedly.
//!
//! This module holds the public server surface ([`Server`],
//! [`ServerConfig`], [`ServerHandle`]) and the HTTP wire code (the
//! incremental request parser and response writer); the event loop
//! itself lives in the private `reactor` module.

use crate::queue::{waker_pair, worker_loop, Shared, Waker};
use crate::reactor::run_reactor;
use crate::service::TerminationService;
use std::fmt::Write as _;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on the header block of one request.
pub(crate) const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Upper bound on a request body (rulesets of a million TGDs fit well
/// under this).
pub(crate) const MAX_BODY_BYTES: usize = 256 * 1024 * 1024;

/// Tuning knobs of a [`Server`]. `Default` is sized for tests and small
/// deployments; `soct serve` exposes the load-bearing ones as flags.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Check worker threads draining the job queue (minimum 1).
    pub workers: usize,
    /// Bounded job-queue depth; a parsed request arriving when the queue
    /// holds this many undispatched jobs is shed with `429`.
    pub queue_depth: usize,
    /// How long a request may hold its connection before the reactor
    /// answers `202 Accepted + {"job": id}` and detaches it. `ZERO`
    /// makes every queued request asynchronous.
    pub deadline: Duration,
    /// Connection-table cap; connections accepted past it are told `503`
    /// and closed immediately.
    pub max_connections: usize,
    /// Idle keep-alive timeout: a connection with no in-flight request
    /// and no traffic for this long is closed.
    pub keep_alive: Duration,
    /// Completed-job results retained for `GET /jobs/<id>` (oldest
    /// evicted first).
    pub jobs_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_depth: 256,
            deadline: Duration::from_secs(10),
            max_connections: 1024,
            keep_alive: Duration::from_secs(30),
            jobs_capacity: 1024,
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    service: Arc<TerminationService>,
    cfg: ServerConfig,
}

impl Server {
    /// Binds to `addr` (e.g. `127.0.0.1:7171`; port `0` lets the OS
    /// pick) with `workers` check threads and default tuning.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<TerminationService>,
        workers: usize,
    ) -> io::Result<Server> {
        Self::bind_with(
            addr,
            service,
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
        )
    }

    /// Binds with explicit [`ServerConfig`] tuning.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        service: Arc<TerminationService>,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service,
            cfg,
        })
    }

    /// The bound address (the source of truth for the port when binding
    /// to port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawns the reactor and worker threads and returns a handle that
    /// can stop them. The calling thread is *not* consumed; use
    /// [`ServerHandle::join`] to block on the server (CLI) or keep the
    /// handle and call [`ServerHandle::shutdown`] (tests).
    pub fn start(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (wake_tx, wake_rx) = waker_pair()?;
        let shared = Arc::new(Shared::new(
            Arc::clone(&self.service),
            self.cfg.queue_depth,
            self.cfg.jobs_capacity,
            Waker::new(wake_tx.try_clone()?),
        ));
        let mut threads = Vec::with_capacity(self.cfg.workers.max(1) + 1);
        for i in 0..self.cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("soct-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let listener = self.listener;
        let cfg = self.cfg;
        let reactor_shared = Arc::clone(&shared);
        let reactor_stop = Arc::clone(&stop);
        threads.push(
            std::thread::Builder::new()
                .name("soct-serve-reactor".to_string())
                .spawn(move || {
                    run_reactor(listener, &reactor_shared, &cfg, &reactor_stop, wake_rx);
                    // Reactor gone: release the workers once the queue
                    // drains, so `join` terminates.
                    reactor_shared.shutdown_queue();
                })?,
        );
        Ok(ServerHandle {
            addr,
            stop,
            waker: Waker::new(wake_tx),
            threads,
        })
    }
}

/// Handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Waker,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server stops (i.e. forever, absent a
    /// [`ServerHandle::shutdown`] from another thread).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Stops accepting, drains in-flight requests (bounded grace), and
    /// joins all threads.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        for t in self.threads {
            let _ = t.join();
        }
    }
}

// ── Wire format ────────────────────────────────────────────────────────

/// A fully parsed request, ready for dispatch.
#[derive(Debug)]
pub(crate) struct ParsedRequest {
    pub method: String,
    pub target: String,
    pub body: String,
    /// `HEAD`: the response head is written, the body suppressed.
    pub is_head: bool,
    /// Close after the response (`Connection: close`, or HTTP/1.0
    /// without `keep-alive`).
    pub close: bool,
}

/// Outcome of one incremental parse attempt over the read buffer.
#[derive(Debug)]
pub(crate) enum Parse {
    /// Need more bytes. `needs_continue` is set when a complete header
    /// block carries `Expect: 100-continue` and the body has not fully
    /// arrived — the caller owes the peer an interim `100 Continue`.
    Incomplete { needs_continue: bool },
    /// One complete request, consuming this many buffer bytes.
    Done(ParsedRequest, usize),
    /// Framing is broken or unsupported: answer and close.
    Bad { status: u16, msg: &'static str },
}

/// Parses at most one request from the front of `buf`. Stateless over
/// the buffer: callers re-invoke as bytes arrive (the header block is
/// capped at [`MAX_HEADER_BYTES`], so re-scanning is bounded).
///
/// Framing hygiene (request-smuggling corpus): duplicate
/// `Content-Length` headers that disagree are `400`, any
/// `Transfer-Encoding` is `501` (length framing only), a non-`GET`/
/// `HEAD` request without a length is `411`, and bodies are checked
/// UTF-8 before dispatch.
pub(crate) fn parse_request(buf: &[u8]) -> Parse {
    let Some((head_end, body_start)) = find_head_end(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return Parse::Bad {
                status: 413,
                msg: "header block too large",
            };
        }
        return Parse::Incomplete {
            needs_continue: false,
        };
    };
    if head_end > MAX_HEADER_BYTES {
        return Parse::Bad {
            status: 413,
            msg: "header block too large",
        };
    }
    let Ok(head) = std::str::from_utf8(&buf[..head_end]) else {
        return Parse::Bad {
            status: 400,
            msg: "header is not UTF-8",
        };
    };
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Parse::Bad {
            status: 400,
            msg: "bad request line",
        };
    };
    if !version.starts_with("HTTP/1.") {
        return Parse::Bad {
            status: 400,
            msg: "unsupported HTTP version",
        };
    }
    let http10 = version == "HTTP/1.0";
    let mut content_length: Option<usize> = None;
    let mut expect_continue = false;
    let mut close = http10;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((k, v)) = line.split_once(':') else {
            return Parse::Bad {
                status: 400,
                msg: "malformed header line",
            };
        };
        let (k, v) = (k.trim(), v.trim());
        if k.eq_ignore_ascii_case("content-length") {
            let Ok(n) = v.parse::<usize>() else {
                return Parse::Bad {
                    status: 400,
                    msg: "bad Content-Length",
                };
            };
            // Smuggling hygiene: duplicates must agree, else reject.
            if content_length.is_some_and(|prev| prev != n) {
                return Parse::Bad {
                    status: 400,
                    msg: "conflicting Content-Length headers",
                };
            }
            content_length = Some(n);
        } else if k.eq_ignore_ascii_case("transfer-encoding") {
            return Parse::Bad {
                status: 501,
                msg: "Transfer-Encoding is not supported; send Content-Length",
            };
        } else if k.eq_ignore_ascii_case("expect") {
            if v.eq_ignore_ascii_case("100-continue") {
                expect_continue = true;
            } else {
                return Parse::Bad {
                    status: 417,
                    msg: "unsupported Expect",
                };
            }
        } else if k.eq_ignore_ascii_case("connection") {
            for tok in v.split(',') {
                let t = tok.trim();
                if t.eq_ignore_ascii_case("close") {
                    close = true;
                } else if t.eq_ignore_ascii_case("keep-alive") && http10 {
                    close = false;
                }
            }
        }
    }
    // A Content-Length on *any* method frames the connection; honour it
    // even for GET/HEAD (the body is simply unused) so keep-alive never
    // desynchronises.
    let body_len = match content_length {
        Some(n) => n,
        None if method == "GET" || method == "HEAD" => 0,
        None => {
            return Parse::Bad {
                status: 411,
                msg: "Content-Length required",
            }
        }
    };
    if body_len > MAX_BODY_BYTES {
        return Parse::Bad {
            status: 413,
            msg: "request body too large",
        };
    }
    let total = body_start + body_len;
    if buf.len() < total {
        return Parse::Incomplete {
            needs_continue: expect_continue,
        };
    }
    let Ok(body) = std::str::from_utf8(&buf[body_start..total]) else {
        return Parse::Bad {
            status: 400,
            msg: "body is not UTF-8",
        };
    };
    Parse::Done(
        ParsedRequest {
            method: method.to_string(),
            target: target.to_string(),
            body: body.to_string(),
            is_head: method == "HEAD",
            close,
        },
        total,
    )
}

/// Finds the end of the header block: `(head_len, body_start)` at the
/// first `\r\n\r\n` or `\n\n`.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if buf.get(i + 1) == Some(&b'\n') {
                return Some((i, i + 2));
            }
            if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
                return Some((i, i + 3));
            }
        }
        i += 1;
    }
    None
}

/// The interim response owed to `Expect: 100-continue`.
pub(crate) const CONTINUE: &[u8] = b"HTTP/1.1 100 Continue\r\n\r\n";

/// The standard reason phrase for the statuses this server emits
/// (anything else renders as `Unknown`, not a misleading
/// `Internal Server Error`).
pub fn status_text(status: u16) -> &'static str {
    match status {
        100 => "Continue",
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        417 => "Expectation Failed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Appends one rendered JSON response to `out`. `is_head` suppresses
/// the body while keeping the true `Content-Length` (RFC 9110 §9.3.2);
/// `retry_after` adds the backpressure hint on shed responses.
pub(crate) fn render_response(
    out: &mut Vec<u8>,
    status: u16,
    body: &str,
    is_head: bool,
    close: bool,
    retry_after: bool,
) {
    render_response_typed(
        out,
        status,
        "application/json",
        body,
        is_head,
        close,
        retry_after,
    );
}

/// [`render_response`] with an explicit `Content-Type` (the `/metrics`
/// endpoint answers Prometheus text, everything else JSON).
#[allow(clippy::too_many_arguments)]
pub(crate) fn render_response_typed(
    out: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    body: &str,
    is_head: bool,
    close: bool,
    retry_after: bool,
) {
    let mut head = String::with_capacity(128);
    let _ = write!(
        head,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status_text(status),
        body.len(),
        if close { "close" } else { "keep-alive" },
    );
    if retry_after {
        head.push_str("Retry-After: 1\r\n");
    }
    head.push_str("\r\n");
    out.extend_from_slice(head.as_bytes());
    if !is_head {
        out.extend_from_slice(body.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Parse {
        parse_request(raw.as_bytes())
    }

    fn expect_done(p: Parse) -> (ParsedRequest, usize) {
        match p {
            Parse::Done(req, n) => (req, n),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    fn expect_bad(p: Parse) -> (u16, &'static str) {
        match p {
            Parse::Bad { status, msg } => (status, msg),
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_post_and_reports_consumed_bytes() {
        let raw = "POST /check HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\nr(a,b).TRAILING";
        let (req, n) = expect_done(parse(raw));
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/check");
        assert_eq!(req.body, "r(a,b).");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(&raw[n..], "TRAILING", "pipelined bytes left in place");
    }

    #[test]
    fn incremental_parse_waits_for_header_and_body() {
        assert!(matches!(
            parse("POST /check HT"),
            Parse::Incomplete {
                needs_continue: false
            }
        ));
        assert!(matches!(
            parse("POST /check HTTP/1.1\r\nContent-Length: 9\r\n\r\nr(a,"),
            Parse::Incomplete {
                needs_continue: false
            }
        ));
    }

    #[test]
    fn expect_continue_is_flagged_only_while_the_body_is_missing() {
        let head = "POST /c HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 4\r\n\r\n";
        assert!(matches!(
            parse(head),
            Parse::Incomplete {
                needs_continue: true
            }
        ));
        let (req, _) = expect_done(parse(&format!("{head}abcd")));
        assert_eq!(req.body, "abcd");
    }

    #[test]
    fn conflicting_content_lengths_are_rejected_agreeing_ones_tolerated() {
        let (status, msg) = expect_bad(parse(
            "POST /c HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 7\r\n\r\n",
        ));
        assert_eq!(status, 400);
        assert!(msg.contains("conflicting"));
        let (req, _) = expect_done(parse(
            "POST /c HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok",
        ));
        assert_eq!(req.body, "ok");
    }

    #[test]
    fn transfer_encoding_is_not_implemented() {
        let (status, _) = expect_bad(parse(
            "POST /c HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
        ));
        assert_eq!(status, 501);
        // Even a length-ish TE spelling is refused, not length-framed.
        let (status, _) = expect_bad(parse(
            "POST /c HTTP/1.1\r\nTransfer-Encoding: identity\r\nContent-Length: 2\r\n\r\nok",
        ));
        assert_eq!(status, 501);
    }

    #[test]
    fn framing_errors() {
        assert_eq!(expect_bad(parse("GARBAGE\r\n\r\n")).0, 400);
        assert_eq!(expect_bad(parse("GET / SPDY/3\r\n\r\n")).0, 400);
        assert_eq!(
            expect_bad(parse("POST /c HTTP/1.1\r\nContent-Length: nope\r\n\r\n")).0,
            400
        );
        assert_eq!(expect_bad(parse("POST /c HTTP/1.1\r\n\r\n")).0, 411);
        assert_eq!(
            expect_bad(parse("POST /c HTTP/1.1\r\nno colon here\r\n\r\n")).0,
            400
        );
        let huge = format!(
            "GET / HTTP/1.1\r\nX: {}\r\n\r\n",
            "a".repeat(MAX_HEADER_BYTES)
        );
        assert_eq!(expect_bad(parse(&huge)).0, 413);
        // An unterminated header block past the cap dies immediately.
        let torrent = "GET / HTTP/1.1\r\nX: ".to_string() + &"a".repeat(MAX_HEADER_BYTES);
        assert_eq!(expect_bad(parse(&torrent)).0, 413);
    }

    #[test]
    fn non_utf8_bodies_are_rejected() {
        let mut raw = b"POST /c HTTP/1.1\r\nContent-Length: 4\r\n\r\n".to_vec();
        raw.extend_from_slice(&[0xff, 0xfe, 0x01, 0x02]);
        let (status, msg) = expect_bad(parse_request(&raw));
        assert_eq!(status, 400);
        assert!(msg.contains("UTF-8"));
    }

    #[test]
    fn connection_semantics_across_versions() {
        let (req, _) = expect_done(parse("GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(req.close);
        let (req, _) = expect_done(parse("GET /stats HTTP/1.0\r\n\r\n"));
        assert!(req.close, "1.0 defaults to close");
        let (req, _) = expect_done(parse(
            "GET /stats HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
        ));
        assert!(!req.close);
    }

    #[test]
    fn get_with_a_content_length_consumes_the_body_for_framing() {
        let raw = "GET /stats HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyzGET";
        let (req, n) = expect_done(parse(raw));
        assert_eq!(req.body, "xyz");
        assert_eq!(&raw[n..], "GET");
    }

    #[test]
    fn lf_only_framing_is_accepted() {
        let (req, n) = expect_done(parse("POST /c HTTP/1.1\nContent-Length: 2\n\nhi"));
        assert_eq!(req.body, "hi");
        assert_eq!(n, "POST /c HTTP/1.1\nContent-Length: 2\n\nhi".len());
    }

    #[test]
    fn head_responses_carry_length_but_no_body() {
        let mut out = Vec::new();
        render_response(&mut out, 200, "{\"a\":1}", true, false, false);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("\r\n\r\n"), "no body after the head: {text}");
    }

    #[test]
    fn shed_responses_carry_retry_after() {
        let mut out = Vec::new();
        render_response(&mut out, 429, "{}", false, false, true);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(
            text.contains("Connection: keep-alive\r\n"),
            "shedding keeps the connection"
        );
    }

    #[test]
    fn status_texts_cover_the_servers_vocabulary() {
        assert_eq!(status_text(202), "Accepted");
        assert_eq!(status_text(429), "Too Many Requests");
        assert_eq!(status_text(503), "Service Unavailable");
        assert_eq!(status_text(501), "Not Implemented");
        assert_eq!(status_text(999), "Unknown");
    }
}
