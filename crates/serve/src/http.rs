//! A dependency-free HTTP/1.1 front end over [`TerminationService`]:
//! one acceptor thread feeding a fixed-size worker pool over an mpsc
//! channel (the `resolve_threads` sizing conventions of
//! `soct_chase::parallel` apply to the pool). Connections are handled
//! one request at a time with `Connection: close` semantics — the
//! protocol surface is four routes returning JSON, not a general web
//! server.

use crate::service::TerminationService;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on the header block of one request.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Upper bound on a request body (rulesets of a million TGDs fit well
/// under this).
const MAX_BODY_BYTES: usize = 256 * 1024 * 1024;
/// Per-connection socket timeout: a stalled peer cannot pin a worker.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    service: Arc<TerminationService>,
    workers: usize,
}

impl Server {
    /// Binds to `addr` (e.g. `127.0.0.1:7171`; port `0` lets the OS pick)
    /// with a pool of `workers` request threads (minimum 1).
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<TerminationService>,
        workers: usize,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service,
            workers: workers.max(1),
        })
    }

    /// The bound address (the source of truth for the port when binding
    /// to port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawns the acceptor and worker threads and returns a handle that
    /// can stop them. The calling thread is *not* consumed; use
    /// [`ServerHandle::join`] to block on the server (CLI) or keep the
    /// handle and call [`ServerHandle::shutdown`] (tests).
    pub fn start(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut threads = Vec::with_capacity(self.workers + 1);
        for i in 0..self.workers {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&self.service);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("soct-serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &service))?,
            );
        }
        let listener = self.listener;
        let stop_acceptor = Arc::clone(&stop);
        threads.push(
            std::thread::Builder::new()
                .name("soct-serve-acceptor".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop_acceptor.load(Ordering::SeqCst) {
                            break;
                        }
                        if let Ok(stream) = conn {
                            // A send only fails when every worker is gone;
                            // nothing useful remains to do then.
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                    }
                    // tx drops here; workers drain the queue and exit.
                })?,
        );
        Ok(ServerHandle {
            addr,
            stop,
            threads,
        })
    }
}

/// Handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server stops (i.e. forever, absent a
    /// [`ServerHandle::shutdown`] from another thread).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Stops accepting, drains in-flight requests, and joins all threads.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // The acceptor is parked in accept(); one throwaway connection
        // wakes it to observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn worker_loop(rx: &Mutex<mpsc::Receiver<TcpStream>>, service: &TerminationService) {
    loop {
        let stream = match rx.lock().expect("worker queue poisoned").recv() {
            Ok(s) => s,
            Err(_) => return, // acceptor gone: shut down
        };
        // Errors on one connection (bad request framing, peer reset) are
        // answered where possible and never take the worker down.
        let _ = handle_connection(stream, service);
    }
}

fn handle_connection(stream: TcpStream, service: &TerminationService) -> io::Result<()> {
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let (status, body) = match read_request(&mut reader) {
        Ok(req) => service.handle(&req.method, &req.target, &req.body),
        Err(RequestError::Malformed(msg)) => (400, format!("{{\"error\":\"{msg}\"}}")),
        Err(RequestError::TooLarge) => (413, "{\"error\":\"request too large\"}".to_string()),
        Err(RequestError::LengthRequired) => {
            (411, "{\"error\":\"Content-Length required\"}".to_string())
        }
        Err(RequestError::Io(e)) => return Err(e),
    };
    write_response(reader.get_mut(), status, &body)
}

struct Request {
    method: String,
    target: String,
    body: String,
}

enum RequestError {
    Malformed(&'static str),
    TooLarge,
    LengthRequired,
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, RequestError> {
    let mut line = String::new();
    take_line(reader, &mut line)?;
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(RequestError::Malformed("bad request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed("unsupported HTTP version"));
    }
    let method = method.to_string();
    let target = target.to_string();

    let mut content_length: Option<usize> = None;
    let mut header_bytes = 0usize;
    loop {
        take_line(reader, &mut line)?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(RequestError::TooLarge);
        }
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    v.trim()
                        .parse()
                        .map_err(|_| RequestError::Malformed("bad Content-Length"))?,
                );
            }
        }
    }

    let body = if method == "GET" || method == "HEAD" {
        String::new()
    } else {
        let len = content_length.ok_or(RequestError::LengthRequired)?;
        if len > MAX_BODY_BYTES {
            return Err(RequestError::TooLarge);
        }
        let mut buf = vec![0u8; len];
        reader.read_exact(&mut buf)?;
        String::from_utf8(buf).map_err(|_| RequestError::Malformed("body is not UTF-8"))?
    };
    Ok(Request {
        method,
        target,
        body,
    })
}

/// Reads one CRLF- (or LF-) terminated line into `line`, trimmed. The
/// length cap is enforced *while* reading — `read_line` would buffer a
/// newline-free stream in its entirety before any post-hoc check, letting
/// one hostile connection grow a line without bound.
fn take_line(reader: &mut BufReader<TcpStream>, line: &mut String) -> Result<(), RequestError> {
    line.clear();
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            if buf.is_empty() {
                return Err(RequestError::Malformed("connection closed mid-request"));
            }
            break; // EOF mid-line: surface what we have; parsing fails later
        }
        let (taken, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (chunk.len(), false),
        };
        buf.extend_from_slice(&chunk[..taken]);
        reader.consume(taken);
        if buf.len() > MAX_HEADER_BYTES {
            return Err(RequestError::TooLarge);
        }
        if done {
            break;
        }
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    *line = String::from_utf8(buf).map_err(|_| RequestError::Malformed("header is not UTF-8"))?;
    Ok(())
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        _ => "Internal Server Error",
    }
}

fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_text(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
