//! A blocking keep-alive client for the service's wire protocol, on a
//! plain [`TcpStream`] — used by `soct client`, CI, the end-to-end
//! tests, and the `serve_throughput` bench.
//!
//! Each [`Client`] value holds at most one persistent connection and
//! reuses it across requests (responses are `Content-Length`-framed, so
//! the stream stays synchronised). Cloning a client clones the address,
//! *not* the connection — clones open their own socket, so handing
//! clones to threads yields one connection per thread. A request that
//! fails on a reused connection (the server may have reaped an idle
//! keep-alive) is retried once on a fresh connection.

use crate::json::get_field;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-request socket timeout.
const TIMEOUT: Duration = Duration::from_secs(60);
/// Poll interval of [`Client::wait_job`].
const JOB_POLL_INTERVAL: Duration = Duration::from_millis(10);

/// One parsed HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// The status code of the status line.
    pub status: u16,
    /// The response body (the service always sends JSON).
    pub body: String,
}

impl Response {
    /// True for 2xx statuses.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A client bound to one server address, holding one reusable
/// keep-alive connection.
#[derive(Debug)]
pub struct Client {
    addr: String,
    conn: Mutex<Option<TcpStream>>,
}

impl Clone for Client {
    /// Clones the address only — the clone opens its own connection.
    fn clone(&self) -> Self {
        Client::new(self.addr.clone())
    }
}

impl Client {
    /// Creates a client for `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            conn: Mutex::new(None),
        }
    }

    /// Sends `GET path`.
    pub fn get(&self, path: &str) -> io::Result<Response> {
        self.send("GET", path, "")
    }

    /// Sends `POST path` with `body`.
    pub fn post(&self, path: &str, body: &str) -> io::Result<Response> {
        self.send("POST", path, body)
    }

    /// Sends `POST path?async=1`, returning the job id from the `202`
    /// response. Poll it with [`Client::job`] or [`Client::wait_job`].
    pub fn post_async(&self, path: &str, body: &str) -> io::Result<u64> {
        let sep = if path.contains('?') { '&' } else { '?' };
        let resp = self.post(&format!("{path}{sep}async=1"), body)?;
        if resp.status != 202 {
            return Err(invalid(format!(
                "expected 202 Accepted, got {}: {}",
                resp.status, resp.body
            )));
        }
        get_field(&resp.body, "job")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| invalid(format!("no job id in 202 response: {}", resp.body)))
    }

    /// Fetches `GET /jobs/<id>` once.
    pub fn job(&self, id: u64) -> io::Result<Response> {
        self.get(&format!("/jobs/{id}"))
    }

    /// Polls `GET /jobs/<id>` until the job reports `"state":"done"`
    /// (returning the full job envelope, original response nested under
    /// `response`), the server answers non-200, or `timeout` elapses.
    pub fn wait_job(&self, id: u64, timeout: Duration) -> io::Result<Response> {
        let start = Instant::now();
        loop {
            let resp = self.job(id)?;
            if resp.status != 200 || get_field(&resp.body, "state") == Some("done") {
                return Ok(resp);
            }
            if start.elapsed() > timeout {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("job {id} not done within {timeout:?}"),
                ));
            }
            std::thread::sleep(JOB_POLL_INTERVAL);
        }
    }

    /// One keep-alive request/response exchange, reconnecting once if a
    /// reused connection turns out stale. A failed *fresh* connection is
    /// a real error and surfaces.
    fn send(&self, method: &str, path: &str, body: &str) -> io::Result<Response> {
        let mut guard = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(stream) = guard.take() {
            if let Ok((resp, close)) = exchange(&stream, &self.addr, method, path, body) {
                if !close {
                    *guard = Some(stream);
                }
                return Ok(resp);
            }
            // Stale keep-alive connection: fall through to a fresh one.
        }
        let stream = connect(&self.addr)?;
        let (resp, close) = exchange(&stream, &self.addr, method, path, body)?;
        if !close {
            *guard = Some(stream);
        }
        Ok(resp)
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn connect(addr: &str) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(TIMEOUT))?;
    stream.set_write_timeout(Some(TIMEOUT))?;
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

/// Writes one request and reads one framed response off `stream`.
/// Returns the response and whether the server asked to close.
fn exchange(
    stream: &TcpStream,
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<(Response, bool)> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let mut w = stream;
    w.write_all(head.as_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()?;
    // A fresh BufReader per exchange is sound under strict
    // request→response alternation: the server sends nothing
    // unsolicited, so the reader can never buffer past this response.
    read_response(&mut BufReader::new(stream))
}

/// Reads one `Content-Length`-framed response, skipping interim 1xx
/// responses (e.g. `100 Continue`).
pub(crate) fn read_response(r: &mut impl BufRead) -> io::Result<(Response, bool)> {
    loop {
        let status_line = read_crlf_line(r)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| invalid(format!("bad status line: {status_line:?}")))?;
        let mut content_length: Option<usize> = None;
        let mut close = false;
        loop {
            let line = read_crlf_line(r)?;
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                let (k, v) = (k.trim(), v.trim());
                if k.eq_ignore_ascii_case("content-length") {
                    content_length = v.parse().ok();
                } else if k.eq_ignore_ascii_case("connection") && v.eq_ignore_ascii_case("close") {
                    close = true;
                }
            }
        }
        if (100..200).contains(&status) {
            continue; // interim response: no body, the real one follows
        }
        let len =
            content_length.ok_or_else(|| invalid("response has no Content-Length".to_string()))?;
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf)?;
        let body =
            String::from_utf8(buf).map_err(|_| invalid("response is not UTF-8".to_string()))?;
        return Ok((Response { status, body }, close));
    }
}

fn read_crlf_line(r: &mut impl BufRead) -> io::Result<String> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// One-shot request against `addr` on a fresh `Connection: close`
/// connection — the pre-keep-alive wire path, kept for tools that want
/// strict request isolation (and as the bench's `close` baseline).
pub fn request(addr: &str, method: &str, path: &str, body: &str) -> io::Result<Response> {
    let stream = connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let mut w = &stream;
    w.write_all(head.as_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()?;
    let (resp, _close) = read_response(&mut BufReader::new(&stream))?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_bytes(raw: &[u8]) -> io::Result<(Response, bool)> {
        read_response(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 13\r\nConnection: keep-alive\r\n\r\n{\"verdict\":1}";
        let (r, close) = parse_bytes(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "{\"verdict\":1}");
        assert!(r.is_ok());
        assert!(!close);
    }

    #[test]
    fn content_length_frames_the_body_exactly() {
        let raw =
            b"HTTP/1.1 400 Bad Request\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}NEXT";
        let (r, close) = parse_bytes(raw).unwrap();
        assert_eq!(r.status, 400);
        assert_eq!(r.body, "{}");
        assert!(close);
        assert!(!r.is_ok());
    }

    #[test]
    fn interim_100_continue_is_skipped() {
        let raw = b"HTTP/1.1 100 Continue\r\n\r\nHTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
        let (r, _) = parse_bytes(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "ok");
    }

    #[test]
    fn malformed_responses_error() {
        assert!(parse_bytes(b"").is_err());
        assert!(parse_bytes(b"HTTP/1.1 OK\r\n\r\n").is_err());
        assert!(
            parse_bytes(b"HTTP/1.1 200 OK\r\n\r\n").is_err(),
            "no Content-Length"
        );
    }
}
