//! A minimal blocking client for the service's wire protocol, on a plain
//! [`TcpStream`] — used by `soct client`, CI, and the end-to-end tests.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Per-request socket timeout.
const TIMEOUT: Duration = Duration::from_secs(60);

/// One parsed HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// The status code of the status line.
    pub status: u16,
    /// The response body (the service always sends JSON).
    pub body: String,
}

impl Response {
    /// True for 2xx statuses.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A client bound to one server address.
#[derive(Clone, Debug)]
pub struct Client {
    addr: String,
}

impl Client {
    /// Creates a client for `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Self {
        Client { addr: addr.into() }
    }

    /// Sends `GET path`.
    pub fn get(&self, path: &str) -> io::Result<Response> {
        request(&self.addr, "GET", path, "")
    }

    /// Sends `POST path` with `body`.
    pub fn post(&self, path: &str, body: &str) -> io::Result<Response> {
        request(&self.addr, "POST", path, body)
    }
}

/// One-shot request against `addr`. Opens a fresh connection per request
/// (the server speaks `Connection: close`).
pub fn request(addr: &str, method: &str, path: &str, body: &str) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(TIMEOUT))?;
    stream.set_write_timeout(Some(TIMEOUT))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> io::Result<Response> {
    let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let text = std::str::from_utf8(raw).map_err(|_| err("response is not UTF-8"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .or_else(|| text.split_once("\n\n"))
        .ok_or_else(|| err("no header/body separator in response"))?;
    let status_line = head.lines().next().ok_or_else(|| err("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err("bad status line"))?;
    // `Connection: close` + read_to_end means the body is simply the rest;
    // honour Content-Length when present in case of trailing bytes.
    let body = match head
        .lines()
        .find_map(|l| {
            l.split_once(':')
                .filter(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
        })
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
    {
        Some(len) if len <= body.len() => &body[..len],
        _ => body,
    };
    Ok(Response {
        status,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 13\r\n\r\n{\"verdict\":1}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "{\"verdict\":1}");
        assert!(r.is_ok());
    }

    #[test]
    fn content_length_truncates_trailing_bytes() {
        let raw = b"HTTP/1.1 400 Bad Request\r\nContent-Length: 2\r\n\r\n{}garbage";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 400);
        assert_eq!(r.body, "{}");
        assert!(!r.is_ok());
    }

    #[test]
    fn malformed_responses_error() {
        assert!(parse_response(b"").is_err());
        assert!(parse_response(b"HTTP/1.1 OK\r\n\r\n").is_err());
        assert!(parse_response(b"no separator at all").is_err());
    }
}
