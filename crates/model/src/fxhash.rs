//! A fast, non-cryptographic hasher for the hot paths of the chase and the
//! termination checkers.
//!
//! The algorithm is the well-known "Fx" hash used by the Rust compiler
//! (a multiply-rotate-xor combiner). The offline dependency set of this
//! repository does not include `rustc-hash`, and the keys we hash are short
//! (interned ids, small term tuples), which is exactly the regime where
//! SipHash — the standard library default — is needlessly slow. HashDoS is
//! not a concern: all inputs are produced by our own interners/generators.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Rotate-multiply-xor hasher; processes input one word at a time.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` replacement keyed with the Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` replacement keyed with the Fx hash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Convenience constructor mirroring `HashMap::with_capacity`.
pub fn map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Convenience constructor mirroring `HashSet::with_capacity`.
pub fn set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(t: &T) -> u64 {
        FxBuildHasher::default().hash_one(t)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(hash_one(&"hello"), hash_one(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
        assert_ne!(hash_one(&(1u32, 2u32)), hash_one(&(2u32, 1u32)));
    }

    #[test]
    fn handles_unaligned_tails() {
        // 9 bytes exercises the chunk + remainder path.
        let a: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 9];
        let b: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 10];
        assert_ne!(hash_one(&a), hash_one(&b));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = map_with_capacity(4);
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u32> = set_with_capacity(4);
        s.insert(7);
        assert!(s.contains(&7));
    }
}
