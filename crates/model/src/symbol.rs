//! String interning for constants and variable names.
//!
//! All algorithms in this workspace operate on dense `u32` ids; strings exist
//! only at the parsing/printing boundary. The interner hands out ids in
//! insertion order, so ids can double as indices into side tables.

use crate::fxhash::FxHashMap;
use std::fmt;

/// An interned symbol (a constant name or a variable name).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SymbolId(pub u32);

impl SymbolId {
    /// The id as a usize, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

/// A bidirectional string ↔ [`SymbolId`] table.
#[derive(Default, Clone, Debug)]
pub struct Interner {
    names: Vec<Box<str>>,
    ids: FxHashMap<Box<str>, SymbolId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = SymbolId(
            u32::try_from(self.names.len()).expect("interner overflow: more than 2^32 symbols"),
        );
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.ids.insert(boxed, id);
        id
    }

    /// Looks up an already-interned symbol without inserting.
    pub fn get(&self, name: &str) -> Option<SymbolId> {
        self.ids.get(name).copied()
    }

    /// Resolves an id back to its string. Panics on a foreign id.
    pub fn resolve(&self, id: SymbolId) -> &str {
        &self.names[id.index()]
    }

    /// Resolves an id if it belongs to this interner.
    pub fn try_resolve(&self, id: SymbolId) -> Option<&str> {
        self.names.get(id.index()).map(|s| &**s)
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no symbol has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SymbolId(i as u32), &**n))
    }

    /// Interns `count` fresh symbols `prefix0..prefix{count-1}` and returns
    /// their ids. Used by the generators to mint constant pools quickly.
    pub fn intern_numbered(&mut self, prefix: &str, count: usize) -> Vec<SymbolId> {
        let mut out = Vec::with_capacity(count);
        let mut buf = String::with_capacity(prefix.len() + 12);
        for i in 0..count {
            buf.clear();
            buf.push_str(prefix);
            buf.push_str(itoa(i).as_str());
            out.push(self.intern(&buf));
        }
        out
    }
}

/// Minimal integer-to-string helper avoiding `format!` allocations in loops.
fn itoa(mut v: usize) -> String {
    if v == 0 {
        return "0".to_string();
    }
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    while v > 0 {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
    }
    std::str::from_utf8(&buf[i..]).unwrap().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = Interner::new();
        let a = it.intern("alice");
        let b = it.intern("bob");
        assert_ne!(a, b);
        assert_eq!(it.intern("alice"), a);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut it = Interner::new();
        let a = it.intern("x");
        assert_eq!(it.resolve(a), "x");
        assert_eq!(it.get("x"), Some(a));
        assert_eq!(it.get("y"), None);
        assert_eq!(it.try_resolve(SymbolId(99)), None);
    }

    #[test]
    fn numbered_symbols_are_distinct() {
        let mut it = Interner::new();
        let ids = it.intern_numbered("c", 100);
        assert_eq!(ids.len(), 100);
        assert_eq!(it.resolve(ids[0]), "c0");
        assert_eq!(it.resolve(ids[99]), "c99");
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), 100);
    }

    #[test]
    fn iter_in_insertion_order() {
        let mut it = Interner::new();
        it.intern("p");
        it.intern("q");
        let names: Vec<&str> = it.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["p", "q"]);
    }
}
