//! Terms: constants, labelled nulls, and variables (§2 of the paper).
//!
//! The three countably infinite sets C, N, V are modelled as disjoint `u32`
//! id spaces. A [`Term`] is a tagged id and fits in 8 bytes; atoms therefore
//! store their arguments in a compact `Box<[Term]>`.

use crate::symbol::SymbolId;
use std::fmt;

/// Id of a constant (an element of C). Constants are interned strings; the
/// id is the [`SymbolId`] of the name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ConstId(pub u32);

/// Id of a labelled null (an element of N). Nulls are minted by the chase;
/// see `soct-chase::null_gen` for the canonical naming scheme
/// `⊥^x_{σ, h|fr(σ)}`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NullId(pub u32);

/// Id of a variable (an element of V). Variable ids are scoped to a single
/// TGD or query; distinct rules may reuse ids.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

impl ConstId {
    /// The underlying symbol of this constant's name.
    #[inline]
    pub fn symbol(self) -> SymbolId {
        SymbolId(self.0)
    }

    /// Constructs from an interned symbol.
    #[inline]
    pub fn from_symbol(s: SymbolId) -> Self {
        ConstId(s.0)
    }
}

impl VarId {
    /// The id as a dense `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NullId {
    /// The id as a dense `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term: constant, null, or variable (§2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A constant from C.
    Const(ConstId),
    /// A labelled null from N.
    Null(NullId),
    /// A variable from V.
    Var(VarId),
}

impl Term {
    /// True for constants.
    #[inline]
    pub fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// True for nulls.
    #[inline]
    pub fn is_null(self) -> bool {
        matches!(self, Term::Null(_))
    }

    /// True for variables.
    #[inline]
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// True for constants and nulls — the values allowed in instances
    /// (`dom(I) ⊆ C ∪ N`).
    #[inline]
    pub fn is_ground(self) -> bool {
        !self.is_var()
    }

    /// The variable id, if this is a variable.
    #[inline]
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }

    /// The constant id, if this is a constant.
    #[inline]
    pub fn as_const(self) -> Option<ConstId> {
        match self {
            Term::Const(c) => Some(c),
            _ => None,
        }
    }

    /// A dense, order-preserving 2-bit tag used by storage encodings.
    #[inline]
    pub fn tag(self) -> u8 {
        match self {
            Term::Const(_) => 0,
            Term::Null(_) => 1,
            Term::Var(_) => 2,
        }
    }

    /// The raw id payload.
    #[inline]
    pub fn raw(self) -> u32 {
        match self {
            Term::Const(ConstId(x)) | Term::Null(NullId(x)) | Term::Var(VarId(x)) => x,
        }
    }

    /// Packs the term into a single `u64` (tag in the high bits). This is the
    /// storage-engine encoding; see `soct-storage`.
    #[inline]
    pub fn pack(self) -> u64 {
        ((self.tag() as u64) << 32) | self.raw() as u64
    }

    /// Inverse of [`Term::pack`]. Returns `None` for an invalid tag.
    #[inline]
    pub fn unpack(v: u64) -> Option<Term> {
        let raw = (v & 0xFFFF_FFFF) as u32;
        match v >> 32 {
            0 => Some(Term::Const(ConstId(raw))),
            1 => Some(Term::Null(NullId(raw))),
            2 => Some(Term::Var(VarId(raw))),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "c{}", c.0),
            Term::Null(n) => write!(f, "_:n{}", n.0),
            Term::Var(v) => write!(f, "X{}", v.0),
        }
    }
}

impl From<ConstId> for Term {
    fn from(c: ConstId) -> Self {
        Term::Const(c)
    }
}

impl From<NullId> for Term {
    fn from(n: NullId) -> Self {
        Term::Null(n)
    }
}

impl From<VarId> for Term {
    fn from(v: VarId) -> Self {
        Term::Var(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(Term::Const(ConstId(0)).is_const());
        assert!(Term::Null(NullId(0)).is_null());
        assert!(Term::Var(VarId(0)).is_var());
        assert!(Term::Const(ConstId(0)).is_ground());
        assert!(Term::Null(NullId(0)).is_ground());
        assert!(!Term::Var(VarId(0)).is_ground());
    }

    #[test]
    fn same_raw_different_kind_are_distinct() {
        let c = Term::Const(ConstId(5));
        let n = Term::Null(NullId(5));
        let v = Term::Var(VarId(5));
        assert_ne!(c, n);
        assert_ne!(n, v);
        assert_ne!(c, v);
    }

    #[test]
    fn pack_round_trips() {
        for t in [
            Term::Const(ConstId(0)),
            Term::Const(ConstId(u32::MAX)),
            Term::Null(NullId(17)),
            Term::Var(VarId(1234)),
        ] {
            assert_eq!(Term::unpack(t.pack()), Some(t));
        }
        assert_eq!(Term::unpack(3 << 32), None);
    }

    #[test]
    fn term_is_small() {
        assert!(std::mem::size_of::<Term>() <= 8);
    }
}
