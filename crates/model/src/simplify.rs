//! The simplification technique (§3, Def. 3.5): converting linear TGDs into
//! simple-linear TGDs over *shape predicates* while preserving finiteness of
//! the chase (Theorem 3.6).
//!
//! `simple(α)` of an atom `α = R(t̄)` is `R_{id(t̄)}(unique(t̄))`: a fresh
//! predicate per shape, applied to the first occurrences of the terms. A
//! *specialization* `f` of the body tuple partially identifies variables;
//! `simple(σ)` collects the simplifications of a linear TGD under all
//! specializations (static simplification — exponential), while dynamic
//! simplification (`soct-core::dynsimpl`) only instantiates the
//! specializations whose body shape is actually derivable from the database.

use crate::atom::Atom;
use crate::error::ModelError;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::instance::Instance;
use crate::schema::{PredId, Schema};
use crate::shape::{Rgs, Shape};
use crate::term::{Term, VarId};
use crate::tgd::Tgd;

/// Interner of shape predicates `R_{id(t̄)}` into a derived [`Schema`].
///
/// The derived schema is disjoint from the base schema; a shape with `k`
/// blocks becomes a predicate of arity `k` named `R#i1_i2_…`.
#[derive(Default, Clone, Debug)]
pub struct ShapeInterner {
    schema: Schema,
    map: FxHashMap<Shape, PredId>,
    origins: Vec<Shape>,
}

impl ShapeInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a shape, returning its predicate in the derived schema.
    pub fn intern(&mut self, shape: Shape, base: &Schema) -> PredId {
        if let Some(&p) = self.map.get(&shape) {
            return p;
        }
        let mut name = String::with_capacity(16);
        name.push_str(base.name(shape.pred));
        name.push('#');
        for (i, id) in shape.rgs.ids().iter().enumerate() {
            if i > 0 {
                name.push('_');
            }
            name.push_str(&id.to_string());
        }
        let arity = shape.simple_arity();
        let p = self
            .schema
            .add_predicate(&name, arity)
            .expect("derived shape predicate is fresh and has positive arity");
        self.map.insert(shape.clone(), p);
        self.origins.push(shape);
        p
    }

    /// Looks up an already-interned shape.
    pub fn get(&self, shape: &Shape) -> Option<PredId> {
        self.map.get(shape).copied()
    }

    /// The derived schema of shape predicates.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The shape a derived predicate came from.
    pub fn origin(&self, p: PredId) -> &Shape {
        &self.origins[p.index()]
    }

    /// Number of interned shapes.
    pub fn len(&self) -> usize {
        self.origins.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.origins.is_empty()
    }
}

/// `simple(α)`: simplifies one atom into the derived schema.
pub fn simplify_atom(interner: &mut ShapeInterner, base: &Schema, atom: &Atom) -> Atom {
    let shape = Shape::of_atom(atom);
    let terms: Vec<Term> = shape
        .rgs
        .block_representatives()
        .into_iter()
        .map(|i| atom.terms[i])
        .collect();
    let pred = interner.intern(shape, base);
    Atom::new_unchecked(pred, terms)
}

/// `simple(D)`: simplifies every atom of an instance.
pub fn simplify_instance(
    interner: &mut ShapeInterner,
    base: &Schema,
    instance: &Instance,
) -> Instance {
    let mut out = Instance::new();
    for a in instance.atoms() {
        out.insert(simplify_atom(interner, base, a));
    }
    out
}

/// A specialization `f` of a variable tuple: maps each distinct body
/// variable to a representative (Def. 3.5). Identity on variables outside
/// its domain (in particular, on existential head variables).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Specialization {
    map: FxHashMap<VarId, VarId>,
}

impl Specialization {
    /// Builds the specialization of `distinct_vars` induced by a partition
    /// `rgs` of those variables: variables in the same block map to the
    /// block's first variable.
    pub fn from_rgs(distinct_vars: &[VarId], rgs: &Rgs) -> Specialization {
        debug_assert_eq!(distinct_vars.len(), rgs.len());
        let reps = rgs.block_representatives();
        let ids = rgs.ids();
        let mut map = FxHashMap::default();
        for (i, &v) in distinct_vars.iter().enumerate() {
            let block = ids[i] as usize - 1;
            map.insert(v, distinct_vars[reps[block]]);
        }
        Specialization { map }
    }

    /// The identity specialization on `distinct_vars`.
    pub fn identity(distinct_vars: &[VarId]) -> Specialization {
        Specialization::from_rgs(distinct_vars, &Rgs::identity(distinct_vars.len()))
    }

    /// `f(x)`; identity outside the domain.
    #[inline]
    pub fn apply(&self, v: VarId) -> VarId {
        self.map.get(&v).copied().unwrap_or(v)
    }

    /// Applies `f` position-wise to a term tuple (variables only are
    /// affected).
    pub fn apply_terms(&self, terms: &[Term]) -> Vec<Term> {
        terms
            .iter()
            .map(|&t| match t {
                Term::Var(v) => Term::Var(self.apply(v)),
                other => other,
            })
            .collect()
    }
}

/// The *h-specialization* (§4.2): given the body tuple of a linear TGD and a
/// target shape `R_{ī}` ∈ `DB[S]`, there is at most one homomorphism `h` from
/// `{R(x̄)}` to `{R(ī)}` — the positional one — and it exists iff equal body
/// variables sit at positions with equal ids (the shape's partition coarsens
/// the body's repetition pattern). Returns the induced specialization
/// (`f(xᵢ) = f(xⱼ)` iff `h(xᵢ) = h(xⱼ)`), or `None` if no homomorphism
/// exists.
pub fn h_specialization(body_terms: &[Term], shape_rgs: &Rgs) -> Option<Specialization> {
    debug_assert_eq!(body_terms.len(), shape_rgs.len());
    let body_rgs = Rgs::of_terms(body_terms);
    if !shape_rgs.coarsens(&body_rgs) {
        return None;
    }
    // Distinct variables in first-occurrence order, and for each its id
    // under the target shape.
    let shape_ids = shape_rgs.ids();
    let mut distinct: Vec<VarId> = Vec::new();
    let mut var_ids: Vec<u8> = Vec::new();
    for (i, t) in body_terms.iter().enumerate() {
        let v = t.as_var().expect("TGD bodies are variable-only");
        if !distinct.contains(&v) {
            distinct.push(v);
            var_ids.push(shape_ids[i]);
        }
    }
    let spec_rgs = Rgs::canonicalize(&var_ids);
    Some(Specialization::from_rgs(&distinct, &spec_rgs))
}

/// The simplification of a linear TGD induced by a specialization
/// (Def. 3.5): `simple(R(f(x̄))) → ∃z̄ simple(ψ(f(ȳ), z̄))`.
///
/// Panics if `tgd` is not linear.
pub fn simplify_tgd(
    interner: &mut ShapeInterner,
    base: &Schema,
    tgd: &Tgd,
    spec: &Specialization,
) -> Tgd {
    assert!(tgd.is_linear(), "simplification requires a linear TGD");
    let body_atom = &tgd.body()[0];
    let spec_body = Atom::new_unchecked(body_atom.pred, spec.apply_terms(&body_atom.terms));
    let simple_body = simplify_atom(interner, base, &spec_body);
    let head: Vec<Atom> = tgd
        .head()
        .iter()
        .map(|a| {
            let spec_head = Atom::new_unchecked(a.pred, spec.apply_terms(&a.terms));
            simplify_atom(interner, base, &spec_head)
        })
        .collect();
    Tgd::new(vec![simple_body], head).expect("simplification of a valid TGD is a valid TGD")
}

/// `simple(σ)`: the simplifications of a linear TGD under *all*
/// specializations of its body tuple (static, exponential in the number of
/// distinct body variables).
pub fn simplify_tgd_all(
    interner: &mut ShapeInterner,
    base: &Schema,
    tgd: &Tgd,
) -> Result<Vec<Tgd>, ModelError> {
    if !tgd.is_linear() {
        return Err(ModelError::EmptyConjunction {
            part: "body (not linear)",
        });
    }
    let distinct = tgd.body()[0].variables();
    let mut seen = FxHashSet::default();
    let mut out = Vec::new();
    for rgs in Rgs::all_of_len(distinct.len()) {
        let spec = Specialization::from_rgs(&distinct, &rgs);
        let s = simplify_tgd(interner, base, tgd, &spec);
        if seen.insert(s.clone()) {
            out.push(s);
        }
    }
    Ok(out)
}

/// `simple(Σ)`: the static simplification of a set of linear TGDs
/// (Def. 3.5). The paper shows this is exponential in the maximum arity and
/// uses it only as the yardstick dynamic simplification is measured against
/// (§4.2); the practical algorithm is `soct-core::dynsimpl`.
pub fn static_simplification(
    interner: &mut ShapeInterner,
    base: &Schema,
    tgds: &[Tgd],
) -> Result<Vec<Tgd>, ModelError> {
    let mut seen = FxHashSet::default();
    let mut out = Vec::new();
    for tgd in tgds {
        for s in simplify_tgd_all(interner, base, tgd)? {
            if seen.insert(s.clone()) {
                out.push(s);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::ConstId;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    fn setup() -> (Schema, PredId, PredId) {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 3).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        (s, r, p)
    }

    #[test]
    fn simplify_atom_keeps_first_occurrences() {
        let (base, r, _) = setup();
        let mut it = ShapeInterner::new();
        let a = Atom::new(&base, r, vec![c(5), c(5), c(7)]).unwrap();
        let s = simplify_atom(&mut it, &base, &a);
        assert_eq!(it.schema().arity(s.pred), 2);
        assert_eq!(&*s.terms, &[c(5), c(7)]);
        assert_eq!(it.schema().name(s.pred), "r#1_1_2");
        // Same shape interns to the same predicate.
        let b = Atom::new(&base, r, vec![c(1), c(1), c(9)]).unwrap();
        let sb = simplify_atom(&mut it, &base, &b);
        assert_eq!(s.pred, sb.pred);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn h_specialization_consistency() {
        // Body r(x, y, x): pattern (1,2,1).
        let body = [v(0), v(1), v(0)];
        // Shape (1,1,1) coarsens (1,2,1): h exists, f identifies x and y.
        let spec = h_specialization(&body, &Rgs::canonicalize(&[1, 1, 1])).unwrap();
        assert_eq!(spec.apply(VarId(1)), VarId(0));
        // Shape (1,2,2) equates positions 2,3 where body has y,x distinct —
        // but position 1 and 3 differ while body forces x=x there: ids 1 vs 2
        // at positions of the same variable ⇒ no homomorphism.
        assert!(h_specialization(&body, &Rgs::canonicalize(&[1, 2, 2])).is_none());
        // Shape (1,2,1) = the body's own pattern: identity specialization.
        let spec2 = h_specialization(&body, &Rgs::canonicalize(&[1, 2, 1])).unwrap();
        assert_eq!(spec2.apply(VarId(0)), VarId(0));
        assert_eq!(spec2.apply(VarId(1)), VarId(1));
    }

    #[test]
    fn paper_example_h_specialization() {
        // §4.2: h from {R(x,y,x,z)} to {R(1,1,1,2)} gives f(x)=x, f(y)=x,
        // f(z)=z.
        let body = [v(0), v(1), v(0), v(2)];
        let spec = h_specialization(&body, &Rgs::canonicalize(&[1, 1, 1, 2])).unwrap();
        assert_eq!(spec.apply(VarId(0)), VarId(0));
        assert_eq!(spec.apply(VarId(1)), VarId(0));
        assert_eq!(spec.apply(VarId(2)), VarId(2));
    }

    #[test]
    fn simplified_tgds_are_simple_linear() {
        let (base, r, p) = setup();
        let mut it = ShapeInterner::new();
        // r(x, x, y) -> ∃z p(y, z): non-simple linear.
        let tgd = Tgd::new(
            vec![Atom::new(&base, r, vec![v(0), v(0), v(1)]).unwrap()],
            vec![Atom::new(&base, p, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        let all = simplify_tgd_all(&mut it, &base, &tgd).unwrap();
        // Two distinct body vars ⇒ Bell(2) = 2 specializations.
        assert_eq!(all.len(), 2);
        for s in &all {
            assert!(s.is_simple_linear(), "{s:?}");
        }
    }

    #[test]
    fn static_simplification_counts() {
        let (base, r, p) = setup();
        let mut it = ShapeInterner::new();
        // r(x, y, w) -> ∃z p(x, z): simple body with 3 distinct vars ⇒
        // Bell(3) = 5 simplifications.
        let tgd = Tgd::new(
            vec![Atom::new(&base, r, vec![v(0), v(1), v(3)]).unwrap()],
            vec![Atom::new(&base, p, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        let all = static_simplification(&mut it, &base, std::slice::from_ref(&tgd)).unwrap();
        assert_eq!(all.len(), 5);
        // All body predicates are pairwise distinct shape predicates of r.
        let preds: FxHashSet<_> = all.iter().map(|t| t.body()[0].pred).collect();
        assert_eq!(preds.len(), 5);
    }

    #[test]
    fn simplification_preserves_frontier_structure() {
        let (base, r, p) = setup();
        let mut it = ShapeInterner::new();
        let tgd = Tgd::new(
            vec![Atom::new(&base, r, vec![v(0), v(1), v(1)]).unwrap()],
            vec![Atom::new(&base, p, vec![v(0), v(9)]).unwrap()],
        )
        .unwrap();
        let distinct = tgd.body()[0].variables();
        let spec = Specialization::identity(&distinct);
        let s = simplify_tgd(&mut it, &base, &tgd, &spec);
        // Body r(x,y,y) simplifies to r#1_2_2(x,y); head keeps frontier x and
        // existential v9.
        assert_eq!(s.body()[0].arity(), 2);
        assert_eq!(s.frontier(), &[VarId(0)]);
        assert_eq!(s.existential(), &[VarId(9)]);
    }

    #[test]
    fn example_3_4_simplification() {
        // σ: R(x,x) → ∃z R(z,x). Its simplifications have bodies R#1_1(x)
        // (only one distinct body var ⇒ Bell(1) = 1 specialization), and
        // head simple(R(z,x)) = R#1_2(z,x).
        let mut base = Schema::new();
        let r = base.add_predicate("R", 2).unwrap();
        let mut it = ShapeInterner::new();
        let tgd = Tgd::new(
            vec![Atom::new(&base, r, vec![v(0), v(0)]).unwrap()],
            vec![Atom::new(&base, r, vec![v(1), v(0)]).unwrap()],
        )
        .unwrap();
        let all = simplify_tgd_all(&mut it, &base, &tgd).unwrap();
        assert_eq!(all.len(), 1);
        let s = &all[0];
        assert_eq!(it.schema().name(s.body()[0].pred), "R#1_1");
        assert_eq!(it.schema().name(s.head()[0].pred), "R#1_2");
    }

    #[test]
    fn simplify_instance_shapes() {
        let (base, r, _) = setup();
        let mut it = ShapeInterner::new();
        let mut db = Instance::new();
        db.insert(Atom::new(&base, r, vec![c(0), c(0), c(1)]).unwrap());
        db.insert(Atom::new(&base, r, vec![c(2), c(2), c(3)]).unwrap());
        db.insert(Atom::new(&base, r, vec![c(0), c(1), c(2)]).unwrap());
        let simple = simplify_instance(&mut it, &base, &db);
        assert_eq!(simple.len(), 3);
        assert_eq!(it.len(), 2); // shapes (1,1,2) and (1,2,3)
    }
}
