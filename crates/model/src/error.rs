//! Error types for the model layer.

use std::fmt;

/// Errors raised when constructing schemas, atoms, or TGDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A predicate was declared with arity 0; the paper assumes `ar(R) > 0`.
    ZeroArity { predicate: String },
    /// A predicate name was used with two different arities.
    ArityMismatch {
        predicate: String,
        expected: usize,
        found: usize,
    },
    /// Arity exceeds [`crate::schema::MAX_ARITY`], the fixed row-buffer
    /// width shared by the storage and chase layers.
    ArityTooLarge { predicate: String, arity: usize },
    /// An atom was built with the wrong number of arguments.
    WrongArgumentCount {
        predicate: String,
        expected: usize,
        found: usize,
    },
    /// A TGD contained a constant; TGDs are constant-free sentences (§2).
    ConstantInTgd,
    /// A TGD contained a null; nulls only appear in instances.
    NullInTgd,
    /// A fact (database atom) contained a variable.
    VariableInFact,
    /// A TGD body or head was empty; both must be non-empty conjunctions.
    EmptyConjunction { part: &'static str },
    /// A TGD reused an existential variable in its body.
    ExistentialInBody { var: u32 },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ZeroArity { predicate } => {
                write!(f, "predicate `{predicate}` declared with arity 0")
            }
            ModelError::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "predicate `{predicate}` used with arity {found}, previously {expected}"
            ),
            ModelError::ArityTooLarge { predicate, arity } => {
                write!(
                    f,
                    "predicate `{predicate}` arity {arity} exceeds maximum {}",
                    crate::schema::MAX_ARITY
                )
            }
            ModelError::WrongArgumentCount {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "atom over `{predicate}` has {found} arguments, expected {expected}"
            ),
            ModelError::ConstantInTgd => write!(f, "TGDs must be constant-free"),
            ModelError::NullInTgd => write!(f, "TGDs must not mention nulls"),
            ModelError::VariableInFact => write!(f, "facts must not mention variables"),
            ModelError::EmptyConjunction { part } => {
                write!(f, "TGD {part} must be a non-empty conjunction")
            }
            ModelError::ExistentialInBody { var } => {
                write!(f, "existential variable X{var} occurs in the body")
            }
        }
    }
}

impl std::error::Error for ModelError {}
