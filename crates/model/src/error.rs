//! Error types for the model layer.

use std::fmt;

/// Errors raised when constructing schemas, atoms, or TGDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A predicate was declared with arity 0; the paper assumes `ar(R) > 0`.
    ZeroArity {
        /// The offending predicate's name.
        predicate: String,
    },
    /// A predicate name was used with two different arities.
    ArityMismatch {
        /// The offending predicate's name.
        predicate: String,
        /// The arity it was first declared with.
        expected: usize,
        /// The conflicting arity.
        found: usize,
    },
    /// Arity exceeds [`crate::schema::MAX_ARITY`], the fixed row-buffer
    /// width shared by the storage and chase layers.
    ArityTooLarge {
        /// The offending predicate's name.
        predicate: String,
        /// The declared arity.
        arity: usize,
    },
    /// An atom was built with the wrong number of arguments.
    WrongArgumentCount {
        /// The predicate the atom was built over.
        predicate: String,
        /// The predicate's declared arity.
        expected: usize,
        /// The number of arguments supplied.
        found: usize,
    },
    /// A TGD contained a constant; TGDs are constant-free sentences (§2).
    ConstantInTgd,
    /// A TGD contained a null; nulls only appear in instances.
    NullInTgd,
    /// A fact (database atom) contained a variable.
    VariableInFact,
    /// A TGD body or head was empty; both must be non-empty conjunctions.
    EmptyConjunction {
        /// Which side was empty (`"body"` or `"head"`).
        part: &'static str,
    },
    /// A TGD reused an existential variable in its body.
    ExistentialInBody {
        /// The raw id of the offending variable.
        var: u32,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ZeroArity { predicate } => {
                write!(f, "predicate `{predicate}` declared with arity 0")
            }
            ModelError::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "predicate `{predicate}` used with arity {found}, previously {expected}"
            ),
            ModelError::ArityTooLarge { predicate, arity } => {
                write!(
                    f,
                    "predicate `{predicate}` arity {arity} exceeds maximum {}",
                    crate::schema::MAX_ARITY
                )
            }
            ModelError::WrongArgumentCount {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "atom over `{predicate}` has {found} arguments, expected {expected}"
            ),
            ModelError::ConstantInTgd => write!(f, "TGDs must be constant-free"),
            ModelError::NullInTgd => write!(f, "TGDs must not mention nulls"),
            ModelError::VariableInFact => write!(f, "facts must not mention variables"),
            ModelError::EmptyConjunction { part } => {
                write!(f, "TGD {part} must be a non-empty conjunction")
            }
            ModelError::ExistentialInBody { var } => {
                write!(f, "existential variable X{var} occurs in the body")
            }
        }
    }
}

impl std::error::Error for ModelError {}
