//! # soct-model
//!
//! The relational and rule model underlying the `soct` workspace: terms,
//! atoms, schemas, instances, homomorphisms, tuple-generating dependencies
//! (TGDs), and the shape/simplification machinery of
//! *Semi-Oblivious Chase Termination for Linear Existential Rules:
//! An Experimental Study* (Calautti, Milani, Pieris; VLDB 2023).
//!
//! Everything downstream — the chase engines, the dependency-graph
//! machinery, the termination checkers, the storage engine, the generators —
//! builds on the types defined here. Strings are interned at the boundary;
//! the algorithms operate on dense `u32` ids throughout.

#![warn(missing_docs)]

pub mod atom;
pub mod error;
pub mod fingerprint;
pub mod fxhash;
pub mod homomorphism;
pub mod instance;
pub mod schema;
pub mod shape;
pub mod simplify;
pub mod symbol;
pub mod term;
pub mod tgd;

pub use atom::Atom;
pub use error::ModelError;
pub use fingerprint::{
    fingerprint_instance_shapes, fingerprint_predicates, fingerprint_ruleset, fingerprint_shapes,
    predicate_element_hash, shape_element_hash, Fingerprint, SetFingerprint,
};
pub use fxhash::{FxHashMap, FxHashSet};
pub use homomorphism::{satisfies_all, satisfies_tgd, Substitution};
pub use instance::{AtomIdx, Database, Instance};
pub use schema::{Position, PredId, Schema, MAX_ARITY};
pub use shape::{bell, Rgs, Shape};
pub use simplify::{ShapeInterner, Specialization};
pub use symbol::{Interner, SymbolId};
pub use term::{ConstId, NullId, Term, VarId};
pub use tgd::{Tgd, TgdClass};
