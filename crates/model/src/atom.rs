//! Atoms and facts (§2 of the paper).

use crate::error::ModelError;
use crate::schema::{Position, PredId, Schema};
use crate::term::{Term, VarId};
use std::fmt;

/// An atom `R(t₁, …, tₙ)`: a predicate applied to a tuple of terms.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Atom {
    /// The predicate `R`.
    pub pred: PredId,
    /// The argument tuple `t₁, …, tₙ`.
    pub terms: Box<[Term]>,
}

impl Atom {
    /// Builds an atom, checking the argument count against `schema`.
    pub fn new(schema: &Schema, pred: PredId, terms: Vec<Term>) -> Result<Self, ModelError> {
        let expected = schema.arity(pred);
        if terms.len() != expected {
            return Err(ModelError::WrongArgumentCount {
                predicate: schema.name(pred).to_string(),
                expected,
                found: terms.len(),
            });
        }
        Ok(Atom {
            pred,
            terms: terms.into_boxed_slice(),
        })
    }

    /// Builds an atom without an arity check (for internal callers that
    /// guarantee it). Debug builds still assert when a schema is on hand.
    #[inline]
    pub fn new_unchecked(pred: PredId, terms: Vec<Term>) -> Self {
        Atom {
            pred,
            terms: terms.into_boxed_slice(),
        }
    }

    /// The atom's arity.
    #[inline]
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// True if every argument is a constant (a *fact*, §2).
    pub fn is_fact(&self) -> bool {
        self.terms.iter().all(|t| t.is_const())
    }

    /// True if every argument is ground (constant or null) — i.e. the atom
    /// may appear in an instance.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| t.is_ground())
    }

    /// `var(α)`: the distinct variables of the atom, in first-occurrence
    /// order.
    pub fn variables(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        for t in self.terms.iter() {
            if let Term::Var(v) = *t {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// `pos(α, x)`: the positions of `α` at which variable `x` occurs.
    pub fn positions_of_var(&self, x: VarId) -> impl Iterator<Item = Position> + '_ {
        self.terms
            .iter()
            .enumerate()
            .filter(move |(_, t)| **t == Term::Var(x))
            .map(|(i, _)| Position::new(self.pred, i))
    }

    /// True if some variable occurs more than once (the atom is not
    /// *simple*).
    pub fn has_repeated_var(&self) -> bool {
        for (i, t) in self.terms.iter().enumerate() {
            if t.is_var() && self.terms[..i].contains(t) {
                return true;
            }
        }
        false
    }

    /// Renders the atom against a schema (predicate names only; terms use
    /// their `Display` form).
    pub fn display<'a>(&'a self, schema: &'a Schema) -> AtomDisplay<'a> {
        AtomDisplay { atom: self, schema }
    }
}

/// Helper for rendering atoms with predicate names.
pub struct AtomDisplay<'a> {
    atom: &'a Atom,
    schema: &'a Schema,
}

impl fmt::Display for AtomDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.schema.name(self.atom.pred))?;
        for (i, t) in self.atom.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// `var(A)` for a set of atoms: distinct variables in first-occurrence order.
pub fn variables_of(atoms: &[Atom]) -> Vec<VarId> {
    let mut out = Vec::new();
    for a in atoms {
        for t in a.terms.iter() {
            if let Term::Var(v) = *t {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{ConstId, NullId};

    fn schema() -> (Schema, PredId) {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 3).unwrap();
        (s, r)
    }

    #[test]
    fn arity_is_checked() {
        let (s, r) = schema();
        assert!(Atom::new(&s, r, vec![Term::Var(VarId(0))]).is_err());
        assert!(Atom::new(
            &s,
            r,
            vec![
                Term::Var(VarId(0)),
                Term::Var(VarId(1)),
                Term::Var(VarId(2))
            ]
        )
        .is_ok());
    }

    #[test]
    fn fact_and_ground_classification() {
        let (s, r) = schema();
        let fact = Atom::new(
            &s,
            r,
            vec![
                Term::Const(ConstId(0)),
                Term::Const(ConstId(1)),
                Term::Const(ConstId(0)),
            ],
        )
        .unwrap();
        assert!(fact.is_fact() && fact.is_ground());
        let with_null = Atom::new(
            &s,
            r,
            vec![
                Term::Const(ConstId(0)),
                Term::Null(NullId(0)),
                Term::Const(ConstId(0)),
            ],
        )
        .unwrap();
        assert!(!with_null.is_fact() && with_null.is_ground());
        let open = Atom::new(
            &s,
            r,
            vec![
                Term::Var(VarId(0)),
                Term::Null(NullId(0)),
                Term::Const(ConstId(0)),
            ],
        )
        .unwrap();
        assert!(!open.is_ground());
    }

    #[test]
    fn variable_positions() {
        let (s, r) = schema();
        let x = VarId(0);
        let y = VarId(1);
        let a = Atom::new(&s, r, vec![Term::Var(x), Term::Var(y), Term::Var(x)]).unwrap();
        assert_eq!(a.variables(), vec![x, y]);
        let pos: Vec<_> = a.positions_of_var(x).map(|p| p.index).collect();
        assert_eq!(pos, vec![0, 2]);
        assert!(a.has_repeated_var());
        let b = Atom::new(&s, r, vec![Term::Var(x), Term::Var(y), Term::Var(VarId(2))]).unwrap();
        assert!(!b.has_repeated_var());
    }

    #[test]
    fn display_uses_predicate_names() {
        let (s, r) = schema();
        let a = Atom::new(
            &s,
            r,
            vec![
                Term::Const(ConstId(0)),
                Term::Var(VarId(1)),
                Term::Null(NullId(2)),
            ],
        )
        .unwrap();
        assert_eq!(a.display(&s).to_string(), "r(c0,X1,_:n2)");
    }
}
