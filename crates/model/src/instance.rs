//! In-memory instances and databases (§2).
//!
//! An [`Instance`] is a set of ground atoms (constants and nulls) with:
//! - O(1) duplicate detection (set semantics, required by the `chase_i`
//!   fixpoint of §3),
//! - per-predicate atom lists (the scan path for body matching), and
//! - an optional `(predicate, position, term) → atoms` index used by the
//!   conjunctive matcher for multi-atom bodies and restricted-chase head
//!   checks.

use crate::atom::Atom;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::schema::PredId;
use crate::term::Term;

/// Index of an atom within an [`Instance`] (insertion order).
pub type AtomIdx = u32;

/// A (possibly growing) set of ground atoms.
#[derive(Default, Clone, Debug)]
pub struct Instance {
    atoms: Vec<Atom>,
    seen: FxHashSet<Atom>,
    by_pred: FxHashMap<PredId, Vec<AtomIdx>>,
    /// `(pred, position, term) → atom indices`; maintained only when
    /// `indexed` is true.
    pos_index: FxHashMap<(PredId, u16, Term), Vec<AtomIdx>>,
    indexed: bool,
}

impl Instance {
    /// Creates an empty, unindexed instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty instance that maintains the position index.
    pub fn with_index() -> Self {
        Instance {
            indexed: true,
            ..Self::default()
        }
    }

    /// Creates an instance from ground atoms (panics on non-ground input in
    /// debug builds; use [`Instance::insert`] for checked insertion).
    pub fn from_atoms<I: IntoIterator<Item = Atom>>(atoms: I) -> Self {
        let mut inst = Instance::new();
        for a in atoms {
            inst.insert(a);
        }
        inst
    }

    /// Inserts `atom`; returns `true` if it was new. Ground-ness is the
    /// caller's contract and asserted in debug builds.
    pub fn insert(&mut self, atom: Atom) -> bool {
        debug_assert!(atom.is_ground(), "instances contain only ground atoms");
        if self.seen.contains(&atom) {
            return false;
        }
        let idx = self.atoms.len() as AtomIdx;
        self.by_pred.entry(atom.pred).or_default().push(idx);
        if self.indexed {
            for (i, t) in atom.terms.iter().enumerate() {
                self.pos_index
                    .entry((atom.pred, i as u16, *t))
                    .or_default()
                    .push(idx);
            }
        }
        self.seen.insert(atom.clone());
        self.atoms.push(atom);
        true
    }

    /// True if the instance contains `atom`.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.seen.contains(atom)
    }

    /// Number of atoms.
    #[inline]
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The atom at `idx` (insertion order).
    #[inline]
    pub fn atom(&self, idx: AtomIdx) -> &Atom {
        &self.atoms[idx as usize]
    }

    /// All atoms in insertion order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Indices of the atoms of predicate `p`.
    pub fn atoms_of(&self, p: PredId) -> &[AtomIdx] {
        self.by_pred.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The distinct predicates with at least one atom — the "catalog query"
    /// (§5.3 step 1) for instance-backed databases.
    pub fn non_empty_predicates(&self) -> Vec<PredId> {
        let mut preds: Vec<PredId> = self.by_pred.keys().copied().collect();
        preds.sort_unstable();
        preds
    }

    /// Candidate atom indices of predicate `p` whose `position`-th argument
    /// may be `t`, as a borrowed slice (no per-lookup allocation).
    ///
    /// With the position index enabled the slice is *exact*: precisely the
    /// atoms with `t` at `position`. Without it, the slice is the
    /// predicate's full atom list — a superset the caller must re-verify
    /// (both conjunctive matchers do, via `match_atom`). Callers needing an
    /// exact answer on unindexed instances should filter the result.
    pub fn atoms_with(&self, p: PredId, position: usize, t: Term) -> &[AtomIdx] {
        if self.indexed {
            self.pos_index
                .get(&(p, position as u16, t))
                .map(Vec::as_slice)
                .unwrap_or(&[])
        } else {
            self.atoms_of(p)
        }
    }

    /// `dom(I)`: the distinct ground terms occurring in the instance.
    pub fn active_domain(&self) -> FxHashSet<Term> {
        let mut dom = FxHashSet::default();
        for a in &self.atoms {
            dom.extend(a.terms.iter().copied());
        }
        dom
    }

    /// Number of distinct constants (ignores nulls); the generator's
    /// `dsize` measure.
    pub fn num_constants(&self) -> usize {
        self.active_domain()
            .into_iter()
            .filter(|t| t.is_const())
            .count()
    }

    /// True if this instance is a database (facts only — no nulls).
    pub fn is_database(&self) -> bool {
        self.atoms.iter().all(Atom::is_fact)
    }

    /// Whether the index is enabled.
    pub fn is_indexed(&self) -> bool {
        self.indexed
    }

    /// Atoms inserted at or after index `from` (the Δ of a chase round).
    pub fn atoms_since(&self, from: AtomIdx) -> &[Atom] {
        &self.atoms[from as usize..]
    }
}

/// A database is an instance of facts; we use a type alias plus the
/// [`Instance::is_database`] runtime check rather than a separate type, so
/// the chase can grow a database into an instance in place.
pub type Database = Instance;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::term::{ConstId, NullId};

    fn atom(s: &Schema, p: PredId, ts: &[Term]) -> Atom {
        Atom::new(s, p, ts.to_vec()).unwrap()
    }

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    fn n(i: u32) -> Term {
        Term::Null(NullId(i))
    }

    #[test]
    fn insert_deduplicates() {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let mut inst = Instance::new();
        assert!(inst.insert(atom(&s, r, &[c(0), c(1)])));
        assert!(!inst.insert(atom(&s, r, &[c(0), c(1)])));
        assert!(inst.insert(atom(&s, r, &[c(1), c(0)])));
        assert_eq!(inst.len(), 2);
        assert!(inst.contains(&atom(&s, r, &[c(0), c(1)])));
    }

    #[test]
    fn per_predicate_listing() {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 1).unwrap();
        let mut inst = Instance::new();
        inst.insert(atom(&s, r, &[c(0), c(1)]));
        inst.insert(atom(&s, p, &[c(2)]));
        inst.insert(atom(&s, r, &[c(2), c(2)]));
        assert_eq!(inst.atoms_of(r).len(), 2);
        assert_eq!(inst.atoms_of(p).len(), 1);
        assert_eq!(inst.non_empty_predicates(), vec![r, p]);
    }

    #[test]
    fn position_index_matches_scan() {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let mut indexed = Instance::with_index();
        let mut plain = Instance::new();
        let atoms = [
            atom(&s, r, &[c(0), c(1)]),
            atom(&s, r, &[c(0), c(2)]),
            atom(&s, r, &[c(1), c(2)]),
            atom(&s, r, &[c(0), n(0)]),
        ];
        for a in &atoms {
            indexed.insert(a.clone());
            plain.insert(a.clone());
        }
        for pos in 0..2 {
            for t in [c(0), c(1), c(2), n(0), n(9)] {
                // Indexed lookups are exact and match a manual scan.
                let exact: Vec<u32> = (0..atoms.len() as u32)
                    .filter(|&i| indexed.atom(i).terms[pos] == t)
                    .collect();
                let mut a = indexed.atoms_with(r, pos, t).to_vec();
                a.sort_unstable();
                assert_eq!(a, exact, "pos {pos} term {t:?}");
                // Unindexed lookups return a candidate superset.
                let b = plain.atoms_with(r, pos, t);
                assert!(exact.iter().all(|i| b.contains(i)), "pos {pos} {t:?}");
            }
        }
    }

    #[test]
    fn active_domain_and_database_check() {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let mut inst = Instance::new();
        inst.insert(atom(&s, r, &[c(0), c(1)]));
        assert!(inst.is_database());
        assert_eq!(inst.num_constants(), 2);
        inst.insert(atom(&s, r, &[c(0), n(0)]));
        assert!(!inst.is_database());
        assert_eq!(inst.active_domain().len(), 3);
        assert_eq!(inst.num_constants(), 2);
    }

    #[test]
    fn atoms_since_returns_delta() {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 1).unwrap();
        let mut inst = Instance::new();
        inst.insert(atom(&s, r, &[c(0)]));
        let mark = inst.len() as AtomIdx;
        inst.insert(atom(&s, r, &[c(1)]));
        inst.insert(atom(&s, r, &[c(2)]));
        assert_eq!(inst.atoms_since(mark).len(), 2);
    }
}
