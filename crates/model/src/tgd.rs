//! Tuple-generating dependencies (§2): general, linear (L), and
//! simple-linear (SL) TGDs.

use crate::atom::{variables_of, Atom};
use crate::error::ModelError;
use crate::schema::Schema;
use crate::term::VarId;
use std::fmt;

/// The syntactic class of a TGD or a set of TGDs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum TgdClass {
    /// Single body atom with no repeated body variable (SL ⊊ L).
    SimpleLinear,
    /// Single body atom (L).
    Linear,
    /// Anything else (multiple body atoms).
    General,
}

impl fmt::Display for TgdClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TgdClass::SimpleLinear => write!(f, "SL"),
            TgdClass::Linear => write!(f, "L"),
            TgdClass::General => write!(f, "TGD"),
        }
    }
}

/// A TGD `φ(x̄, ȳ) → ∃z̄ ψ(x̄, z̄)`.
///
/// Invariants (enforced by [`Tgd::new`]):
/// - body and head are non-empty conjunctions of atoms;
/// - all arguments are variables (TGDs are constant-free sentences);
/// - the *frontier* `fr(σ)` is the set of variables occurring in both body
///   and head; the *existential* variables are the head-only ones.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Tgd {
    body: Vec<Atom>,
    head: Vec<Atom>,
    /// Frontier variables, sorted ascending.
    frontier: Vec<VarId>,
    /// Existentially quantified variables, sorted ascending.
    existential: Vec<VarId>,
}

impl Tgd {
    /// Builds and validates a TGD.
    pub fn new(body: Vec<Atom>, head: Vec<Atom>) -> Result<Self, ModelError> {
        if body.is_empty() {
            return Err(ModelError::EmptyConjunction { part: "body" });
        }
        if head.is_empty() {
            return Err(ModelError::EmptyConjunction { part: "head" });
        }
        for a in body.iter().chain(head.iter()) {
            for t in a.terms.iter() {
                match t {
                    crate::term::Term::Const(_) => return Err(ModelError::ConstantInTgd),
                    crate::term::Term::Null(_) => return Err(ModelError::NullInTgd),
                    crate::term::Term::Var(_) => {}
                }
            }
        }
        let body_vars = variables_of(&body);
        let head_vars = variables_of(&head);
        let mut frontier: Vec<VarId> = head_vars
            .iter()
            .copied()
            .filter(|v| body_vars.contains(v))
            .collect();
        frontier.sort_unstable();
        let mut existential: Vec<VarId> = head_vars
            .into_iter()
            .filter(|v| !body_vars.contains(v))
            .collect();
        existential.sort_unstable();
        Ok(Tgd {
            body,
            head,
            frontier,
            existential,
        })
    }

    /// `body(σ)`.
    #[inline]
    pub fn body(&self) -> &[Atom] {
        &self.body
    }

    /// `head(σ)`.
    #[inline]
    pub fn head(&self) -> &[Atom] {
        &self.head
    }

    /// `fr(σ)`: the frontier variables, sorted ascending.
    #[inline]
    pub fn frontier(&self) -> &[VarId] {
        &self.frontier
    }

    /// The existentially quantified variables, sorted ascending.
    #[inline]
    pub fn existential(&self) -> &[VarId] {
        &self.existential
    }

    /// True if `fr(σ) = ∅`. Such TGDs fire at most once under the
    /// semi-oblivious chase (the frontier witness is the empty tuple); the
    /// checkers handle them natively instead of normalising (see DESIGN.md).
    pub fn has_empty_frontier(&self) -> bool {
        self.frontier.is_empty()
    }

    /// True for linear TGDs (single body atom).
    #[inline]
    pub fn is_linear(&self) -> bool {
        self.body.len() == 1
    }

    /// True for simple-linear TGDs (linear and no repeated body variable).
    pub fn is_simple_linear(&self) -> bool {
        self.is_linear() && !self.body[0].has_repeated_var()
    }

    /// The most specific class this TGD belongs to.
    pub fn class(&self) -> TgdClass {
        if self.is_simple_linear() {
            TgdClass::SimpleLinear
        } else if self.is_linear() {
            TgdClass::Linear
        } else {
            TgdClass::General
        }
    }

    /// All distinct body variables, in first-occurrence order.
    pub fn body_variables(&self) -> Vec<VarId> {
        variables_of(&self.body)
    }

    /// All distinct head variables, in first-occurrence order.
    pub fn head_variables(&self) -> Vec<VarId> {
        variables_of(&self.head)
    }

    /// Renders the TGD against a schema, e.g. `r(X0,X1) -> s(X1,X2)`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> TgdDisplay<'a> {
        TgdDisplay { tgd: self, schema }
    }
}

/// Helper for rendering TGDs with predicate names.
pub struct TgdDisplay<'a> {
    tgd: &'a Tgd,
    schema: &'a Schema,
}

impl fmt::Display for TgdDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.tgd.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.display(self.schema))?;
        }
        write!(f, " -> ")?;
        for (i, a) in self.tgd.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.display(self.schema))?;
        }
        Ok(())
    }
}

/// The most specific class containing every TGD of `tgds`
/// (SL if all are SL, else L if all are linear, else General).
pub fn classify(tgds: &[Tgd]) -> TgdClass {
    let mut class = TgdClass::SimpleLinear;
    for t in tgds {
        class = class.max(t.class());
    }
    class
}

/// `sch(Σ)`: the distinct predicates occurring in `tgds`, in first-occurrence
/// order.
pub fn predicates_of(tgds: &[Tgd]) -> Vec<crate::schema::PredId> {
    let mut seen = crate::fxhash::FxHashSet::default();
    let mut out = Vec::new();
    for t in tgds {
        for a in t.body().iter().chain(t.head().iter()) {
            if seen.insert(a.pred) {
                out.push(a.pred);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn setup() -> (Schema, crate::schema::PredId, crate::schema::PredId) {
        let mut s = Schema::new();
        let r = s.add_predicate("r", 2).unwrap();
        let p = s.add_predicate("p", 2).unwrap();
        (s, r, p)
    }

    #[test]
    fn frontier_and_existential_are_computed() {
        let (s, r, p) = setup();
        // r(X0, X1) -> ∃X2 p(X1, X2)
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        assert_eq!(tgd.frontier(), &[VarId(1)]);
        assert_eq!(tgd.existential(), &[VarId(2)]);
        assert!(!tgd.has_empty_frontier());
        assert!(tgd.is_linear());
        assert!(tgd.is_simple_linear());
        assert_eq!(tgd.class(), TgdClass::SimpleLinear);
    }

    #[test]
    fn repeated_body_variable_is_linear_not_simple() {
        let (s, r, p) = setup();
        // r(X0, X0) -> ∃X2 p(X2, X0)   (Example 3.4 of the paper)
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(0)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(2), v(0)]).unwrap()],
        )
        .unwrap();
        assert!(tgd.is_linear());
        assert!(!tgd.is_simple_linear());
        assert_eq!(tgd.class(), TgdClass::Linear);
    }

    #[test]
    fn multi_body_is_general() {
        let (s, r, p) = setup();
        let tgd = Tgd::new(
            vec![
                Atom::new(&s, r, vec![v(0), v(1)]).unwrap(),
                Atom::new(&s, p, vec![v(1), v(2)]).unwrap(),
            ],
            vec![Atom::new(&s, r, vec![v(0), v(2)]).unwrap()],
        )
        .unwrap();
        assert_eq!(tgd.class(), TgdClass::General);
        assert_eq!(classify(std::slice::from_ref(&tgd)), TgdClass::General);
    }

    #[test]
    fn empty_frontier_detected() {
        let (s, r, p) = setup();
        // r(X0, X1) -> ∃X2,X3 p(X2, X3)
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(2), v(3)]).unwrap()],
        )
        .unwrap();
        assert!(tgd.has_empty_frontier());
        assert_eq!(tgd.existential(), &[VarId(2), VarId(3)]);
    }

    #[test]
    fn constants_and_empty_parts_rejected() {
        let (s, r, _) = setup();
        let with_const =
            Atom::new(&s, r, vec![Term::Const(crate::term::ConstId(0)), v(1)]).unwrap();
        assert!(matches!(
            Tgd::new(vec![with_const.clone()], vec![with_const]),
            Err(ModelError::ConstantInTgd)
        ));
        let a = Atom::new(&s, r, vec![v(0), v(1)]).unwrap();
        assert!(Tgd::new(vec![], vec![a.clone()]).is_err());
        assert!(Tgd::new(vec![a], vec![]).is_err());
    }

    #[test]
    fn classify_takes_the_max() {
        let (s, r, p) = setup();
        let sl = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(0), v(1)]).unwrap()],
        )
        .unwrap();
        let l = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(0)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(0), v(0)]).unwrap()],
        )
        .unwrap();
        assert_eq!(classify(std::slice::from_ref(&sl)), TgdClass::SimpleLinear);
        assert_eq!(classify(&[sl, l]), TgdClass::Linear);
    }

    #[test]
    fn display_renders_rule() {
        let (s, r, p) = setup();
        let tgd = Tgd::new(
            vec![Atom::new(&s, r, vec![v(0), v(1)]).unwrap()],
            vec![Atom::new(&s, p, vec![v(1), v(2)]).unwrap()],
        )
        .unwrap();
        assert_eq!(tgd.display(&s).to_string(), "r(X0,X1) -> p(X1,X2)");
    }
}
