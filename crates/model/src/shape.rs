//! Shapes of atoms and the partition lattice behind them (§3, Def. 3.5).
//!
//! For a tuple `t̄ = (t₁,…,tₙ)`, `id(t̄)` assigns each position the index of
//! the first occurrence of its term within `unique(t̄)` — e.g.
//! `id(x,y,x,z,y) = (1,2,1,3,2)`. Such tuples are exactly the *restricted
//! growth strings* (RGS) over `[n]`, in bijection with the set partitions of
//! the positions. The *shape* of an atom `R(t̄)` is the pair `(R, id(t̄))`,
//! written `R_{id(t̄)}` in the paper.
//!
//! The partition lattice (ordered by refinement) is what the in-database
//! `FindShapes` walks with Apriori pruning (§5.4): "more specific" shapes
//! have more equalities, i.e. are *coarser* partitions.

use crate::fxhash::FxHashMap;
use crate::schema::PredId;
use crate::term::Term;
use std::fmt;

/// A restricted growth string: `rgs[0] == 1` and
/// `rgs[i] <= 1 + max(rgs[..i])`, values 1-based as in the paper.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Rgs(Box<[u8]>);

impl Rgs {
    /// `id(t̄)` for an arbitrary slice of comparable items.
    pub fn of<T: PartialEq>(items: &[T]) -> Rgs {
        let mut ids = Vec::with_capacity(items.len());
        let mut next = 1u8;
        for (i, it) in items.iter().enumerate() {
            let mut found = None;
            for j in 0..i {
                if items[j] == *it {
                    found = Some(ids[j]);
                    break;
                }
            }
            match found {
                Some(id) => ids.push(id),
                None => {
                    ids.push(next);
                    next += 1;
                }
            }
        }
        Rgs(ids.into_boxed_slice())
    }

    /// `id(t̄)` for a term tuple.
    pub fn of_terms(terms: &[Term]) -> Rgs {
        Rgs::of(terms)
    }

    /// The identity (finest) partition `(1,2,…,n)`: all positions distinct.
    pub fn identity(n: usize) -> Rgs {
        Rgs((1..=n as u8).collect())
    }

    /// Constructs from raw ids, re-canonicalising so the result is a valid
    /// RGS (first occurrences in increasing order).
    pub fn canonicalize(ids: &[u8]) -> Rgs {
        Rgs::of(ids)
    }

    /// The raw 1-based ids.
    #[inline]
    pub fn ids(&self) -> &[u8] {
        &self.0
    }

    /// Tuple length (the arity of the shaped atom).
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty tuple.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of blocks = `|unique(t̄)|` = arity of the shape predicate.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.0.iter().copied().max().unwrap_or(0) as usize
    }

    /// True if all positions are distinct (`id = (1,2,…,n)`).
    pub fn is_identity(&self) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| v as usize == i + 1)
    }

    /// True if `self` is coarser than or equal to `other`: every pair of
    /// positions equated by `other` is also equated by `self`. (Partition
    /// order: `other` refines `self`.)
    pub fn coarsens(&self, other: &Rgs) -> bool {
        debug_assert_eq!(self.len(), other.len());
        // For each block id of `other`, all its positions must share one
        // block id in `self`.
        let mut rep: [u8; 256] = [0; 256];
        for (i, &ob) in other.0.iter().enumerate() {
            let sb = self.0[i];
            let slot = &mut rep[ob as usize];
            if *slot == 0 {
                *slot = sb;
            } else if *slot != sb {
                return false;
            }
        }
        true
    }

    /// True if `self` refines (or equals) `other`.
    pub fn refines(&self, other: &Rgs) -> bool {
        other.coarsens(self)
    }

    /// All immediate coarsenings: merge one pair of blocks, canonicalised.
    /// (The lattice step of the Apriori walk, §5.4.)
    pub fn immediate_coarsenings(&self) -> Vec<Rgs> {
        let k = self.block_count();
        let mut out = Vec::new();
        for b1 in 1..=k as u8 {
            for b2 in (b1 + 1)..=k as u8 {
                let merged: Vec<u8> = self
                    .0
                    .iter()
                    .map(|&v| if v == b2 { b1 } else { v })
                    .collect();
                out.push(Rgs::canonicalize(&merged));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The first-occurrence position of each block, in block order — i.e.
    /// the positions that survive in `unique(t̄)`.
    pub fn block_representatives(&self) -> Vec<usize> {
        let k = self.block_count();
        let mut reps = vec![usize::MAX; k];
        for (i, &b) in self.0.iter().enumerate() {
            let slot = &mut reps[b as usize - 1];
            if *slot == usize::MAX {
                *slot = i;
            }
        }
        reps
    }

    /// `unique(t̄)`: keeps the first occurrence of each block.
    pub fn unique_of<'a, T>(&self, items: &'a [T]) -> Vec<&'a T> {
        self.block_representatives()
            .into_iter()
            .map(|i| &items[i])
            .collect()
    }

    /// Enumerates every RGS of length `n` (all `Bell(n)` set partitions).
    ///
    /// Exponential by design — this is what makes *static* simplification
    /// blow up (§4.2); callers beyond the lattice roots should prefer the
    /// Apriori walk. Panics for `n > 12` (Bell(12) ≈ 4.2M) to catch misuse.
    pub fn all_of_len(n: usize) -> Vec<Rgs> {
        assert!(n <= 12, "refusing to enumerate Bell({n}) partitions");
        if n == 0 {
            return vec![Rgs(Box::from([]))];
        }
        let mut out = Vec::with_capacity(bell(n) as usize);
        let mut ids = vec![1u8; n];
        loop {
            out.push(Rgs(ids.clone().into_boxed_slice()));
            // Advance to the next RGS in lexicographic order.
            let mut i = n - 1;
            loop {
                let max_prefix = ids[..i].iter().copied().max().unwrap_or(0);
                if i > 0 && ids[i] <= max_prefix {
                    ids[i] += 1;
                    for v in ids[i + 1..].iter_mut() {
                        *v = 1;
                    }
                    break;
                }
                if i == 0 {
                    return out;
                }
                i -= 1;
            }
        }
    }
}

impl fmt::Display for Rgs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// The n-th Bell number (number of set partitions of `[n]`), computed via
/// the Bell triangle. Saturates at `u128::MAX`.
pub fn bell(n: usize) -> u128 {
    let mut row = vec![1u128];
    for _ in 0..n {
        let mut next = Vec::with_capacity(row.len() + 1);
        next.push(*row.last().unwrap());
        for &x in &row {
            let last = *next.last().unwrap();
            next.push(last.saturating_add(x));
        }
        row = next;
    }
    row[0]
}

/// A shape `R_{id(t̄)}`: a predicate together with an RGS of its arity.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Shape {
    /// The predicate `R`.
    pub pred: PredId,
    /// The repeated-generic-structure id of the argument tuple.
    pub rgs: Rgs,
}

impl Shape {
    /// `shape(α)` of an atom.
    pub fn of_atom(atom: &crate::atom::Atom) -> Shape {
        Shape {
            pred: atom.pred,
            rgs: Rgs::of_terms(&atom.terms),
        }
    }

    /// Arity of the shape predicate (`|unique(t̄)|`).
    pub fn simple_arity(&self) -> usize {
        self.rgs.block_count()
    }
}

/// `shape(I)`: the distinct shapes of the atoms of an instance, with
/// multiplicities discarded. Returned in sorted order for determinism.
pub fn shapes_of_instance(instance: &crate::instance::Instance) -> Vec<Shape> {
    let mut seen: FxHashMap<Shape, ()> = FxHashMap::default();
    for a in instance.atoms() {
        seen.entry(Shape::of_atom(a)).or_insert(());
    }
    let mut out: Vec<Shape> = seen.into_keys().collect();
    out.sort_unstable();
    out
}

/// Number of shapes over a schema, `|shape(S)| = Σ_R Bell(ar(R))` — the
/// worst-case iteration count of the shape fixpoint (§4.2).
pub fn num_schema_shapes(schema: &crate::schema::Schema) -> u128 {
    schema
        .predicates()
        .map(|p| bell(schema.arity(p)))
        .fold(0u128, |a, b| a.saturating_add(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{ConstId, VarId};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    #[test]
    fn paper_example_id_tuple() {
        // id(x,y,x,z,y) = (1,2,1,3,2)
        let x = Term::Var(VarId(0));
        let y = Term::Var(VarId(1));
        let z = Term::Var(VarId(2));
        let tuple = [x, y, x, z, y];
        let rgs = Rgs::of_terms(&tuple);
        assert_eq!(rgs.ids(), &[1, 2, 1, 3, 2]);
        assert_eq!(rgs.block_count(), 3);
        let uniq = rgs.unique_of(&tuple);
        assert_eq!(uniq, vec![&x, &y, &z]);
    }

    #[test]
    fn identity_partition() {
        let r = Rgs::identity(4);
        assert_eq!(r.ids(), &[1, 2, 3, 4]);
        assert!(r.is_identity());
        assert!(!Rgs::of(&[1, 1]).is_identity());
    }

    #[test]
    fn coarsens_and_refines() {
        let fine = Rgs::of(&[1, 2, 3]); // {1}{2}{3}
        let mid = Rgs::of(&[1, 1, 2]); // {1,2}{3}
        let coarse = Rgs::of(&[1, 1, 1]); // {1,2,3}
        assert!(coarse.coarsens(&mid));
        assert!(mid.coarsens(&fine));
        assert!(coarse.coarsens(&fine));
        assert!(!mid.coarsens(&coarse));
        assert!(fine.refines(&coarse));
        // Incomparable pair.
        let a = Rgs::of(&[1, 1, 2]);
        let b = Rgs::of(&[1, 2, 2]);
        assert!(!a.coarsens(&b) && !b.coarsens(&a));
        // Reflexive.
        assert!(a.coarsens(&a) && a.refines(&a));
    }

    #[test]
    fn immediate_coarsenings_merge_one_block_pair() {
        let r = Rgs::identity(3);
        let cs = r.immediate_coarsenings();
        assert_eq!(cs.len(), 3); // {12}{3}, {13}{2}, {1}{23}
        for c in &cs {
            assert_eq!(c.block_count(), 2);
            assert!(c.coarsens(&r));
        }
        let top = Rgs::of(&[1, 1, 1]);
        assert!(top.immediate_coarsenings().is_empty());
    }

    #[test]
    fn enumeration_counts_match_bell() {
        assert_eq!(bell(0), 1);
        assert_eq!(bell(1), 1);
        assert_eq!(bell(2), 2);
        assert_eq!(bell(3), 5);
        assert_eq!(bell(4), 15);
        assert_eq!(bell(5), 52);
        assert_eq!(bell(10), 115975);
        for n in 1..=6 {
            let all = Rgs::all_of_len(n);
            assert_eq!(all.len() as u128, bell(n), "n = {n}");
            let set: std::collections::HashSet<_> = all.iter().collect();
            assert_eq!(set.len(), all.len());
        }
    }

    #[test]
    fn canonicalize_normalises_labels() {
        assert_eq!(Rgs::canonicalize(&[2, 1, 2]).ids(), &[1, 2, 1]);
        assert_eq!(Rgs::canonicalize(&[3, 3, 1]).ids(), &[1, 1, 2]);
    }

    #[test]
    fn shape_of_atom_and_instance() {
        let mut s = crate::schema::Schema::new();
        let r = s.add_predicate("r", 3).unwrap();
        let a = crate::atom::Atom::new(&s, r, vec![c(5), c(5), c(7)]).unwrap();
        let sh = Shape::of_atom(&a);
        assert_eq!(sh.pred, r);
        assert_eq!(sh.rgs.ids(), &[1, 1, 2]);
        assert_eq!(sh.simple_arity(), 2);

        let mut inst = crate::instance::Instance::new();
        inst.insert(a);
        inst.insert(crate::atom::Atom::new(&s, r, vec![c(1), c(1), c(2)]).unwrap());
        inst.insert(crate::atom::Atom::new(&s, r, vec![c(1), c(2), c(3)]).unwrap());
        let shapes = shapes_of_instance(&inst);
        assert_eq!(shapes.len(), 2);
    }

    #[test]
    fn schema_shape_count() {
        let mut s = crate::schema::Schema::new();
        s.add_predicate("r", 3).unwrap();
        s.add_predicate("p", 2).unwrap();
        assert_eq!(num_schema_shapes(&s), 5 + 2);
    }
}
